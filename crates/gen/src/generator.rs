//! Depth-bounded ABNF tree traversal (§III-D, *ABNF Generator*).
//!
//! The generator walks the adapted grammar's syntax tree from a start rule
//! down to leaf nodes. Two mechanisms keep output useful and finite:
//!
//! * a **recursion depth cap** (the paper limits traversal to depth 7) —
//!   when the cap is hit, the generator takes the alternative/repetition
//!   with the smallest guaranteed depth, computed by a memoized min-depth
//!   analysis that also proves termination for recursive rules like
//!   RFC 7230's `comment`;
//! * **predefined leaf rules** that replace free traversal for selected
//!   rules with representative values (see [`crate::predefined`]).

use std::collections::BTreeMap;

use hdiff_abnf::{Grammar, Node, Repeat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::predefined::PredefinedRules;

/// Generation options.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Maximum traversal depth (rule-reference expansions on one path).
    pub max_depth: usize,
    /// Maximum repetitions taken for unbounded `*` repeats.
    pub max_repeat: u32,
    /// Predefined leaf values.
    pub predefined: PredefinedRules,
    /// RNG seed — generation is fully deterministic per seed.
    pub seed: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            max_depth: 7,
            max_repeat: 3,
            predefined: PredefinedRules::standard(),
            seed: 0x4844_6966_6621,
        }
    }
}

/// The ABNF test-string generator.
#[derive(Debug)]
pub struct AbnfGenerator {
    grammar: Grammar,
    opts: GenOptions,
    rng: StdRng,
    min_depth: BTreeMap<String, usize>,
}

impl AbnfGenerator {
    /// Builds a generator over an adapted grammar.
    pub fn new(grammar: Grammar, opts: GenOptions) -> AbnfGenerator {
        let rng = StdRng::seed_from_u64(opts.seed);
        let mut g = AbnfGenerator { grammar, opts, rng, min_depth: BTreeMap::new() };
        g.compute_min_depths();
        g
    }

    /// The grammar being generated from.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Generates one value for `rule`, or `None` when the rule is unknown.
    pub fn generate(&mut self, rule: &str) -> Option<Vec<u8>> {
        let node = self.grammar.get(rule)?.node.clone();
        let mut out = Vec::new();
        self.eval(&node, 0, &mut out);
        Some(out)
    }

    /// Generates one value from an arbitrary syntax-tree node (used by the
    /// tree mutator to generate from mutated grammars).
    pub fn generate_node(&mut self, node: &Node) -> Vec<u8> {
        let mut out = Vec::new();
        self.eval(node, 0, &mut out);
        out
    }

    /// Generates `count` values for `rule` (deduplicated, order preserved).
    pub fn generate_many(&mut self, rule: &str, count: usize) -> Vec<Vec<u8>> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        // Allow extra attempts so duplicates do not starve the result.
        for _ in 0..count.saturating_mul(4) {
            if out.len() >= count {
                break;
            }
            if let Some(v) = self.generate(rule) {
                if seen.insert(v.clone()) {
                    out.push(v);
                }
            } else {
                break;
            }
        }
        out
    }

    /// Exhaustively enumerates derivations of `rule`, depth-first, up to
    /// `limit` results (the paper's "depth-first traversal of the tree"
    /// generation mode — random sampling via [`AbnfGenerator::generate`]
    /// complements it for wide grammars).
    ///
    /// Unbounded repetitions are capped at `max_repeat`; wide byte ranges
    /// contribute only their endpoints plus one midpoint so enumeration
    /// stays representative rather than exhaustive over bytes.
    pub fn enumerate(&mut self, rule: &str, limit: usize) -> Vec<Vec<u8>> {
        let Some(r) = self.grammar.get(rule) else {
            return Vec::new();
        };
        let node = r.node.clone();
        let mut out = self.enumerate_node(&node, 0, limit);
        out.truncate(limit);
        out.sort();
        out.dedup();
        out
    }

    fn enumerate_node(&mut self, node: &Node, depth: usize, limit: usize) -> Vec<Vec<u8>> {
        if limit == 0 {
            return Vec::new();
        }
        match node {
            Node::Alternation(alts) => {
                let mut out = Vec::new();
                for a in alts {
                    if out.len() >= limit {
                        break;
                    }
                    out.extend(self.enumerate_node(a, depth, limit - out.len()));
                }
                out
            }
            Node::Concatenation(seq) => {
                let mut prefixes: Vec<Vec<u8>> = vec![Vec::new()];
                for part in seq {
                    let parts = self.enumerate_node(part, depth, limit);
                    if parts.is_empty() {
                        return Vec::new();
                    }
                    let mut next = Vec::new();
                    'outer: for p in &prefixes {
                        for q in &parts {
                            if next.len() >= limit {
                                break 'outer;
                            }
                            let mut v = p.clone();
                            v.extend_from_slice(q);
                            next.push(v);
                        }
                    }
                    prefixes = next;
                }
                prefixes
            }
            Node::Repetition(rep, inner) => {
                let max = rep
                    .max
                    .unwrap_or(rep.min.saturating_add(self.opts.max_repeat))
                    .min(rep.min.saturating_add(self.opts.max_repeat));
                let mut out = Vec::new();
                for n in rep.min..=max {
                    if out.len() >= limit {
                        break;
                    }
                    let reps = Node::Concatenation(vec![(**inner).clone(); n as usize]);
                    if n == 0 {
                        out.push(Vec::new());
                    } else {
                        out.extend(self.enumerate_node(&reps, depth, limit - out.len()));
                    }
                }
                out
            }
            Node::Group(inner) => self.enumerate_node(inner, depth, limit),
            Node::Optional(inner) => {
                let mut out = vec![Vec::new()];
                out.extend(self.enumerate_node(inner, depth, limit.saturating_sub(1)));
                out
            }
            Node::RuleRef(name) => {
                if let Some(values) = self.opts.predefined.get(name) {
                    if !values.is_empty() {
                        return values.iter().take(limit).cloned().collect();
                    }
                }
                if depth >= self.opts.max_depth {
                    // Depth cap: fall back to one sampled value.
                    let mut v = Vec::new();
                    if let Some(rule) = self.grammar.get(name) {
                        let node = rule.node.clone();
                        self.eval(&node, depth + 1, &mut v);
                    }
                    return vec![v];
                }
                match self.grammar.get(name) {
                    Some(rule) => {
                        let node = rule.node.clone();
                        self.enumerate_node(&node, depth + 1, limit)
                    }
                    None => Vec::new(),
                }
            }
            Node::CharVal { value, .. } => vec![value.as_bytes().to_vec()],
            Node::NumVal(v) => {
                let mut out = Vec::new();
                push_char(*v, &mut out);
                vec![out]
            }
            Node::NumRange(lo, hi) => {
                // Representative endpoints + midpoint.
                let mid = lo + (hi - lo) / 2;
                let mut picks = vec![*lo, mid, *hi];
                picks.dedup();
                picks
                    .into_iter()
                    .take(limit)
                    .map(|v| {
                        let mut out = Vec::new();
                        push_char(v, &mut out);
                        out
                    })
                    .collect()
            }
            Node::NumSeq(vs) => {
                let mut out = Vec::new();
                for v in vs {
                    push_char(*v, &mut out);
                }
                vec![out]
            }
            Node::ProseVal(_) => Vec::new(),
        }
    }

    fn eval(&mut self, node: &Node, depth: usize, out: &mut Vec<u8>) {
        match node {
            Node::Alternation(alts) => {
                let idx = if depth >= self.opts.max_depth {
                    // Depth cap: cheapest alternative.
                    (0..alts.len()).min_by_key(|&i| self.node_min_depth(&alts[i])).unwrap_or(0)
                } else {
                    self.rng.gen_range(0..alts.len())
                };
                self.eval(&alts[idx], depth, out);
            }
            Node::Concatenation(seq) => {
                for n in seq {
                    self.eval(n, depth, out);
                }
            }
            Node::Repetition(rep, inner) => {
                let n = self.pick_repeat(*rep, depth);
                for _ in 0..n {
                    self.eval(inner, depth, out);
                }
            }
            Node::Group(inner) => self.eval(inner, depth, out),
            Node::Optional(inner) => {
                let take = depth < self.opts.max_depth && self.rng.gen_bool(0.5);
                if take {
                    self.eval(inner, depth, out);
                }
            }
            Node::RuleRef(name) => {
                if let Some(values) = self.opts.predefined.get(name) {
                    if !values.is_empty() {
                        let idx = self.rng.gen_range(0..values.len());
                        out.extend_from_slice(&values[idx]);
                        return;
                    }
                }
                // Hard guard: an ill-founded grammar (mutual recursion with
                // no terminating alternative) must degrade to empty output,
                // never to unbounded recursion.
                if depth > self.opts.max_depth + 64 {
                    return;
                }
                if let Some(rule) = self.grammar.get(name) {
                    let node = rule.node.clone();
                    self.eval(&node, depth + 1, out);
                }
                // Unknown rule: generate nothing (adaptor reports these).
            }
            Node::CharVal { value, .. } => out.extend_from_slice(value.as_bytes()),
            Node::NumVal(v) => push_char(*v, out),
            Node::NumRange(lo, hi) => {
                let lo = *lo;
                let hi = (*hi).max(lo);
                // Bias printable ASCII inside wide ranges.
                let v = if lo <= 0x21 && hi >= 0x7e {
                    self.rng.gen_range(0x21..=0x7e)
                } else {
                    self.rng.gen_range(lo..=hi)
                };
                push_char(v, out);
            }
            Node::NumSeq(vs) => {
                for v in vs {
                    push_char(*v, out);
                }
            }
            Node::ProseVal(_) => {
                // Unexpanded prose: nothing to generate.
            }
        }
    }

    fn pick_repeat(&mut self, rep: Repeat, depth: usize) -> u32 {
        let min = rep.min;
        let max = rep.max.unwrap_or(min.saturating_add(self.opts.max_repeat));
        let max = max.min(min.saturating_add(self.opts.max_repeat));
        if depth >= self.opts.max_depth || min >= max {
            return min;
        }
        self.rng.gen_range(min..=max)
    }

    /// Minimum expansion depth of a rule (∞ for rules that cannot
    /// terminate without the depth cap, which the grammar should not have).
    fn compute_min_depths(&mut self) {
        // Iterate to fixpoint: min_depth(rule) over the grammar.
        const INF: usize = usize::MAX / 4;
        let names: Vec<String> = self.grammar.iter().map(|r| r.name.to_ascii_lowercase()).collect();
        for n in &names {
            self.min_depth.insert(n.clone(), INF);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for name in &names {
                let node = match self.grammar.get(name) {
                    Some(r) => r.node.clone(),
                    None => continue,
                };
                let d = 1 + self.node_min_depth(&node);
                let entry = self.min_depth.get_mut(name).expect("inserted above");
                if d < *entry {
                    *entry = d;
                    changed = true;
                }
            }
        }
    }

    fn node_min_depth(&self, node: &Node) -> usize {
        const INF: usize = usize::MAX / 4;
        match node {
            Node::Alternation(alts) => {
                alts.iter().map(|n| self.node_min_depth(n)).min().unwrap_or(0)
            }
            Node::Concatenation(seq) => {
                seq.iter().map(|n| self.node_min_depth(n)).max().unwrap_or(0)
            }
            Node::Repetition(rep, inner) => {
                if rep.min == 0 {
                    0
                } else {
                    self.node_min_depth(inner)
                }
            }
            Node::Group(inner) => self.node_min_depth(inner),
            Node::Optional(_) => 0,
            Node::RuleRef(name) => {
                if self.opts.predefined.get(name).is_some() {
                    return 0; // predefined values cost no traversal
                }
                self.min_depth.get(&name.to_ascii_lowercase()).copied().unwrap_or_else(|| {
                    if hdiff_abnf::core_rules::is_core_rule(name) {
                        1
                    } else {
                        INF
                    }
                })
            }
            _ => 0,
        }
    }
}

fn push_char(v: u32, out: &mut Vec<u8>) {
    if v <= 0xff {
        out.push(v as u8);
    } else if let Some(c) = char::from_u32(v) {
        let mut buf = [0u8; 4];
        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_abnf::parse_rulelist;

    fn grammar(text: &str) -> Grammar {
        Grammar::from_rules("t", parse_rulelist(text).unwrap())
    }

    fn gen(text: &str) -> AbnfGenerator {
        AbnfGenerator::new(
            grammar(text),
            GenOptions { predefined: PredefinedRules::empty(), ..GenOptions::default() },
        )
    }

    #[test]
    fn literal_generation() {
        let mut g = gen("greeting = \"hello\"");
        assert_eq!(g.generate("greeting").unwrap(), b"hello");
        assert!(g.generate("missing").is_none());
    }

    #[test]
    fn http_version_generation_is_valid() {
        let mut g =
            gen("HTTP-version = HTTP-name \"/\" DIGIT \".\" DIGIT\nHTTP-name = %x48.54.54.50");
        for _ in 0..20 {
            let v = g.generate("HTTP-version").unwrap();
            assert_eq!(v.len(), 8);
            assert!(v.starts_with(b"HTTP/"), "{v:?}");
            assert!(v[5].is_ascii_digit() && v[6] == b'.' && v[7].is_ascii_digit());
        }
    }

    #[test]
    fn repetition_bounds_respected() {
        let mut g = gen("x = 2*4\"a\"");
        for _ in 0..20 {
            let v = g.generate("x").unwrap();
            assert!((2..=4).contains(&v.len()), "{v:?}");
        }
    }

    #[test]
    fn unbounded_repetition_capped() {
        let mut g = AbnfGenerator::new(
            grammar("x = *\"a\""),
            GenOptions {
                max_repeat: 3,
                predefined: PredefinedRules::empty(),
                ..GenOptions::default()
            },
        );
        for _ in 0..20 {
            assert!(g.generate("x").unwrap().len() <= 3);
        }
    }

    #[test]
    fn recursive_rules_terminate() {
        // RFC 7230 comment is self-recursive.
        let mut g = gen("comment = \"(\" *( ctext / comment ) \")\"\nctext = %x61-7A");
        for _ in 0..50 {
            let v = g.generate("comment").unwrap();
            assert!(v.starts_with(b"(") && v.ends_with(b")"));
        }
    }

    #[test]
    fn predefined_values_used() {
        let mut predefined = PredefinedRules::empty();
        predefined.set("uri-host", vec![b"h1.com".to_vec()]);
        let mut g = AbnfGenerator::new(
            grammar("Host = uri-host [ \":\" port ]\nuri-host = 1*ALPHA\nport = 1*DIGIT"),
            GenOptions { predefined, ..GenOptions::default() },
        );
        for _ in 0..10 {
            let v = g.generate("Host").unwrap();
            assert!(v.starts_with(b"h1.com"), "{:?}", String::from_utf8_lossy(&v));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let make = |seed| {
            let mut g = AbnfGenerator::new(
                grammar("x = 1*5ALPHA"),
                GenOptions { seed, predefined: PredefinedRules::empty(), ..GenOptions::default() },
            );
            g.generate_many("x", 10)
        };
        assert_eq!(make(42), make(42));
        assert_ne!(make(42), make(43));
    }

    #[test]
    fn generate_many_deduplicates() {
        let mut g = gen("x = \"a\" / \"b\"");
        let vs = g.generate_many("x", 10);
        assert!(vs.len() <= 2);
        let set: std::collections::BTreeSet<_> = vs.iter().collect();
        assert_eq!(set.len(), vs.len());
    }

    #[test]
    fn num_range_stays_in_range() {
        let mut g = gen("d = %x30-39");
        for _ in 0..20 {
            let v = g.generate("d").unwrap();
            assert!(v[0].is_ascii_digit());
        }
    }

    #[test]
    fn enumeration_is_exhaustive_for_small_rules() {
        let mut g = gen("coding = \"chunked\" / \"gzip\" / \"deflate\"");
        let all = g.enumerate("coding", 100);
        assert_eq!(all, vec![b"chunked".to_vec(), b"deflate".to_vec(), b"gzip".to_vec()]);
    }

    #[test]
    fn enumeration_expands_repetitions_and_options() {
        let mut g = gen("x = 1*2\"a\" [ \"b\" ]");
        let mut all = g.enumerate("x", 100);
        all.sort();
        assert_eq!(all, vec![b"a".to_vec(), b"aa".to_vec(), b"aab".to_vec(), b"ab".to_vec()]);
    }

    #[test]
    fn enumeration_respects_the_limit() {
        let mut g = gen("d = 4DIGIT");
        let some = g.enumerate("d", 10);
        assert!(some.len() <= 10);
        assert!(!some.is_empty());
        for v in &some {
            assert_eq!(v.len(), 4);
            assert!(v.iter().all(u8::is_ascii_digit));
        }
    }

    #[test]
    fn enumeration_of_http_version_covers_grammar_shape() {
        let mut g =
            gen("HTTP-version = HTTP-name \"/\" DIGIT \".\" DIGIT\nHTTP-name = %x48.54.54.50");
        let all = g.enumerate("HTTP-version", 1000);
        // DIGIT enumerates endpoints + midpoint: 3 choices per digit slot.
        assert_eq!(all.len(), 9);
        assert!(all.contains(&b"HTTP/0.0".to_vec()));
        assert!(all.contains(&b"HTTP/9.9".to_vec()));
        for v in &all {
            assert!(v.starts_with(b"HTTP/"));
        }
    }

    #[test]
    fn enumerated_values_match_the_grammar() {
        let g = grammar("t = 1*2( \"x\" / \"y\" ) [ \":\" DIGIT ]");
        let mut generator = AbnfGenerator::new(
            g.clone(),
            GenOptions { predefined: PredefinedRules::empty(), ..GenOptions::default() },
        );
        let all = generator.enumerate("t", 200);
        assert!(all.len() >= 6);
        for v in &all {
            assert!(
                hdiff_abnf::matcher::matches(&g, "t", v).is_match(),
                "{:?}",
                String::from_utf8_lossy(v)
            );
        }
    }

    #[test]
    fn generates_valid_host_from_real_corpus_grammar() {
        let out = hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze(&hdiff_corpus::core_documents());
        let mut g = AbnfGenerator::new(out.grammar, GenOptions::default());
        let hosts = g.generate_many("Host", 25);
        assert!(!hosts.is_empty());
        for h in &hosts {
            // Predefined uri-host keeps these realistic.
            let s = String::from_utf8_lossy(h);
            assert!(
                s.starts_with("h1.com")
                    || s.starts_with("h2.com")
                    || s.starts_with("example.com")
                    || s.starts_with("127.0.0.1")
                    || s.starts_with('['),
                "{s}"
            );
        }
    }

    #[test]
    fn generates_whole_http_message_from_corpus_grammar() {
        let out = hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze(&hdiff_corpus::core_documents());
        let mut g = AbnfGenerator::new(out.grammar, GenOptions::default());
        let msgs = g.generate_many("HTTP-message", 10);
        assert!(!msgs.is_empty());
        // Every generated message must contain a CRLF-terminated start line.
        for m in &msgs {
            assert!(m.windows(2).any(|w| w == b"\r\n"), "{:?}", String::from_utf8_lossy(m));
        }
    }
}
