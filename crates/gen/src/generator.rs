//! Depth-bounded ABNF tree traversal (§III-D, *ABNF Generator*).
//!
//! The generator walks the adapted grammar from a start rule down to leaf
//! nodes. Two mechanisms keep output useful and finite:
//!
//! * a **recursion depth cap** (the paper limits traversal to depth 7) —
//!   when the cap is hit, the generator takes the alternative/repetition
//!   with the smallest guaranteed depth, computed by a memoized min-depth
//!   analysis that also proves termination for recursive rules like
//!   RFC 7230's `comment`;
//! * **predefined leaf rules** that replace free traversal for selected
//!   rules with representative values (see [`crate::predefined`]).
//!
//! Traversal runs over the grammar's compiled arena IR
//! ([`hdiff_abnf::compile`]): rule references are `u32` indices into a
//! shared `Arc<CompiledGrammar>` instead of string-keyed map lookups that
//! clone whole AST subtrees, and the min-depth table is a dense `Vec`
//! indexed by rule id. The lowering is structure-preserving (one op per
//! AST node, groups inlined), so the walk makes exactly the same RNG
//! draws as the original AST walk — generation is bit-for-bit identical
//! per seed. Free-standing (e.g. mutated) trees are compiled on the fly
//! against the shared grammar ([`CompiledGrammar::compile_detached`]).

use std::sync::Arc;

use hdiff_abnf::compile::{CompiledGrammar, Op, OpArena, RuleOrigin, UNBOUNDED};
use hdiff_abnf::{Grammar, Node};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coverage::CoverageMap;
use crate::predefined::PredefinedRules;

const INF: usize = usize::MAX / 4;

/// Generation options.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Maximum traversal depth (rule-reference expansions on one path).
    pub max_depth: usize,
    /// Maximum repetitions taken for unbounded `*` repeats.
    pub max_repeat: u32,
    /// Predefined leaf values.
    pub predefined: PredefinedRules,
    /// RNG seed — generation is fully deterministic per seed.
    pub seed: u64,
    /// Bias alternation choices toward arms the coverage map has not seen
    /// yet (implies coverage tracking). Off by default: the cold-arm pick
    /// consumes RNG draws differently from the uniform walk, so enabling
    /// it changes the generated stream for a given seed.
    pub coverage_guided: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            max_depth: 7,
            max_repeat: 3,
            predefined: PredefinedRules::standard(),
            seed: 0x4844_6966_6621,
            coverage_guided: false,
        }
    }
}

/// The ABNF test-string generator.
#[derive(Debug)]
pub struct AbnfGenerator {
    grammar: Grammar,
    compiled: Arc<CompiledGrammar>,
    opts: GenOptions,
    rng: StdRng,
    /// Min expansion depth per compiled rule index (grammar rules only;
    /// core rules cost a flat 1, undefined rules are unreachable).
    min_depth: Vec<usize>,
    /// Grammar coverage accumulated across generations, when enabled.
    coverage: Option<CoverageMap>,
}

impl AbnfGenerator {
    /// Builds a generator over an adapted grammar. The compiled form is
    /// taken from the grammar's cache, so constructing many generators
    /// over (clones of) one grammar compiles it once.
    pub fn new(grammar: Grammar, opts: GenOptions) -> AbnfGenerator {
        let rng = StdRng::seed_from_u64(opts.seed);
        let compiled = grammar.compiled();
        let mut g =
            AbnfGenerator { grammar, compiled, opts, rng, min_depth: Vec::new(), coverage: None };
        g.compute_min_depths();
        if g.opts.coverage_guided {
            g.enable_coverage();
        }
        g
    }

    /// Starts coverage tracking (idempotent; accumulated state is kept).
    pub fn enable_coverage(&mut self) {
        if self.coverage.is_none() {
            self.coverage = Some(CoverageMap::new(&self.compiled));
        }
    }

    /// The accumulated coverage map, if tracking is enabled.
    pub fn coverage(&self) -> Option<&CoverageMap> {
        self.coverage.as_ref()
    }

    /// Mutable access to the coverage map (e.g. to absorb matcher traces).
    pub fn coverage_mut(&mut self) -> Option<&mut CoverageMap> {
        self.coverage.as_mut()
    }

    /// Takes the coverage map out of the generator, disabling tracking.
    pub fn take_coverage(&mut self) -> Option<CoverageMap> {
        self.coverage.take()
    }

    /// The grammar being generated from.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Generates one value for `rule`, or `None` when the rule is unknown.
    pub fn generate(&mut self, rule: &str) -> Option<Vec<u8>> {
        let cg = self.compiled.clone();
        let idx = cg.rule_index(rule)?;
        let root = cg.rule(idx).root?;
        if let Some(cov) = &mut self.coverage {
            cov.record_rule(idx);
        }
        let mut out = Vec::new();
        self.eval_op(&cg, cg.arena(), &[], root, 0, &mut out);
        Some(out)
    }

    /// Generates one value from an arbitrary syntax-tree node (used by the
    /// tree mutator to generate from mutated grammars). The node is
    /// compiled against the shared grammar on the fly.
    pub fn generate_node(&mut self, node: &Node) -> Vec<u8> {
        let cg = self.compiled.clone();
        let program = cg.compile_detached(node);
        let mut out = Vec::new();
        self.eval_op(&cg, &program.arena, &program.extra_names, program.root, 0, &mut out);
        out
    }

    /// Generates `count` values for `rule` (deduplicated, order preserved).
    pub fn generate_many(&mut self, rule: &str, count: usize) -> Vec<Vec<u8>> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        // Allow extra attempts so duplicates do not starve the result.
        for _ in 0..count.saturating_mul(4) {
            if out.len() >= count {
                break;
            }
            if let Some(v) = self.generate(rule) {
                if seen.insert(v.clone()) {
                    out.push(v);
                }
            } else {
                break;
            }
        }
        out
    }

    /// Exhaustively enumerates derivations of `rule`, depth-first, up to
    /// `limit` results (the paper's "depth-first traversal of the tree"
    /// generation mode — random sampling via [`AbnfGenerator::generate`]
    /// complements it for wide grammars).
    ///
    /// Unbounded repetitions are capped at `max_repeat`; wide byte ranges
    /// contribute only their endpoints plus one midpoint so enumeration
    /// stays representative rather than exhaustive over bytes.
    pub fn enumerate(&mut self, rule: &str, limit: usize) -> Vec<Vec<u8>> {
        let cg = self.compiled.clone();
        let Some(idx) = cg.rule_index(rule) else { return Vec::new() };
        let Some(root) = cg.rule(idx).root else { return Vec::new() };
        if let Some(cov) = &mut self.coverage {
            cov.record_rule(idx);
        }
        let mut out = self.enum_op(&cg, cg.arena(), &[], root, 0, limit);
        out.truncate(limit);
        out.sort();
        out.dedup();
        out
    }

    /// The rule name an `Op::Rule` index refers to (grammar/core rules or
    /// a detached program's extra names).
    fn rule_name<'c>(cg: &'c CompiledGrammar, extra: &'c [String], r: u32) -> &'c str {
        let count = cg.rule_count() as u32;
        if r < count {
            &cg.rule(r).name
        } else {
            &extra[(r - count) as usize]
        }
    }

    fn enum_op(
        &mut self,
        cg: &CompiledGrammar,
        arena: &OpArena,
        extra: &[String],
        op: u32,
        depth: usize,
        limit: usize,
    ) -> Vec<Vec<u8>> {
        if limit == 0 {
            return Vec::new();
        }
        match arena.op(op) {
            Op::Alt(range) => {
                let shared = std::ptr::eq(arena, cg.arena());
                let mut out = Vec::new();
                for (arm, &k) in arena.kid_slice(range).iter().enumerate() {
                    if out.len() >= limit {
                        break;
                    }
                    if shared {
                        if let Some(cov) = &mut self.coverage {
                            cov.record_alt(op, arm);
                        }
                    }
                    let got = self.enum_op(cg, arena, extra, k, depth, limit - out.len());
                    out.extend(got);
                }
                out
            }
            Op::Cat(range) => {
                let mut prefixes: Vec<Vec<u8>> = vec![Vec::new()];
                for &part in arena.kid_slice(range) {
                    let parts = self.enum_op(cg, arena, extra, part, depth, limit);
                    if parts.is_empty() {
                        return Vec::new();
                    }
                    prefixes = cross(&prefixes, &parts, limit);
                }
                prefixes
            }
            Op::Repeat { min, max, kid } => {
                let cap = min.saturating_add(self.opts.max_repeat);
                let max = if max == UNBOUNDED { cap } else { max.min(cap) };
                let mut out = Vec::new();
                for n in min..=max {
                    if out.len() >= limit {
                        break;
                    }
                    if n == 0 {
                        out.push(Vec::new());
                        continue;
                    }
                    // Each of the n slots is enumerated afresh and crossed
                    // in, under the remaining budget.
                    let remaining = limit - out.len();
                    let mut prefixes: Vec<Vec<u8>> = vec![Vec::new()];
                    let mut dead = false;
                    for _ in 0..n {
                        let parts = self.enum_op(cg, arena, extra, kid, depth, remaining);
                        if parts.is_empty() {
                            dead = true;
                            break;
                        }
                        prefixes = cross(&prefixes, &parts, remaining);
                    }
                    if !dead {
                        out.extend(prefixes);
                    }
                }
                out
            }
            Op::Opt { kid } => {
                let mut out = vec![Vec::new()];
                out.extend(self.enum_op(cg, arena, extra, kid, depth, limit.saturating_sub(1)));
                out
            }
            Op::Rule(r) => {
                if let Some(cov) = &mut self.coverage {
                    cov.record_rule(r);
                }
                let name = Self::rule_name(cg, extra, r);
                if let Some(values) = self.opts.predefined.get(name) {
                    if !values.is_empty() {
                        return values.iter().take(limit).cloned().collect();
                    }
                }
                let root = if (r as usize) < cg.rule_count() { cg.rule(r).root } else { None };
                if depth >= self.opts.max_depth {
                    // Depth cap: fall back to one sampled value.
                    let mut v = Vec::new();
                    if let Some(root) = root {
                        self.eval_op(cg, cg.arena(), extra, root, depth + 1, &mut v);
                    }
                    return vec![v];
                }
                match root {
                    Some(root) => self.enum_op(cg, cg.arena(), extra, root, depth + 1, limit),
                    None => Vec::new(),
                }
            }
            Op::Lit { range, .. } => vec![arena.lit_bytes(range).to_vec()],
            Op::Byte(b) => vec![vec![b]],
            Op::Range { lo, hi } => {
                // Representative endpoints + midpoint.
                let mid = lo + (hi - lo) / 2;
                let mut picks = vec![lo, mid, hi];
                picks.dedup();
                picks
                    .into_iter()
                    .take(limit)
                    .map(|v| {
                        let mut out = Vec::new();
                        push_char(v, &mut out);
                        out
                    })
                    .collect()
            }
            Op::Fail => Vec::new(),
        }
    }

    fn eval_op(
        &mut self,
        cg: &CompiledGrammar,
        arena: &OpArena,
        extra: &[String],
        op: u32,
        depth: usize,
        out: &mut Vec<u8>,
    ) {
        match arena.op(op) {
            Op::Alt(range) => {
                let kids = arena.kid_slice(range);
                // Alt-arm coverage is keyed by op index, which is only
                // meaningful in the grammar's own arena (detached mutant
                // programs have their own index space).
                let shared = std::ptr::eq(arena, cg.arena());
                let idx = if depth >= self.opts.max_depth {
                    // Depth cap: cheapest alternative.
                    (0..kids.len())
                        .min_by_key(|&i| self.op_min_depth(cg, arena, extra, kids[i]))
                        .unwrap_or(0)
                } else if self.opts.coverage_guided && shared {
                    self.pick_alt_guided(op, kids.len())
                } else {
                    self.rng.gen_range(0..kids.len())
                };
                if shared {
                    if let Some(cov) = &mut self.coverage {
                        cov.record_alt(op, idx);
                    }
                }
                self.eval_op(cg, arena, extra, kids[idx], depth, out);
            }
            Op::Cat(range) => {
                for &k in arena.kid_slice(range) {
                    self.eval_op(cg, arena, extra, k, depth, out);
                }
            }
            Op::Repeat { min, max, kid } => {
                let n = self.pick_repeat(min, max, depth);
                for _ in 0..n {
                    self.eval_op(cg, arena, extra, kid, depth, out);
                }
            }
            Op::Opt { kid } => {
                let take = depth < self.opts.max_depth && self.rng.gen_bool(0.5);
                if take {
                    self.eval_op(cg, arena, extra, kid, depth, out);
                }
            }
            Op::Rule(r) => {
                if let Some(cov) = &mut self.coverage {
                    cov.record_rule(r);
                }
                let name = Self::rule_name(cg, extra, r);
                if let Some(values) = self.opts.predefined.get(name) {
                    if !values.is_empty() {
                        let idx = self.rng.gen_range(0..values.len());
                        out.extend_from_slice(&values[idx]);
                        return;
                    }
                }
                // Hard guard: an ill-founded grammar (mutual recursion with
                // no terminating alternative) must degrade to empty output,
                // never to unbounded recursion.
                if depth > self.opts.max_depth + 64 {
                    return;
                }
                if (r as usize) < cg.rule_count() {
                    if let Some(root) = cg.rule(r).root {
                        self.eval_op(cg, cg.arena(), extra, root, depth + 1, out);
                    }
                }
                // Unknown rule: generate nothing (adaptor reports these).
            }
            Op::Lit { range, .. } => out.extend_from_slice(arena.lit_bytes(range)),
            Op::Byte(b) => out.push(b),
            Op::Range { lo, hi } => {
                let hi = hi.max(lo);
                // Bias printable ASCII inside wide ranges.
                let v = if lo <= 0x21 && hi >= 0x7e {
                    self.rng.gen_range(0x21..=0x7e)
                } else {
                    self.rng.gen_range(lo..=hi)
                };
                push_char(v, out);
            }
            Op::Fail => {
                // Prose-vals and invalid scalars: nothing to generate.
            }
        }
    }

    /// Cold-biased alternation pick: choose uniformly among the arms the
    /// coverage map has not seen yet, falling back to a uniform pick over
    /// all arms once the alternation is saturated.
    fn pick_alt_guided(&mut self, op: u32, arms: usize) -> usize {
        if let Some(cov) = &self.coverage {
            let cold: Vec<usize> = (0..arms).filter(|&i| !cov.alt_covered(op, i)).collect();
            if !cold.is_empty() {
                hdiff_obs::count("gen.alt.cold", 1);
                let pick = self.rng.gen_range(0..cold.len());
                return cold[pick];
            }
            hdiff_obs::count("gen.alt.saturated", 1);
        }
        self.rng.gen_range(0..arms)
    }

    fn pick_repeat(&mut self, min: u32, max: u32, depth: usize) -> u32 {
        let cap = min.saturating_add(self.opts.max_repeat);
        let max = if max == UNBOUNDED { cap } else { max.min(cap) };
        if depth >= self.opts.max_depth || min >= max {
            return min;
        }
        self.rng.gen_range(min..=max)
    }

    /// Minimum expansion depth of each grammar rule (∞ for rules that
    /// cannot terminate without the depth cap, which the grammar should
    /// not have). Fixpoint over the compiled rule table.
    fn compute_min_depths(&mut self) {
        let cg = self.compiled.clone();
        self.min_depth = vec![INF; cg.rule_count()];
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..cg.rule_count() {
                let info = cg.rule(i as u32);
                if info.origin != RuleOrigin::Grammar {
                    continue;
                }
                let Some(root) = info.root else { continue };
                let d = 1 + self.op_min_depth(&cg, cg.arena(), &[], root);
                if d < self.min_depth[i] {
                    self.min_depth[i] = d;
                    changed = true;
                }
            }
        }
    }

    fn op_min_depth(
        &self,
        cg: &CompiledGrammar,
        arena: &OpArena,
        extra: &[String],
        op: u32,
    ) -> usize {
        match arena.op(op) {
            Op::Alt(range) => arena
                .kid_slice(range)
                .iter()
                .map(|&k| self.op_min_depth(cg, arena, extra, k))
                .min()
                .unwrap_or(0),
            Op::Cat(range) => arena
                .kid_slice(range)
                .iter()
                .map(|&k| self.op_min_depth(cg, arena, extra, k))
                .max()
                .unwrap_or(0),
            Op::Repeat { min, kid, .. } => {
                if min == 0 {
                    0
                } else {
                    self.op_min_depth(cg, arena, extra, kid)
                }
            }
            Op::Opt { .. } => 0,
            Op::Rule(r) => {
                let name = Self::rule_name(cg, extra, r);
                if self.opts.predefined.get(name).is_some() {
                    return 0; // predefined values cost no traversal
                }
                if (r as usize) < cg.rule_count() {
                    match cg.rule(r).origin {
                        RuleOrigin::Grammar => self.min_depth[r as usize],
                        RuleOrigin::Core => 1,
                        RuleOrigin::Undefined => INF,
                    }
                } else {
                    INF
                }
            }
            _ => 0,
        }
    }
}

/// Cross product of `prefixes × parts`, capped at `limit` results.
fn cross(prefixes: &[Vec<u8>], parts: &[Vec<u8>], limit: usize) -> Vec<Vec<u8>> {
    let mut next = Vec::new();
    'outer: for p in prefixes {
        for q in parts {
            if next.len() >= limit {
                break 'outer;
            }
            let mut v = p.clone();
            v.extend_from_slice(q);
            next.push(v);
        }
    }
    next
}

fn push_char(v: u32, out: &mut Vec<u8>) {
    if v <= 0xff {
        out.push(v as u8);
    } else if let Some(c) = char::from_u32(v) {
        let mut buf = [0u8; 4];
        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_abnf::parse_rulelist;

    fn grammar(text: &str) -> Grammar {
        Grammar::from_rules("t", parse_rulelist(text).unwrap())
    }

    fn gen(text: &str) -> AbnfGenerator {
        AbnfGenerator::new(
            grammar(text),
            GenOptions { predefined: PredefinedRules::empty(), ..GenOptions::default() },
        )
    }

    #[test]
    fn literal_generation() {
        let mut g = gen("greeting = \"hello\"");
        assert_eq!(g.generate("greeting").unwrap(), b"hello");
        assert!(g.generate("missing").is_none());
    }

    #[test]
    fn http_version_generation_is_valid() {
        let mut g =
            gen("HTTP-version = HTTP-name \"/\" DIGIT \".\" DIGIT\nHTTP-name = %x48.54.54.50");
        for _ in 0..20 {
            let v = g.generate("HTTP-version").unwrap();
            assert_eq!(v.len(), 8);
            assert!(v.starts_with(b"HTTP/"), "{v:?}");
            assert!(v[5].is_ascii_digit() && v[6] == b'.' && v[7].is_ascii_digit());
        }
    }

    #[test]
    fn repetition_bounds_respected() {
        let mut g = gen("x = 2*4\"a\"");
        for _ in 0..20 {
            let v = g.generate("x").unwrap();
            assert!((2..=4).contains(&v.len()), "{v:?}");
        }
    }

    #[test]
    fn unbounded_repetition_capped() {
        let mut g = AbnfGenerator::new(
            grammar("x = *\"a\""),
            GenOptions {
                max_repeat: 3,
                predefined: PredefinedRules::empty(),
                ..GenOptions::default()
            },
        );
        for _ in 0..20 {
            assert!(g.generate("x").unwrap().len() <= 3);
        }
    }

    #[test]
    fn recursive_rules_terminate() {
        // RFC 7230 comment is self-recursive.
        let mut g = gen("comment = \"(\" *( ctext / comment ) \")\"\nctext = %x61-7A");
        for _ in 0..50 {
            let v = g.generate("comment").unwrap();
            assert!(v.starts_with(b"(") && v.ends_with(b")"));
        }
    }

    #[test]
    fn predefined_values_used() {
        let mut predefined = PredefinedRules::empty();
        predefined.set("uri-host", vec![b"h1.com".to_vec()]);
        let mut g = AbnfGenerator::new(
            grammar("Host = uri-host [ \":\" port ]\nuri-host = 1*ALPHA\nport = 1*DIGIT"),
            GenOptions { predefined, ..GenOptions::default() },
        );
        for _ in 0..10 {
            let v = g.generate("Host").unwrap();
            assert!(v.starts_with(b"h1.com"), "{:?}", String::from_utf8_lossy(&v));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let make = |seed| {
            let mut g = AbnfGenerator::new(
                grammar("x = 1*5ALPHA"),
                GenOptions { seed, predefined: PredefinedRules::empty(), ..GenOptions::default() },
            );
            g.generate_many("x", 10)
        };
        assert_eq!(make(42), make(42));
        assert_ne!(make(42), make(43));
    }

    #[test]
    fn generate_many_deduplicates() {
        let mut g = gen("x = \"a\" / \"b\"");
        let vs = g.generate_many("x", 10);
        assert!(vs.len() <= 2);
        let set: std::collections::BTreeSet<_> = vs.iter().collect();
        assert_eq!(set.len(), vs.len());
    }

    #[test]
    fn num_range_stays_in_range() {
        let mut g = gen("d = %x30-39");
        for _ in 0..20 {
            let v = g.generate("d").unwrap();
            assert!(v[0].is_ascii_digit());
        }
    }

    #[test]
    fn enumeration_is_exhaustive_for_small_rules() {
        let mut g = gen("coding = \"chunked\" / \"gzip\" / \"deflate\"");
        let all = g.enumerate("coding", 100);
        assert_eq!(all, vec![b"chunked".to_vec(), b"deflate".to_vec(), b"gzip".to_vec()]);
    }

    #[test]
    fn enumeration_expands_repetitions_and_options() {
        let mut g = gen("x = 1*2\"a\" [ \"b\" ]");
        let mut all = g.enumerate("x", 100);
        all.sort();
        assert_eq!(all, vec![b"a".to_vec(), b"aa".to_vec(), b"aab".to_vec(), b"ab".to_vec()]);
    }

    #[test]
    fn enumeration_respects_the_limit() {
        let mut g = gen("d = 4DIGIT");
        let some = g.enumerate("d", 10);
        assert!(some.len() <= 10);
        assert!(!some.is_empty());
        for v in &some {
            assert_eq!(v.len(), 4);
            assert!(v.iter().all(u8::is_ascii_digit));
        }
    }

    #[test]
    fn enumeration_of_http_version_covers_grammar_shape() {
        let mut g =
            gen("HTTP-version = HTTP-name \"/\" DIGIT \".\" DIGIT\nHTTP-name = %x48.54.54.50");
        let all = g.enumerate("HTTP-version", 1000);
        // DIGIT enumerates endpoints + midpoint: 3 choices per digit slot.
        assert_eq!(all.len(), 9);
        assert!(all.contains(&b"HTTP/0.0".to_vec()));
        assert!(all.contains(&b"HTTP/9.9".to_vec()));
        for v in &all {
            assert!(v.starts_with(b"HTTP/"));
        }
    }

    #[test]
    fn enumerated_values_match_the_grammar() {
        let g = grammar("t = 1*2( \"x\" / \"y\" ) [ \":\" DIGIT ]");
        let mut generator = AbnfGenerator::new(
            g.clone(),
            GenOptions { predefined: PredefinedRules::empty(), ..GenOptions::default() },
        );
        let all = generator.enumerate("t", 200);
        assert!(all.len() >= 6);
        for v in &all {
            assert!(
                hdiff_abnf::matcher::matches(&g, "t", v).is_match(),
                "{:?}",
                String::from_utf8_lossy(v)
            );
        }
    }

    #[test]
    fn generates_valid_host_from_real_corpus_grammar() {
        let out = hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze(&hdiff_corpus::core_documents());
        let mut g = AbnfGenerator::new(out.grammar, GenOptions::default());
        let hosts = g.generate_many("Host", 25);
        assert!(!hosts.is_empty());
        for h in &hosts {
            // Predefined uri-host keeps these realistic.
            let s = String::from_utf8_lossy(h);
            assert!(
                s.starts_with("h1.com")
                    || s.starts_with("h2.com")
                    || s.starts_with("example.com")
                    || s.starts_with("127.0.0.1")
                    || s.starts_with('['),
                "{s}"
            );
        }
    }

    #[test]
    fn generates_whole_http_message_from_corpus_grammar() {
        let out = hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze(&hdiff_corpus::core_documents());
        let mut g = AbnfGenerator::new(out.grammar, GenOptions::default());
        let msgs = g.generate_many("HTTP-message", 10);
        assert!(!msgs.is_empty());
        // Every generated message must contain a CRLF-terminated start line.
        for m in &msgs {
            assert!(m.windows(2).any(|w| w == b"\r\n"), "{:?}", String::from_utf8_lossy(m));
        }
    }

    #[test]
    fn compiled_walk_preserves_the_ast_walk_rng_stream() {
        // The arena lowering is structure-preserving, so generation from a
        // detached compilation of a rule's AST must be byte-identical to
        // generation from the rule itself under the same seed.
        let g = grammar("Host = 1*3ALPHA [ \":\" 1*2DIGIT ] *( \";\" %x61-7A )");
        let direct: Vec<_> = {
            let mut gen = AbnfGenerator::new(
                g.clone(),
                GenOptions { predefined: PredefinedRules::empty(), ..GenOptions::default() },
            );
            (0..30).filter_map(|_| gen.generate("Host")).collect()
        };
        let via_node: Vec<_> = {
            let node = g.get("Host").unwrap().node.clone();
            let mut gen = AbnfGenerator::new(
                g,
                GenOptions { predefined: PredefinedRules::empty(), ..GenOptions::default() },
            );
            (0..30).map(|_| gen.generate_node(&node)).collect()
        };
        assert_eq!(direct, via_node);
    }
}
