//! ABNF-tree mutation (§III-D, *SR Translator*).
//!
//! > "HDiff will first generate a series of host headers that match the
//! > ABNF rules and then **mutate the original ABNF syntax tree** to
//! > generate malformed host data."
//!
//! Byte-level mutation (see [`crate::mutate`]) perturbs serialized
//! requests; tree mutation perturbs the *grammar* and then generates from
//! the mutated tree, producing values that are structurally close to the
//! language but just outside it — `h1..com`, `h1.com:80:80`,
//! `h1.com@h2.com`-style near-misses the paper credits for its effective
//! HoT corpus.

use hdiff_abnf::{Grammar, Node, Repeat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::{AbnfGenerator, GenOptions};
use crate::predefined::PredefinedRules;

/// The tree-mutation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeMutation {
    /// Duplicate one element of a concatenation (`host "." host`).
    DuplicateElement,
    /// Drop one element of a concatenation.
    DropElement,
    /// Materialize an optional element twice (`[":" port]` → `":" port ":" port`).
    DoubleOptional,
    /// Bump a repetition's bounds beyond the rule's limits.
    BumpRepetition,
    /// Inject a reserved delimiter literal between elements (`@`, `,`,
    /// `/`, ` `).
    InjectDelimiter,
    /// Replace a literal with a visually-close wrong one (`.` → `..`).
    StutterLiteral,
}

impl TreeMutation {
    /// All operators.
    pub const ALL: [TreeMutation; 6] = [
        TreeMutation::DuplicateElement,
        TreeMutation::DropElement,
        TreeMutation::DoubleOptional,
        TreeMutation::BumpRepetition,
        TreeMutation::InjectDelimiter,
        TreeMutation::StutterLiteral,
    ];
}

const DELIMITERS: [&str; 6] = ["@", ",", "/", " ", ":", ".."];

/// Seeded ABNF-tree mutator.
#[derive(Debug)]
pub struct TreeMutator {
    rng: StdRng,
}

impl TreeMutator {
    /// Creates a mutator with a seed.
    pub fn new(seed: u64) -> TreeMutator {
        TreeMutator { rng: StdRng::seed_from_u64(seed) }
    }

    /// Applies one random mutation somewhere in the tree, returning the
    /// mutated copy and the operator used.
    pub fn mutate(&mut self, node: &Node) -> (Node, TreeMutation) {
        let op = TreeMutation::ALL[self.rng.gen_range(0..TreeMutation::ALL.len())];
        let mut copy = node.clone();
        if !self.apply(&mut copy, op) {
            // The chosen operator found no applicable site; fall back to
            // delimiter injection, which always applies at the root.
            let mut copy2 = node.clone();
            self.inject_at_root(&mut copy2);
            return (copy2, TreeMutation::InjectDelimiter);
        }
        (copy, op)
    }

    /// Produces `count` byte values generated from mutated copies of
    /// `rule`'s tree — the malformed-but-plausible corpus.
    pub fn malformed_values(
        &mut self,
        grammar: &Grammar,
        rule: &str,
        count: usize,
    ) -> Vec<(Vec<u8>, TreeMutation)> {
        let Some(r) = grammar.get(rule) else { return Vec::new() };
        let base = r.node.clone();
        let mut out = Vec::new();
        for i in 0..count {
            let (mutated, op) = self.mutate(&base);
            let mut generator = AbnfGenerator::new(
                grammar.clone(),
                GenOptions {
                    seed: self.rng.gen(),
                    predefined: PredefinedRules::standard(),
                    ..GenOptions::default()
                },
            );
            let value = generator.generate_node(&mutated);
            if !value.is_empty() || i == 0 {
                out.push((value, op));
            }
        }
        out
    }

    fn apply(&mut self, node: &mut Node, op: TreeMutation) -> bool {
        // Collect applicable sites, pick one uniformly, mutate in place.
        let sites = count_sites(node, op);
        if sites == 0 {
            return false;
        }
        let target = self.rng.gen_range(0..sites);
        let mut seen = 0usize;
        self.apply_at(node, op, target, &mut seen)
    }

    fn inject_at_root(&mut self, node: &mut Node) {
        let delim = DELIMITERS[self.rng.gen_range(0..DELIMITERS.len())];
        let lit = Node::CharVal { value: delim.to_string(), case_sensitive: false };
        let old = std::mem::replace(node, Node::Alternation(Vec::new()));
        *node = Node::Concatenation(vec![old.clone(), lit, old]);
    }

    #[allow(clippy::only_used_in_recursion)]
    fn apply_at(
        &mut self,
        node: &mut Node,
        op: TreeMutation,
        target: usize,
        seen: &mut usize,
    ) -> bool {
        if site_matches(node, op) {
            if *seen == target {
                self.mutate_site(node, op);
                return true;
            }
            *seen += 1;
        }
        match node {
            Node::Alternation(v) | Node::Concatenation(v) => {
                for n in v {
                    if self.apply_at(n, op, target, seen) {
                        return true;
                    }
                }
                false
            }
            Node::Repetition(_, i) | Node::Group(i) | Node::Optional(i) => {
                self.apply_at(i, op, target, seen)
            }
            _ => false,
        }
    }

    fn mutate_site(&mut self, node: &mut Node, op: TreeMutation) {
        match (op, &mut *node) {
            (TreeMutation::DuplicateElement, Node::Concatenation(v)) => {
                let idx = self.rng.gen_range(0..v.len());
                let dup = v[idx].clone();
                v.insert(idx, dup);
            }
            (TreeMutation::DropElement, Node::Concatenation(v)) => {
                let idx = self.rng.gen_range(0..v.len());
                v.remove(idx);
            }
            (TreeMutation::DoubleOptional, Node::Optional(inner)) => {
                let i = (**inner).clone();
                *node = Node::Concatenation(vec![i.clone(), i]);
            }
            (TreeMutation::BumpRepetition, Node::Repetition(rep, _)) => {
                // Exceed the maximum (or force extra minimum repetitions).
                let bumped = match rep.max {
                    Some(max) => Repeat { min: max + 1, max: Some(max + 2) },
                    None => Repeat { min: rep.min + 3, max: Some(rep.min + 4) },
                };
                *rep = bumped;
            }
            (TreeMutation::InjectDelimiter, Node::Concatenation(v)) => {
                let delim = DELIMITERS[self.rng.gen_range(0..DELIMITERS.len())];
                let idx = self.rng.gen_range(0..=v.len());
                v.insert(idx, Node::CharVal { value: delim.to_string(), case_sensitive: false });
            }
            (TreeMutation::StutterLiteral, Node::CharVal { value, .. }) => {
                let doubled = value.clone();
                value.push_str(&doubled);
            }
            _ => {}
        }
    }
}

fn site_matches(node: &Node, op: TreeMutation) -> bool {
    match op {
        TreeMutation::DuplicateElement
        | TreeMutation::DropElement
        | TreeMutation::InjectDelimiter => matches!(node, Node::Concatenation(v) if !v.is_empty()),
        TreeMutation::DoubleOptional => matches!(node, Node::Optional(_)),
        TreeMutation::BumpRepetition => matches!(node, Node::Repetition(..)),
        TreeMutation::StutterLiteral => {
            matches!(node, Node::CharVal { value, .. } if !value.is_empty())
        }
    }
}

fn count_sites(node: &Node, op: TreeMutation) -> usize {
    let own = usize::from(site_matches(node, op));
    own + match node {
        Node::Alternation(v) | Node::Concatenation(v) => v.iter().map(|n| count_sites(n, op)).sum(),
        Node::Repetition(_, i) | Node::Group(i) | Node::Optional(i) => count_sites(i, op),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_abnf::{matcher, parse_rulelist};

    fn grammar(text: &str) -> Grammar {
        Grammar::from_rules("t", parse_rulelist(text).unwrap())
    }

    #[test]
    fn mutation_changes_the_tree() {
        let g = grammar("Host = uri-host [ \":\" port ]\nuri-host = 1*ALPHA\nport = 1*DIGIT\n");
        let base = g.get("Host").unwrap().node.clone();
        let mut m = TreeMutator::new(7);
        let mut changed = 0;
        for _ in 0..20 {
            let (mutated, _) = m.mutate(&base);
            if mutated != base {
                changed += 1;
            }
        }
        assert!(changed >= 18, "only {changed}/20 mutations changed the tree");
    }

    #[test]
    fn malformed_host_values_leave_the_language() {
        let g = grammar(
            "Host = uri-host [ \":\" port ]\nuri-host = 1*( ALPHA / DIGIT / \".\" / \"-\" )\nport = 1*DIGIT\n",
        );
        let mut m = TreeMutator::new(42);
        let values = m.malformed_values(&g, "Host", 40);
        assert!(!values.is_empty());
        let outside =
            values.iter().filter(|(v, _)| !matcher::matches(&g, "Host", v).is_match()).count();
        // Not every mutation leaves the language (duplicating an ALPHA
        // repetition stays inside), but a solid share must.
        assert!(outside * 3 >= values.len(), "{outside}/{} mutants escaped", values.len());
    }

    #[test]
    fn double_optional_materializes_double_port() {
        let g = grammar("Host = \"h\" [ \":\" \"8\" ]\n");
        let base = g.get("Host").unwrap().node.clone();
        let mut m = TreeMutator::new(1);
        // Drive until the DoubleOptional operator fires.
        for _ in 0..200 {
            let (mutated, op) = m.mutate(&base);
            if op == TreeMutation::DoubleOptional {
                let mut generator = AbnfGenerator::new(
                    g.clone(),
                    GenOptions { predefined: PredefinedRules::empty(), ..GenOptions::default() },
                );
                let v = generator.generate_node(&mutated);
                assert_eq!(v, b"h:8:8", "{:?}", String::from_utf8_lossy(&v));
                return;
            }
        }
        panic!("DoubleOptional never selected");
    }

    #[test]
    fn real_corpus_host_mutants_include_hot_shapes() {
        let analysis = hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze(&hdiff_corpus::core_documents());
        let mut m = TreeMutator::new(0xb0b);
        let values = m.malformed_values(&analysis.grammar, "Host", 60);
        assert!(values.len() >= 30, "{}", values.len());
        // At least one mutant must contain a routing-ambiguity delimiter.
        assert!(
            values.iter().any(|(v, _)| v.iter().any(|b| matches!(b, b'@' | b',' | b'/' | b' '))),
            "no ambiguous delimiters among mutants"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grammar("Host = 1*ALPHA [ \":\" 1*DIGIT ]\n");
        let run = |seed| {
            let mut m = TreeMutator::new(seed);
            m.malformed_values(&g, "Host", 10)
        };
        assert_eq!(run(5), run(5));
    }
}
