//! Generator soundness: everything the ABNF generator emits under *free
//! traversal* must be recognized by the ABNF matcher for the same rule —
//! i.e. generation is sound w.r.t. the grammar (the depth cap and
//! repetition cap restrict the language, never leave it).

use proptest::prelude::*;

use hdiff_abnf::{matcher, Grammar};
use hdiff_gen::{AbnfGenerator, GenOptions, PredefinedRules};

fn corpus_grammar() -> Grammar {
    use std::sync::OnceLock;
    static GRAMMAR: OnceLock<Grammar> = OnceLock::new();
    GRAMMAR
        .get_or_init(|| {
            hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
                .analyze(&hdiff_corpus::core_documents())
                .grammar
        })
        .clone()
}

/// Rules exercised by the soundness property. Chosen to cover literals,
/// ranges, repetition, alternation, optionality and cross-document
/// imports.
const RULES: [&str; 10] = [
    "HTTP-version",
    "Host",
    "uri-host",
    "token",
    "transfer-coding",
    "chunk-size",
    "origin-form",
    "absolute-path",
    "Content-Length",
    "reg-name",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn free_generation_is_recognized_by_the_matcher(seed in any::<u64>(), rule_idx in 0usize..RULES.len()) {
        let rule = RULES[rule_idx];
        let grammar = corpus_grammar();
        let mut generator = AbnfGenerator::new(
            grammar.clone(),
            GenOptions {
                predefined: PredefinedRules::empty(),
                seed,
                ..GenOptions::default()
            },
        );
        let Some(value) = generator.generate(rule) else {
            return Err(TestCaseError::fail(format!("{rule} not generable")));
        };
        // Default budget, strict Match: with the memoizing matcher,
        // generated values must neither miss nor overflow.
        let outcome = matcher::matches(&grammar, rule, &value);
        prop_assert!(
            outcome.is_match(),
            "{rule}: generated {:?} → {outcome:?}",
            String::from_utf8_lossy(&value)
        );
    }
}

#[test]
fn predefined_generation_is_recognized_for_key_rules() {
    // The predefined table's representative values must themselves belong
    // to the productions they stand in for.
    let grammar = corpus_grammar();
    let mut generator = AbnfGenerator::new(grammar.clone(), GenOptions::default());
    for rule in ["Host", "uri-host", "HTTP-version", "transfer-coding", "origin-form"] {
        for value in generator.generate_many(rule, 16) {
            let outcome = matcher::matches(&grammar, rule, &value);
            assert!(
                outcome.is_match(),
                "{rule}: {:?} → {outcome:?}",
                String::from_utf8_lossy(&value)
            );
        }
    }
}
