//! SR semantic definitions — the second manual input of Fig. 3.
//!
//! These map the enumerable message-description vocabulary to *test-case
//! generation strategies* and the role-action vocabulary to *checkable
//! expectations*. The paper argues this manual mapping is worth the effort
//! because both vocabularies are small and closed.

use crate::model::{FieldState, RoleAction};

/// How the SR translator realizes a [`FieldState`] in a concrete request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum GenStrategy {
    /// Emit a grammar-valid value from the ABNF generator.
    UseValid,
    /// Emit a mutated, grammar-invalid value.
    MutateInvalid,
    /// Emit the field twice (or a duplicated list value).
    Repeat,
    /// Omit the field entirely.
    Omit,
    /// Emit the field with an empty value.
    EmptyValue,
    /// Emit an oversized value.
    Oversize,
    /// Emit whitespace between name and colon.
    SpaceBeforeColon,
    /// Emit together with a conflicting companion field (CL with TE).
    AddConflict,
}

/// The observable behavior an action translates to, checked against the
/// implementation's `HMetrics`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Expectation {
    /// Status codes that satisfy the requirement (empty = any).
    pub allowed_status: Vec<u16>,
    /// The implementation must close the connection.
    pub must_close: bool,
    /// The implementation must not forward the message (intermediaries).
    pub must_not_forward: bool,
    /// The implementation must not store/reuse the response (caches).
    pub must_not_cache: bool,
    /// The implementation must not treat the message as having this
    /// field's semantics (e.g. must ignore Expect in HTTP/1.0).
    pub must_ignore_field: bool,
}

impl Expectation {
    fn none() -> Expectation {
        Expectation {
            allowed_status: Vec::new(),
            must_close: false,
            must_not_forward: false,
            must_not_cache: false,
            must_ignore_field: false,
        }
    }
}

/// The full semantic definition table.
#[derive(Debug, Clone, Default)]
pub struct SemanticDefinitions;

impl SemanticDefinitions {
    /// Creates the default (paper) definitions.
    pub fn new() -> SemanticDefinitions {
        SemanticDefinitions
    }

    /// The generation strategy for a field state.
    pub fn strategy(&self, state: FieldState) -> GenStrategy {
        match state {
            FieldState::Present | FieldState::Valid => GenStrategy::UseValid,
            FieldState::Absent => GenStrategy::Omit,
            FieldState::Invalid => GenStrategy::MutateInvalid,
            FieldState::Multiple => GenStrategy::Repeat,
            FieldState::Empty => GenStrategy::EmptyValue,
            FieldState::TooLong => GenStrategy::Oversize,
            FieldState::MalformedSpacing => GenStrategy::SpaceBeforeColon,
            FieldState::Conflicting => GenStrategy::AddConflict,
        }
    }

    /// The checkable expectation for a role action.
    pub fn expectation(&self, action: &RoleAction) -> Expectation {
        match action {
            RoleAction::Respond(code) => {
                Expectation { allowed_status: vec![*code], ..Expectation::none() }
            }
            RoleAction::Reject => {
                Expectation { allowed_status: (400..=431).collect(), ..Expectation::none() }
            }
            RoleAction::Accept => {
                Expectation { allowed_status: vec![200, 201, 204, 206], ..Expectation::none() }
            }
            RoleAction::Ignore => Expectation {
                must_ignore_field: true,
                allowed_status: vec![200, 201, 204, 206],
                ..Expectation::none()
            },
            RoleAction::CloseConnection => Expectation { must_close: true, ..Expectation::none() },
            RoleAction::Forward => Expectation::none(),
            RoleAction::NotForward => Expectation { must_not_forward: true, ..Expectation::none() },
            RoleAction::RemoveField(_) | RoleAction::ReplaceField(_) => Expectation::none(),
            RoleAction::NotCache => Expectation { must_not_cache: true, ..Expectation::none() },
            // A sender-side prohibition carries no recipient expectation;
            // the translator still generates the violating shape as a
            // differential seed.
            RoleAction::NotGenerate => Expectation::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_field_state_has_a_strategy() {
        let defs = SemanticDefinitions::new();
        for state in FieldState::ALL {
            let _ = defs.strategy(state); // total function, must not panic
        }
        assert_eq!(defs.strategy(FieldState::Multiple), GenStrategy::Repeat);
        assert_eq!(defs.strategy(FieldState::MalformedSpacing), GenStrategy::SpaceBeforeColon);
    }

    #[test]
    fn respond_expectation_pins_status() {
        let defs = SemanticDefinitions::new();
        let e = defs.expectation(&RoleAction::Respond(400));
        assert_eq!(e.allowed_status, vec![400]);
        assert!(!e.must_close);
    }

    #[test]
    fn reject_expectation_allows_any_4xx() {
        let defs = SemanticDefinitions::new();
        let e = defs.expectation(&RoleAction::Reject);
        assert!(e.allowed_status.contains(&400));
        assert!(e.allowed_status.contains(&417));
        assert!(!e.allowed_status.contains(&200));
    }

    #[test]
    fn behavioral_expectations() {
        let defs = SemanticDefinitions::new();
        assert!(defs.expectation(&RoleAction::CloseConnection).must_close);
        assert!(defs.expectation(&RoleAction::NotForward).must_not_forward);
        assert!(defs.expectation(&RoleAction::NotCache).must_not_cache);
        assert!(defs.expectation(&RoleAction::Ignore).must_ignore_field);
    }
}
