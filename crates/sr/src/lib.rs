//! Specification Requirement (SR) model for HDiff.
//!
//! An SR is the paper's unit of extracted semantics: a sentence like
//! *"A server MUST respond with a 400 (Bad Request) status code to any
//! HTTP/1.1 request message that lacks a Host header field"* converted to a
//! formal rule — a **role**, a **modality**, one or more **message
//! descriptions** (what the request looks like) and a **role action** (what
//! the implementation must do).
//!
//! This crate also ships two of the four manual inputs HDiff needs
//! (Fig. 3 of the paper):
//!
//! * [`templates`] — the *SR seed template sets* the Text2Rule converter
//!   tests hypotheses against;
//! * [`semantics`] — the *SR semantic definitions* the SR translator uses
//!   to turn message descriptions into concrete test messages and role
//!   actions into checkable expectations.

pub mod model;
pub mod semantics;
pub mod templates;

pub use model::{
    FieldState, MessageDescription, MessageField, Modality, Role, RoleAction, SpecRequirement,
};
pub use semantics::{Expectation, GenStrategy, SemanticDefinitions};
pub use templates::{default_templates, SrTemplate, TemplateKind};
