//! The formal SR data model.

use std::fmt;

/// The protocol roles HTTP requirements are placed on (RFC 7230 §2.5 names
/// ten: senders, recipients, clients, servers, user agents, intermediaries,
/// origin servers, proxies, gateways, caches).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Role {
    /// Any party generating a message.
    Sender,
    /// Any party receiving a message.
    Recipient,
    /// The connecting party.
    Client,
    /// The serving party (generic).
    Server,
    /// The end-user client program.
    UserAgent,
    /// Any middlebox (proxy, gateway, cache, …).
    Intermediary,
    /// The authoritative server for the resource.
    OriginServer,
    /// A client-selected forwarding agent.
    Proxy,
    /// A reverse proxy.
    Gateway,
    /// A response store.
    Cache,
}

impl Role {
    /// All ten roles.
    pub const ALL: [Role; 10] = [
        Role::Sender,
        Role::Recipient,
        Role::Client,
        Role::Server,
        Role::UserAgent,
        Role::Intermediary,
        Role::OriginServer,
        Role::Proxy,
        Role::Gateway,
        Role::Cache,
    ];

    /// Maps an RFC noun (singular or plural, any case) to a role.
    ///
    /// ```
    /// use hdiff_sr::Role;
    /// assert_eq!(Role::from_keyword("Proxies"), Some(Role::Proxy));
    /// assert_eq!(Role::from_keyword("origin server"), Some(Role::OriginServer));
    /// assert_eq!(Role::from_keyword("attacker"), None);
    /// ```
    pub fn from_keyword(word: &str) -> Option<Role> {
        let w = word.trim().to_ascii_lowercase();
        let w = if let Some(stem) = w.strip_suffix("ies") {
            format!("{stem}y") // proxies -> proxy, intermediaries -> intermediary
        } else if w.ends_with('s') && !w.ends_with("ss") {
            w[..w.len() - 1].to_string() // servers -> server, caches -> cache
        } else {
            w
        };
        match w.as_str() {
            "sender" => Some(Role::Sender),
            "recipient" => Some(Role::Recipient),
            "client" => Some(Role::Client),
            "server" => Some(Role::Server),
            "user agent" | "user-agent" | "useragent" => Some(Role::UserAgent),
            "intermediary" | "intermediari" => Some(Role::Intermediary),
            "origin server" | "origin-server" => Some(Role::OriginServer),
            "proxy" | "proxi" => Some(Role::Proxy),
            "gateway" => Some(Role::Gateway),
            "cache" | "shared cache" => Some(Role::Cache),
            _ => None,
        }
    }

    /// Whether an implementation acting as `other` is bound by a
    /// requirement on `self` (e.g. every proxy is a recipient and a sender;
    /// an origin server is a server).
    pub fn applies_to(self, other: Role) -> bool {
        if self == other {
            return true;
        }
        match self {
            Role::Sender | Role::Recipient => true, // everyone sends and receives
            Role::Server => matches!(other, Role::OriginServer | Role::Gateway),
            Role::Intermediary => matches!(other, Role::Proxy | Role::Gateway | Role::Cache),
            Role::Client => matches!(other, Role::UserAgent | Role::Proxy),
            _ => false,
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Sender => "sender",
            Role::Recipient => "recipient",
            Role::Client => "client",
            Role::Server => "server",
            Role::UserAgent => "user agent",
            Role::Intermediary => "intermediary",
            Role::OriginServer => "origin server",
            Role::Proxy => "proxy",
            Role::Gateway => "gateway",
            Role::Cache => "cache",
        };
        f.write_str(s)
    }
}

/// Requirement strength, following RFC 2119 plus the non-keyword strong
/// phrasings the paper's sentiment finder is designed to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Modality {
    /// MUST / REQUIRED / SHALL.
    Must,
    /// MUST NOT / SHALL NOT / "not allowed" / "cannot".
    MustNot,
    /// SHOULD / RECOMMENDED / "ought to".
    Should,
    /// SHOULD NOT / "ought not".
    ShouldNot,
    /// MAY / OPTIONAL.
    May,
}

impl Modality {
    /// Whether violating the requirement is a specification violation
    /// (MUST-level) rather than a discretionary difference.
    pub fn is_mandatory(self) -> bool {
        matches!(self, Modality::Must | Modality::MustNot)
    }

    /// Whether the requirement is phrased negatively.
    pub fn is_negative(self) -> bool {
        matches!(self, Modality::MustNot | Modality::ShouldNot)
    }
}

impl fmt::Display for Modality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Modality::Must => "MUST",
            Modality::MustNot => "MUST NOT",
            Modality::Should => "SHOULD",
            Modality::ShouldNot => "SHOULD NOT",
            Modality::May => "MAY",
        };
        f.write_str(s)
    }
}

/// The part of the message a description constrains.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MessageField {
    /// A named header field (`Host`, `Content-Length`, …).
    Header(String),
    /// The request line as a whole.
    RequestLine,
    /// The `HTTP-version` token.
    HttpVersion,
    /// The method token.
    Method,
    /// The request-target.
    RequestTarget,
    /// The message body / framing.
    MessageBody,
    /// Chunked-coding structure (chunk-size, chunk-data).
    Chunked,
}

impl fmt::Display for MessageField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageField::Header(name) => write!(f, "{name} header"),
            MessageField::RequestLine => f.write_str("request-line"),
            MessageField::HttpVersion => f.write_str("HTTP-version"),
            MessageField::Method => f.write_str("method"),
            MessageField::RequestTarget => f.write_str("request-target"),
            MessageField::MessageBody => f.write_str("message body"),
            MessageField::Chunked => f.write_str("chunked coding"),
        }
    }
}

/// The state a message description asserts about a field — the paper's
/// enumerable message-description vocabulary (valid, invalid, repeat,
/// empty, too long, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FieldState {
    /// The field is present (any value).
    Present,
    /// The field is absent.
    Absent,
    /// The field is present with a grammar-valid value.
    Valid,
    /// The field is present with a grammar-invalid value.
    Invalid,
    /// The field occurs more than once (or its value repeats as a list).
    Multiple,
    /// The field is present with an empty value.
    Empty,
    /// The field exceeds the recipient's size limits.
    TooLong,
    /// Field name/colon spacing is malformed (whitespace before colon).
    MalformedSpacing,
    /// Two mutually exclusive fields are both present (e.g. CL + TE).
    Conflicting,
}

impl FieldState {
    /// All states, for template enumeration.
    pub const ALL: [FieldState; 9] = [
        FieldState::Present,
        FieldState::Absent,
        FieldState::Valid,
        FieldState::Invalid,
        FieldState::Multiple,
        FieldState::Empty,
        FieldState::TooLong,
        FieldState::MalformedSpacing,
        FieldState::Conflicting,
    ];
}

impl fmt::Display for FieldState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FieldState::Present => "present",
            FieldState::Absent => "absent",
            FieldState::Valid => "valid",
            FieldState::Invalid => "invalid",
            FieldState::Multiple => "multiple",
            FieldState::Empty => "empty",
            FieldState::TooLong => "too long",
            FieldState::MalformedSpacing => "malformed spacing",
            FieldState::Conflicting => "conflicting",
        };
        f.write_str(s)
    }
}

/// One message description: `field is state`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct MessageDescription {
    /// The constrained field.
    pub field: MessageField,
    /// Its asserted state.
    pub state: FieldState,
}

impl MessageDescription {
    /// Convenience constructor.
    pub fn new(field: MessageField, state: FieldState) -> MessageDescription {
        MessageDescription { field, state }
    }

    /// Constructor for header descriptions.
    pub fn header(name: &str, state: FieldState) -> MessageDescription {
        MessageDescription { field: MessageField::Header(name.to_string()), state }
    }
}

impl fmt::Display for MessageDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} is {}", self.field, self.state)
    }
}

/// What the role is required to do — the paper's enumerable role-action
/// vocabulary (close connection, report error, respond N, not forward, …).
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RoleAction {
    /// Respond with a specific status code.
    Respond(u16),
    /// Reject the message (a 4xx, specific code unspecified).
    Reject,
    /// Accept and process the message.
    Accept,
    /// Ignore the field/expectation but process the message.
    Ignore,
    /// Close the connection.
    CloseConnection,
    /// Forward the message (intermediaries).
    Forward,
    /// Do not forward the message.
    NotForward,
    /// Remove the field before forwarding.
    RemoveField(String),
    /// Replace the field/value before forwarding.
    ReplaceField(String),
    /// Do not store/reuse the response (caches).
    NotCache,
    /// Do not generate/send such a message (sender-side prohibition).
    /// Messages violating it are prime differential-test seeds: recipient
    /// behavior on them is where implementations diverge.
    NotGenerate,
}

impl fmt::Display for RoleAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoleAction::Respond(code) => write!(f, "respond {code}"),
            RoleAction::Reject => f.write_str("reject"),
            RoleAction::Accept => f.write_str("accept"),
            RoleAction::Ignore => f.write_str("ignore"),
            RoleAction::CloseConnection => f.write_str("close connection"),
            RoleAction::Forward => f.write_str("forward"),
            RoleAction::NotForward => f.write_str("not forward"),
            RoleAction::RemoveField(n) => write!(f, "remove {n}"),
            RoleAction::ReplaceField(n) => write!(f, "replace {n}"),
            RoleAction::NotCache => f.write_str("not cache"),
            RoleAction::NotGenerate => f.write_str("not generate"),
        }
    }
}

/// A formal Specification Requirement.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SpecRequirement {
    /// Stable identifier (`doc:section:ordinal`).
    pub id: String,
    /// Source document tag (`rfc7230`).
    pub source: String,
    /// Source section number.
    pub section: String,
    /// The original sentence.
    pub sentence: String,
    /// The constrained role.
    pub role: Role,
    /// Requirement strength.
    pub modality: Modality,
    /// Message descriptions (conjunctive conditions).
    pub conditions: Vec<MessageDescription>,
    /// The required action.
    pub action: RoleAction,
}

impl SpecRequirement {
    /// Whether this SR binds an implementation playing `role`.
    pub fn binds(&self, role: Role) -> bool {
        self.role.applies_to(role)
    }

    /// Whether a deviation from this SR is a hard specification violation.
    pub fn is_mandatory(&self) -> bool {
        self.modality.is_mandatory()
    }
}

impl fmt::Display for SpecRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {} ", self.id, self.role, self.modality)?;
        write!(f, "{}", self.action)?;
        if !self.conditions.is_empty() {
            write!(f, " when ")?;
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " and ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_keywords() {
        assert_eq!(Role::from_keyword("server"), Some(Role::Server));
        assert_eq!(Role::from_keyword("Servers"), Some(Role::Server));
        assert_eq!(Role::from_keyword("proxies"), Some(Role::Proxy));
        assert_eq!(Role::from_keyword("caches"), Some(Role::Cache));
        assert_eq!(Role::from_keyword("user agent"), Some(Role::UserAgent));
        assert_eq!(Role::from_keyword("intermediaries"), Some(Role::Intermediary));
        assert_eq!(Role::from_keyword("nonsense"), None);
        assert_eq!(Role::ALL.len(), 10);
    }

    #[test]
    fn role_applicability() {
        assert!(Role::Recipient.applies_to(Role::Proxy));
        assert!(Role::Sender.applies_to(Role::OriginServer));
        assert!(Role::Server.applies_to(Role::OriginServer));
        assert!(Role::Intermediary.applies_to(Role::Proxy));
        assert!(!Role::Proxy.applies_to(Role::OriginServer));
        assert!(!Role::Cache.applies_to(Role::Server));
        assert!(Role::Proxy.applies_to(Role::Proxy));
    }

    #[test]
    fn modality_classification() {
        assert!(Modality::Must.is_mandatory());
        assert!(Modality::MustNot.is_mandatory());
        assert!(!Modality::Should.is_mandatory());
        assert!(Modality::MustNot.is_negative());
        assert!(Modality::ShouldNot.is_negative());
        assert!(!Modality::May.is_negative());
    }

    #[test]
    fn display_round_trip_readable() {
        let sr = SpecRequirement {
            id: "rfc7230:5.4:1".into(),
            source: "rfc7230".into(),
            section: "5.4".into(),
            sentence: "A server MUST respond with a 400...".into(),
            role: Role::Server,
            modality: Modality::Must,
            conditions: vec![MessageDescription::header("Host", FieldState::Absent)],
            action: RoleAction::Respond(400),
        };
        let s = sr.to_string();
        assert!(s.contains("server MUST respond 400"), "{s}");
        assert!(s.contains("Host header is absent"), "{s}");
        assert!(sr.binds(Role::OriginServer));
        assert!(sr.is_mandatory());
    }

    #[test]
    fn field_state_display() {
        assert_eq!(FieldState::TooLong.to_string(), "too long");
        assert_eq!(FieldState::ALL.len(), 9);
    }
}
