//! SR seed templates — the first manual input of Fig. 3.
//!
//! A template is a hypothesis schema the Text2Rule converter instantiates
//! and tests against an SR sentence via textual entailment:
//!
//! * message-description templates: `"[field] header is [state]"` — the
//!   `[field]` slot adapts automatically to the header names defined in the
//!   adapted ABNF grammar (the left values of the ABNF expressions);
//! * role-action templates: `"[role] respond [code] status code"`,
//!   `"[role] close the connection"`, ….

use crate::model::{FieldState, RoleAction};

/// What a template hypothesizes about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateKind {
    /// `[field] header is [state]` — `states` lists the states to try.
    MessageDescription {
        /// Field states this template enumerates.
        states: Vec<FieldState>,
    },
    /// `[role] <action>` — `actions` lists the actions to try.
    RoleAction {
        /// Actions this template enumerates.
        actions: Vec<RoleAction>,
    },
}

/// One seed template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrTemplate {
    /// Short name for reports.
    pub name: String,
    /// The hypothesis schema.
    pub kind: TemplateKind,
}

/// The default template set used for the paper's three attack models. This
/// is deliberately small and enumerable — the paper stresses that these
/// manual inputs total under eight hours of work.
pub fn default_templates() -> Vec<SrTemplate> {
    vec![
        SrTemplate {
            name: "header-state".into(),
            kind: TemplateKind::MessageDescription {
                // Order expresses preference: the most specific/severe
                // hypothesis wins when several entail equally.
                states: vec![
                    FieldState::MalformedSpacing,
                    FieldState::Conflicting,
                    FieldState::Multiple,
                    FieldState::Invalid,
                    FieldState::Empty,
                    FieldState::TooLong,
                    FieldState::Absent,
                    FieldState::Valid,
                    FieldState::Present,
                ],
            },
        },
        SrTemplate {
            name: "respond-status".into(),
            kind: TemplateKind::RoleAction {
                actions: vec![
                    RoleAction::Respond(100),
                    RoleAction::Respond(200),
                    RoleAction::Respond(301),
                    RoleAction::Respond(304),
                    RoleAction::Respond(400),
                    RoleAction::Respond(404),
                    RoleAction::Respond(411),
                    RoleAction::Respond(412),
                    RoleAction::Respond(414),
                    RoleAction::Respond(417),
                    RoleAction::Respond(501),
                    RoleAction::Respond(502),
                    RoleAction::Respond(505),
                ],
            },
        },
        SrTemplate {
            name: "connection-actions".into(),
            kind: TemplateKind::RoleAction {
                actions: vec![
                    RoleAction::Reject,
                    RoleAction::Accept,
                    RoleAction::Ignore,
                    RoleAction::CloseConnection,
                    RoleAction::Forward,
                    RoleAction::NotForward,
                    RoleAction::NotCache,
                ],
            },
        },
        SrTemplate {
            name: "field-rewrite".into(),
            kind: TemplateKind::RoleAction {
                actions: vec![
                    RoleAction::RemoveField(String::new()),
                    RoleAction::ReplaceField(String::new()),
                ],
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_covers_both_kinds() {
        let ts = default_templates();
        assert!(ts.iter().any(|t| matches!(t.kind, TemplateKind::MessageDescription { .. })));
        assert!(ts.iter().any(|t| matches!(t.kind, TemplateKind::RoleAction { .. })));
    }

    #[test]
    fn respond_template_includes_paper_codes() {
        let ts = default_templates();
        let respond = ts.iter().find(|t| t.name == "respond-status").unwrap();
        match &respond.kind {
            TemplateKind::RoleAction { actions } => {
                for code in [400u16, 417, 501, 505] {
                    assert!(actions.contains(&RoleAction::Respond(code)), "{code}");
                }
            }
            other => panic!("{other:?}"),
        }
    }
}
