//! Typed errors for the wire layer.
//!
//! The campaign treats the network as a degradable resource: a listener
//! that cannot bind, an accept loop that keeps failing, or a client that
//! cannot connect must surface as a *recorded outcome* the runner can
//! retry or quarantine — never as a panic that takes the worker process
//! (and, in a sharded campaign, the whole shard incarnation) down with
//! it.

use std::fmt;
use std::io;

/// Which wire operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetErrorKind {
    /// Binding a loopback listener.
    Bind,
    /// Accepting an inbound connection.
    Accept,
    /// Opening an outbound connection.
    Connect,
    /// Spawning the listener's service thread.
    Spawn,
    /// Reading or writing an established stream.
    Io,
}

impl NetErrorKind {
    /// Stable lowercase tag (used by reports and case records).
    pub fn as_str(self) -> &'static str {
        match self {
            NetErrorKind::Bind => "bind",
            NetErrorKind::Accept => "accept",
            NetErrorKind::Connect => "connect",
            NetErrorKind::Spawn => "spawn",
            NetErrorKind::Io => "io",
        }
    }
}

/// A typed wire-layer failure: what was attempted plus the underlying
/// I/O error text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetError {
    /// The failed operation.
    pub kind: NetErrorKind,
    /// Underlying error detail.
    pub detail: String,
}

impl NetError {
    /// Wraps an I/O error from a failed `bind`.
    pub fn bind(e: io::Error) -> NetError {
        NetError { kind: NetErrorKind::Bind, detail: e.to_string() }
    }

    /// Wraps an I/O error from a failed `accept`.
    pub fn accept(e: io::Error) -> NetError {
        NetError { kind: NetErrorKind::Accept, detail: e.to_string() }
    }

    /// Wraps an I/O error from a failed `connect`.
    pub fn connect(e: io::Error) -> NetError {
        NetError { kind: NetErrorKind::Connect, detail: e.to_string() }
    }

    /// Wraps an I/O error from a failed thread spawn.
    pub fn spawn(e: io::Error) -> NetError {
        NetError { kind: NetErrorKind::Spawn, detail: e.to_string() }
    }

    /// Wraps any other I/O error on an established stream.
    pub fn io(e: io::Error) -> NetError {
        NetError { kind: NetErrorKind::Io, detail: e.to_string() }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net {} failure: {}", self.kind.as_str(), self.detail)
    }
}

impl std::error::Error for NetError {}

impl From<NetError> for io::Error {
    fn from(e: NetError) -> io::Error {
        io::Error::other(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_operation() {
        let e = NetError::bind(io::Error::new(io::ErrorKind::AddrInUse, "in use"));
        assert_eq!(e.kind, NetErrorKind::Bind);
        assert!(e.to_string().contains("bind"), "{e}");
        assert!(e.to_string().contains("in use"), "{e}");
        let io: io::Error = e.into();
        assert!(io.to_string().contains("bind"), "{io}");
    }
}
