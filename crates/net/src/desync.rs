//! Per-request response attribution and the wire-level desync signal.
//!
//! When N requests are pipelined on one connection, the client must split
//! the returned byte stream back into N responses using message framing
//! alone. Two implementations that split the *same* request stream into
//! different response sequences — different counts, or different statuses
//! at the same index — have desynchronized: the classic symptom of a
//! request-smuggling gap, observable only on the wire.

use hdiff_wire::parse_response;

/// The result of splitting one response stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseAttribution {
    /// Status code of each attributed response, in order.
    pub statuses: Vec<u16>,
    /// Wire length of each attributed response.
    pub lens: Vec<usize>,
    /// Bytes left over after the last parseable response (0 when the
    /// stream split cleanly).
    pub trailing_bytes: usize,
}

impl ResponseAttribution {
    /// Number of responses attributed.
    pub fn count(&self) -> usize {
        self.statuses.len()
    }

    /// Whether every byte of the stream was attributed to a response.
    pub fn clean(&self) -> bool {
        self.trailing_bytes == 0
    }
}

/// Splits `stream` into consecutive framed responses (at most `max`),
/// using [`parse_response`]'s consumed-byte accounting.
pub fn attribute_responses(stream: &[u8], max: usize) -> ResponseAttribution {
    let mut statuses = Vec::new();
    let mut lens = Vec::new();
    let mut pos = 0usize;
    while pos < stream.len() && statuses.len() < max {
        match parse_response(&stream[pos..]) {
            Ok(r) if r.consumed > 0 => {
                statuses.push(r.status.as_u16());
                lens.push(r.consumed);
                pos += r.consumed;
            }
            _ => break,
        }
    }
    ResponseAttribution { statuses, lens, trailing_bytes: stream.len() - pos }
}

/// An attribution disagreement between two implementations on the same
/// pipelined request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesyncSignal {
    /// First implementation.
    pub impl_a: String,
    /// Second implementation.
    pub impl_b: String,
    /// Responses `impl_a` produced.
    pub responses_a: usize,
    /// Responses `impl_b` produced.
    pub responses_b: usize,
    /// First index where both produced a response but the statuses
    /// differ, with the two statuses.
    pub first_status_disagreement: Option<(usize, u16, u16)>,
}

impl DesyncSignal {
    /// Human-readable evidence line for detection reports.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "pipelined attribution disagreement {} vs {}: {} vs {} responses",
            self.impl_a, self.impl_b, self.responses_a, self.responses_b
        );
        if let Some((idx, a, b)) = self.first_status_disagreement {
            out.push_str(&format!("; response #{idx} status {a} vs {b}"));
        }
        out
    }
}

/// Compares two attributions of the same request stream; `Some` when they
/// disagree on response count or on any per-index status.
pub fn compare_attribution(
    impl_a: &str,
    a: &ResponseAttribution,
    impl_b: &str,
    b: &ResponseAttribution,
) -> Option<DesyncSignal> {
    let first_status_disagreement = a
        .statuses
        .iter()
        .zip(&b.statuses)
        .enumerate()
        .find(|(_, (sa, sb))| sa != sb)
        .map(|(i, (sa, sb))| (i, *sa, *sb));
    if a.count() == b.count() && first_status_disagreement.is_none() {
        hdiff_obs::count("net.attr.agree", 1);
        return None;
    }
    hdiff_obs::count("net.attr.disagree", 1);
    Some(DesyncSignal {
        impl_a: impl_a.to_string(),
        impl_b: impl_b.to_string(),
        responses_a: a.count(),
        responses_b: b.count(),
        first_status_disagreement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_a_clean_stream() {
        let stream = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhiHTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        let a = attribute_responses(stream, 16);
        assert_eq!(a.statuses, vec![200, 404]);
        assert!(a.clean());
        assert_eq!(a.lens.iter().sum::<usize>(), stream.len());
    }

    #[test]
    fn stops_at_garbage_and_counts_trailing() {
        let stream = b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\nnot-http";
        let a = attribute_responses(stream, 16);
        assert_eq!(a.statuses, vec![200]);
        assert_eq!(a.trailing_bytes, 8);
        assert!(!a.clean());
    }

    #[test]
    fn disagreements_surface_as_signals() {
        let two = attribute_responses(
            b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n",
            16,
        );
        let one = attribute_responses(b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 16);
        let signal = compare_attribution("a", &two, "b", &one).unwrap();
        assert_eq!((signal.responses_a, signal.responses_b), (2, 1));
        assert_eq!(signal.first_status_disagreement, Some((0, 200, 400)));
        assert!(signal.describe().contains("2 vs 1"));
        assert!(compare_attribution("a", &two, "b", &two).is_none());
    }
}
