//! HTTP/2 downgrade front ends served over real sockets.
//!
//! An [`H2FrontServer`] is one [`hdiff_servers::DowngradeProfile`]
//! behind a loopback listener speaking cleartext h2 (prior knowledge):
//! it reads a whole client connection to EOF, parses it with
//! [`hdiff_h2::parse_client_connection`], translates every request
//! through the profile, and answers each stream with an h2 response
//! that *echoes the reconstructed HTTP/1.1 bytes* (or the front's
//! rejection) — so both the wire peer and the connection log observe
//! exactly what the front would have forwarded upstream.
//!
//! Synchronization follows the crate convention: the handler pushes its
//! [`H2FrontLog`] before closing the stream, so a client that read to
//! EOF is guaranteed to find the complete log — no sleeps, no polling.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use hdiff_h2::{encode_server_connection, parse_client_connection, H2Request, H2Response};
use hdiff_servers::{DowngradeOutcome, DowngradeProfile};

use crate::error::NetError;

/// One client connection's worth of downgrade work, as the front saw it.
#[derive(Debug, Clone)]
pub struct H2FrontLog {
    /// Connection-level h2 parse failure, when the client bytes never
    /// yielded requests.
    pub parse_error: Option<String>,
    /// The h2 requests the connection carried, in stream order.
    pub requests: Vec<H2Request>,
    /// Per-request translation outcomes.
    pub outcomes: Vec<DowngradeOutcome>,
    /// The concatenated h1 bytes this front forwarded upstream.
    pub h1: Vec<u8>,
}

fn lock_logs(logs: &Mutex<Vec<H2FrontLog>>) -> MutexGuard<'_, Vec<H2FrontLog>> {
    logs.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A downgrade front end on an ephemeral loopback port.
#[derive(Debug)]
pub struct H2FrontServer {
    addr: SocketAddr,
    logs: Arc<Mutex<Vec<H2FrontLog>>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl H2FrontServer {
    /// Binds `127.0.0.1:0` and serves `front` until shutdown.
    pub fn spawn(
        front: DowngradeProfile,
        read_timeout: Duration,
    ) -> Result<H2FrontServer, NetError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(NetError::bind)?;
        let addr = listener.local_addr().map_err(NetError::bind)?;
        let logs: Arc<Mutex<Vec<H2FrontLog>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let logs = Arc::clone(&logs);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("h2-front-{}", front.name))
                .spawn(move || {
                    let mut accept_errors = 0u32;
                    while !stop.load(Ordering::SeqCst) {
                        let mut stream = match listener.accept() {
                            Ok((stream, _)) => stream,
                            Err(_) => {
                                hdiff_obs::count("net.accept.error", 1);
                                accept_errors += 1;
                                if accept_errors >= crate::server::MAX_ACCEPT_ERRORS {
                                    break;
                                }
                                continue;
                            }
                        };
                        accept_errors = 0;
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let _ = stream.set_read_timeout(Some(read_timeout));
                        handle_connection(&front, &logs, &mut stream);
                    }
                })
                .map_err(NetError::spawn)?
        };
        Ok(H2FrontServer { addr, logs, stop, thread: Some(thread) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drains the connection logs, in arrival order.
    pub fn take_logs(&self) -> Vec<H2FrontLog> {
        std::mem::take(&mut *lock_logs(&self.logs))
    }

    /// Stops the accept loop and joins the listener thread.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for H2FrontServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads one client connection to EOF, downgrades it, logs, responds.
fn handle_connection(
    front: &DowngradeProfile,
    logs: &Mutex<Vec<H2FrontLog>>,
    stream: &mut TcpStream,
) {
    let mut bytes = Vec::new();
    let _ = stream.read_to_end(&mut bytes);
    hdiff_obs::count("h2.front.connections", 1);

    let (requests, stream_ids, parse_error) = match parse_client_connection(&bytes) {
        Ok(conn) => {
            let ids: Vec<u32> = conn.requests.iter().map(|p| p.stream_id).collect();
            let reqs: Vec<H2Request> = conn.requests.into_iter().map(|p| p.request).collect();
            (reqs, ids, None)
        }
        Err(e) => (Vec::new(), Vec::new(), Some(e.to_string())),
    };

    let outcomes: Vec<DowngradeOutcome> = requests.iter().map(|r| front.downgrade(r)).collect();
    let h1: Vec<u8> = outcomes.iter().filter_map(|o| o.h1.as_deref()).flatten().copied().collect();

    // Each stream's response echoes the translation result: 200 with the
    // reconstructed h1 bytes when forwarded, the front's reject status
    // (reason as body) otherwise.
    let responses: Vec<(u32, H2Response)> = stream_ids
        .iter()
        .zip(&outcomes)
        .map(|(&id, o)| {
            let resp = match (&o.h1, &o.reject) {
                (Some(h1), _) => H2Response::new(200, h1.clone()),
                (None, Some((status, reason))) => {
                    H2Response::new(*status, reason.clone().into_bytes())
                }
                (None, None) => H2Response::new(500, Vec::new()),
            };
            (id, resp)
        })
        .collect();

    // Log before the peer can observe EOF (see module docs).
    lock_logs(logs).push(H2FrontLog { parse_error, requests, outcomes, h1 });
    let _ = stream.write_all(&encode_server_connection(&responses));
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_h2::{encode_client_connection, parse_server_connection, EncodeOptions};

    fn exchange(server: &H2FrontServer, bytes: &[u8]) -> Vec<u8> {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(bytes).unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        raw
    }

    #[test]
    fn front_downgrades_over_the_wire_and_logs_the_h1_bytes() {
        let front = DowngradeProfile::edge();
        let server = H2FrontServer::spawn(front.clone(), Duration::from_secs(2)).unwrap();
        let req = H2Request::get("/index.html", "example.com");
        let bytes = encode_client_connection(std::slice::from_ref(&req), &EncodeOptions::default());
        let raw = exchange(&server, &bytes);

        let responses = parse_server_connection(&raw).unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].1.status, 200);
        let expected = front.downgrade(&req).h1.unwrap();
        assert_eq!(responses[0].1.body, expected, "response echoes the forwarded h1");

        let logs = server.take_logs();
        assert_eq!(logs.len(), 1);
        assert!(logs[0].parse_error.is_none());
        assert_eq!(logs[0].h1, expected);
        assert!(server.take_logs().is_empty(), "logs drain");
    }

    #[test]
    fn front_rejection_travels_back_as_a_status() {
        let server =
            H2FrontServer::spawn(DowngradeProfile::edge(), Duration::from_secs(2)).unwrap();
        let req = H2Request::post("/x", "example.com", b"b".to_vec())
            .with_header("transfer-encoding", "chunked");
        let bytes = encode_client_connection(std::slice::from_ref(&req), &EncodeOptions::default());
        let responses = parse_server_connection(&exchange(&server, &bytes)).unwrap();
        assert_eq!(responses[0].1.status, 400);
        let logs = server.take_logs();
        assert!(logs[0].h1.is_empty());
        assert!(logs[0].outcomes[0].reject.is_some());
    }

    #[test]
    fn garbage_bytes_are_logged_as_a_parse_error() {
        let server =
            H2FrontServer::spawn(DowngradeProfile::relay(), Duration::from_secs(2)).unwrap();
        let _ = exchange(&server, b"GET / HTTP/1.1\r\nHost: h\r\n\r\n");
        let logs = server.take_logs();
        assert_eq!(logs.len(), 1);
        assert!(logs[0].parse_error.as_deref().unwrap().contains("preface"));
        assert!(logs[0].requests.is_empty());
    }
}
