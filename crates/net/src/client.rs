//! The campaign's wire client.
//!
//! Three interaction styles, matching what the differential harness
//! needs:
//!
//! * [`WireClient::exchange`] — campaign style: write the whole request
//!   stream (optionally segmented at arbitrary offsets, or truncated to a
//!   prefix), FIN, read to EOF. EOF doubles as the synchronization point
//!   with the server's connection log.
//! * [`WireClient::request`] — keep-alive style with connection reuse:
//!   write one request, read exactly one response by framing
//!   (`hdiff_wire::parse_response`), keep the connection open for the
//!   next call.
//! * [`WireClient::pipelined`] — submit N requests back-to-back on one
//!   connection and attribute the response bytes back to each request
//!   (see [`crate::desync`]).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use hdiff_wire::{parse_response, ParsedResponse};

use crate::desync::{attribute_responses, ResponseAttribution};
use crate::timeout::io_timeout;

/// Timeout configuration for a [`WireClient`].
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Read timeout for every connection the client opens.
    pub read_timeout: Duration,
    /// Write timeout for every connection the client opens.
    pub write_timeout: Duration,
}

impl Default for NetClientConfig {
    fn default() -> NetClientConfig {
        NetClientConfig { read_timeout: io_timeout(), write_timeout: io_timeout() }
    }
}

/// How [`WireClient::exchange`] puts request bytes on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendMode {
    /// One `write_all` of the whole stream.
    Whole,
    /// Split the stream at the given byte offsets (ascending), one
    /// `write` + flush per segment — exercises partial-read paths.
    Segmented(Vec<usize>),
    /// Send only the first `n` bytes, then FIN — models a client (or a
    /// mid-stream reset) that never delivers the rest.
    TruncateAt(usize),
}

/// The outcome of one [`WireClient::exchange`].
#[derive(Debug, Clone)]
pub struct Exchange {
    /// Raw response bytes read before EOF (or timeout).
    pub response: Vec<u8>,
    /// Whether the read ended on the client's timeout rather than EOF —
    /// the wire observation of a stalled server.
    pub timed_out: bool,
}

/// The outcome of one pipelined batch.
#[derive(Debug, Clone)]
pub struct PipelinedExchange {
    /// Raw concatenated response bytes.
    pub raw: Vec<u8>,
    /// Per-request response attribution over `raw`.
    pub attribution: ResponseAttribution,
    /// Whether the read ended on the client's timeout rather than EOF.
    pub timed_out: bool,
}

/// A loopback HTTP client driving one server address.
#[derive(Debug)]
pub struct WireClient {
    addr: SocketAddr,
    /// Read timeout for every connection this client opens.
    pub read_timeout: Duration,
    /// Write timeout for every connection this client opens.
    pub write_timeout: Duration,
    reused: Option<TcpStream>,
    reused_buf: Vec<u8>,
}

impl WireClient {
    /// A client for `addr` with the shared default timeouts
    /// ([`crate::timeout::io_timeout`]).
    pub fn new(addr: SocketAddr) -> WireClient {
        WireClient::with_config(addr, NetClientConfig::default())
    }

    /// A client for `addr` with explicit timeouts.
    pub fn with_config(addr: SocketAddr, config: NetClientConfig) -> WireClient {
        WireClient {
            addr,
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            reused: None,
            reused_buf: Vec::new(),
        }
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        stream.set_write_timeout(Some(self.write_timeout))?;
        stream.set_nodelay(true)?;
        hdiff_obs::count("net.conn.open", 1);
        Ok(stream)
    }

    fn write_mode(stream: &mut TcpStream, bytes: &[u8], mode: &SendMode) -> std::io::Result<()> {
        match mode {
            SendMode::Whole => stream.write_all(bytes),
            SendMode::Segmented(offsets) => {
                let mut prev = 0usize;
                for &off in offsets {
                    let off = off.min(bytes.len());
                    if off > prev {
                        stream.write_all(&bytes[prev..off])?;
                        stream.flush()?;
                        prev = off;
                    }
                }
                stream.write_all(&bytes[prev..])
            }
            SendMode::TruncateAt(n) => stream.write_all(&bytes[..(*n).min(bytes.len())]),
        }
    }

    fn read_to_eof(stream: &mut TcpStream) -> (Vec<u8>, bool) {
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => return (out, false),
                Ok(n) => out.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    hdiff_obs::count("net.read.timeout", 1);
                    return (out, true);
                }
                Err(_) => {
                    hdiff_obs::count("net.read.error", 1);
                    return (out, false);
                }
            }
        }
    }

    /// Campaign-style exchange on a fresh connection: send per `mode`,
    /// FIN, read to EOF.
    pub fn exchange(&self, bytes: &[u8], mode: &SendMode) -> std::io::Result<Exchange> {
        let mut stream = self.connect()?;
        Self::write_mode(&mut stream, bytes, mode)?;
        stream.shutdown(Shutdown::Write)?;
        let (response, timed_out) = Self::read_to_eof(&mut stream);
        Ok(Exchange { response, timed_out })
    }

    /// Keep-alive exchange with connection reuse: writes one request on
    /// the persistent connection (opening it on first use) and reads one
    /// framed response. Returns the parsed response; call again to reuse
    /// the same connection.
    pub fn request(&mut self, bytes: &[u8]) -> std::io::Result<ParsedResponse> {
        if self.reused.is_none() {
            self.reused = Some(self.connect()?);
            self.reused_buf.clear();
        }
        let Some(stream) = self.reused.as_mut() else {
            // Unreachable after the connect above, but a dead kept-alive
            // slot must degrade into an error, never a panic.
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "kept-alive connection unavailable",
            ));
        };
        if let Err(e) = stream.write_all(bytes) {
            self.reused = None; // a dead kept-alive connection is not reusable
            return Err(e);
        }
        let mut chunk = [0u8; 4096];
        loop {
            if let Ok(parsed) = parse_response(&self.reused_buf) {
                self.reused_buf.drain(..parsed.consumed);
                return Ok(parsed);
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    self.reused = None;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed before a complete response",
                    ));
                }
                Ok(n) => self.reused_buf.extend_from_slice(&chunk[..n]),
                Err(e) => {
                    self.reused = None;
                    return Err(e);
                }
            }
        }
    }

    /// Closes the kept-alive connection, if any: sends FIN and drains to
    /// the server's EOF, so the server has recorded the connection log by
    /// the time this returns.
    pub fn close(&mut self) {
        if let Some(mut s) = self.reused.take() {
            let _ = s.shutdown(Shutdown::Write);
            let mut sink = [0u8; 1024];
            while matches!(s.read(&mut sink), Ok(n) if n > 0) {}
        }
        self.reused_buf.clear();
    }

    /// Submits `requests` back-to-back on one fresh connection and
    /// attributes the response bytes back per request.
    pub fn pipelined(&self, requests: &[&[u8]]) -> std::io::Result<PipelinedExchange> {
        let mut stream = self.connect()?;
        for r in requests {
            stream.write_all(r)?;
        }
        stream.shutdown(Shutdown::Write)?;
        let (raw, timed_out) = Self::read_to_eof(&mut stream);
        let attribution = attribute_responses(&raw, requests.len());
        Ok(PipelinedExchange { raw, attribution, timed_out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetServer, NetServerConfig};
    use hdiff_servers::ParserProfile;

    fn server() -> NetServer {
        NetServer::spawn(ParserProfile::strict("wire"), NetServerConfig::default()).unwrap()
    }

    #[test]
    fn whole_and_segmented_sends_agree() {
        let s = server();
        let bytes = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello";
        let client = WireClient::new(s.addr());
        let whole = client.exchange(bytes, &SendMode::Whole).unwrap();
        let seg = client.exchange(bytes, &SendMode::Segmented(vec![3, 19, 40])).unwrap();
        assert!(!whole.timed_out && !seg.timed_out);
        assert_eq!(whole.response, seg.response);
        assert_eq!(s.take_logs().len(), 2);
    }

    #[test]
    fn truncate_at_delivers_a_prefix() {
        let s = server();
        let bytes = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello";
        let client = WireClient::new(s.addr());
        let cut = client.exchange(bytes, &SendMode::TruncateAt(bytes.len() - 3)).unwrap();
        assert!(String::from_utf8_lossy(&cut.response).starts_with("HTTP/1.1 408"), "{cut:?}");
    }

    #[test]
    fn request_reuses_one_connection() {
        let s = server();
        let mut client = WireClient::new(s.addr());
        let r1 = client.request(b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        let r2 = client.request(b"GET /b HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(r1.status.as_u16(), 200);
        assert_eq!(r2.status.as_u16(), 200);
        client.close();
        // Both requests and their replies rode a single connection.
        let logs = s.take_logs();
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].replies.len(), 2);
    }

    #[test]
    fn pipelined_batches_attribute_per_request() {
        let s = server();
        let client = WireClient::new(s.addr());
        let a: &[u8] = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n";
        let b: &[u8] = b"GET /b HTTP/1.1\r\nHost: h\r\n\r\n";
        let batch = client.pipelined(&[a, b]).unwrap();
        assert_eq!(batch.attribution.statuses, vec![200, 200]);
        assert_eq!(batch.attribution.lens.iter().sum::<usize>(), batch.raw.len());
    }
}
