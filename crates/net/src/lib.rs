//! Loopback TCP transport for the HDiff testbed.
//!
//! The paper's harness sends every test case over a real network; the
//! rest of this reproduction calls the simulated products as in-process
//! functions. This crate closes that gap: it serves every
//! [`hdiff_servers`] behavioral profile over real sockets, so an entire
//! class of behaviors — pipelining desync, connection-boundary smuggling,
//! partial-read handling — can be observed as *byte streams* instead of
//! function calls.
//!
//! * [`server`] — [`server::NetServer`]: an ephemeral-port origin server
//!   running the `servers::engine` over a buffered connection loop with
//!   keep-alive, pipelined request accounting, read/write timeouts, and
//!   per-connection teardown records (graceful FIN vs. abort).
//! * [`echo`] — [`echo::NetEcho`]: the recording echo origin of Fig. 6,
//!   as a socket: one upstream connection per forwarded message, read to
//!   EOF, echoed back.
//! * [`proxy`] — [`proxy::NetProxy`]: a forwarding proxy hop that parses
//!   the client stream with a [`hdiff_servers::Proxy`] and relays each
//!   forwarded message over a fresh upstream connection.
//! * [`h2front`] — [`h2front::H2FrontServer`]: an HTTP/2 (h2c, prior
//!   knowledge) downgrade front end: parses whole client connections,
//!   translates them through a [`hdiff_servers::DowngradeProfile`], and
//!   logs the exact HTTP/1.1 bytes it would forward upstream.
//! * [`client`] — [`client::WireClient`]: the campaign's client driver:
//!   whole/segmented/truncated sends, framed keep-alive requests with
//!   connection reuse, and pipelined batches with per-request response
//!   attribution.
//! * [`desync`] — splitting a response stream back into per-request
//!   responses and comparing two implementations' attributions; a
//!   disagreement is the wire-level desync signal.
//!
//! # Synchronization model
//!
//! The campaign drivers write the entire request stream, then
//! `shutdown(Write)` (FIN), then read to EOF. Every server handler pushes
//! its connection log *before* closing the stream, so a client that
//! observed EOF is guaranteed to observe the complete log — no sleeps, no
//! polling. Incremental parsing only finalizes a message early when the
//! parse cannot change with more bytes (see
//! [`server::incomplete_reason`]), which keeps the wire outcome equal to
//! the in-process [`hdiff_servers::Server::handle_stream`] outcome for
//! identical byte streams.

pub mod client;
pub mod desync;
pub mod echo;
pub mod error;
pub mod h2front;
pub mod pool;
pub mod proxy;
pub mod reactor;
pub mod server;
pub mod testbed;
pub mod timeout;

pub use client::{Exchange, NetClientConfig, PipelinedExchange, SendMode, WireClient};
pub use desync::{attribute_responses, compare_attribution, DesyncSignal, ResponseAttribution};
pub use echo::NetEcho;
pub use error::{NetError, NetErrorKind};
pub use h2front::{H2FrontLog, H2FrontServer};
pub use pool::{ConnPool, PoolStats};
pub use proxy::{NetProxy, NetProxyConfig, ProxyConnLog};
pub use reactor::{
    AsyncListener, DriveOutput, DriveSpec, ExchangeOutput, ExchangeSpec, Job, JobOutput,
    ListenerId, Reactor, ReactorStats,
};
pub use server::{ConnectionLog, NetServer, NetServerConfig, ServerFault, Teardown};
pub use testbed::AsyncTestbed;
pub use timeout::{io_timeout, stall_observe_timeout, DEFAULT_IO_TIMEOUT, IO_TIMEOUT_ENV};
