//! A forwarding proxy hop over real sockets.
//!
//! [`NetProxy`] accepts downstream (client) connections, parses the byte
//! stream with the product's [`hdiff_servers::Proxy`] wrapper, and relays
//! each forwarded message over a *fresh* upstream connection — so the
//! upstream (normally a [`crate::NetEcho`]) learns exact message
//! boundaries from connection boundaries, without parsing. Upstream
//! responses are relayed back downstream verbatim.
//!
//! Forward-stage fault effects are passed in as a pre-decided
//! [`FaultDecision`] (the campaign thread owns the fault session); the
//! byte-level effects — prefix cut, garbled octet, stalled (empty)
//! forward — are applied with the same `FaultDecision` methods the
//! in-process path uses, so both transports forward identical damage.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use hdiff_servers::fault::{FaultDecision, FaultKind};
use hdiff_servers::{ForwardAction, ParserProfile, Proxy, ProxyResult};

use crate::error::NetError;
use crate::server::{incomplete_reason, Teardown, MAX_ACCEPT_ERRORS, MAX_MESSAGES};
use crate::timeout::io_timeout;

/// Poison-tolerant lock over the append-only connection log (same
/// rationale as the origin server's log lock).
fn lock_logs(logs: &Mutex<Vec<ProxyConnLog>>) -> MutexGuard<'_, Vec<ProxyConnLog>> {
    logs.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration for one proxy listener.
#[derive(Debug, Clone)]
pub struct NetProxyConfig {
    /// Upstream address each forwarded message is relayed to.
    pub upstream: SocketAddr,
    /// Per-read timeout on both the downstream and upstream side.
    pub read_timeout: Duration,
    /// Per-write timeout.
    pub write_timeout: Duration,
    /// Pre-decided forward-stage fault for this hop, if any.
    pub fault: Option<FaultDecision>,
    /// Pipelined-message cap per connection.
    pub max_messages: usize,
}

impl NetProxyConfig {
    /// A default configuration forwarding to `upstream`, using the
    /// shared testbed timeout ([`crate::timeout::io_timeout`]).
    pub fn new(upstream: SocketAddr) -> NetProxyConfig {
        NetProxyConfig {
            upstream,
            read_timeout: io_timeout(),
            write_timeout: io_timeout(),
            fault: None,
            max_messages: MAX_MESSAGES,
        }
    }
}

/// Per-connection accounting for a proxy hop.
#[derive(Debug, Clone)]
pub struct ProxyConnLog {
    /// Per-message results (interpretation + action, with post-fault
    /// forwarded bytes) — the same records the in-process
    /// `forward_stream_faulted` produces.
    pub results: Vec<ProxyResult>,
    /// How the downstream connection ended.
    pub teardown: Teardown,
}

/// A proxy profile listening on an ephemeral loopback port.
#[derive(Debug)]
pub struct NetProxy {
    addr: SocketAddr,
    logs: Arc<Mutex<Vec<ProxyConnLog>>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    /// The product name served.
    pub name: String,
}

impl NetProxy {
    /// Binds `127.0.0.1:0` and starts proxying. Bind/spawn failures are
    /// typed [`NetError`]s; transient accept failures are counted and
    /// tolerated up to [`MAX_ACCEPT_ERRORS`] in a row.
    ///
    /// # Panics
    ///
    /// Panics if `profile` has no proxy behavior configured (same
    /// contract as [`Proxy::new`]).
    pub fn spawn(profile: ParserProfile, config: NetProxyConfig) -> Result<NetProxy, NetError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(NetError::bind)?;
        let addr = listener.local_addr().map_err(NetError::bind)?;
        let logs = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let name = profile.name.clone();
        let proxy = Proxy::new(profile);
        let thread = {
            let logs = Arc::clone(&logs);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("net-proxy-{name}"))
                .spawn(move || {
                    let mut accept_errors = 0u32;
                    while !stop.load(Ordering::SeqCst) {
                        let stream = match listener.accept() {
                            Ok((stream, _)) => stream,
                            Err(_) => {
                                hdiff_obs::count("net.accept.error", 1);
                                accept_errors += 1;
                                if accept_errors >= MAX_ACCEPT_ERRORS {
                                    break;
                                }
                                continue;
                            }
                        };
                        accept_errors = 0;
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        handle_connection(&proxy, &config, stream, &logs);
                    }
                })
                .map_err(NetError::spawn)?
        };
        Ok(NetProxy { addr, logs, stop, thread: Some(thread), name })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drains the accumulated connection logs.
    pub fn take_logs(&self) -> Vec<ProxyConnLog> {
        std::mem::take(&mut *lock_logs(&self.logs))
    }

    /// Stops the accept loop and joins the listener thread.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for NetProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Relays one forwarded message over a fresh upstream connection and
/// returns the upstream's raw response bytes.
fn relay_upstream(config: &NetProxyConfig, bytes: &[u8]) -> std::io::Result<Vec<u8>> {
    let mut up = TcpStream::connect(config.upstream)?;
    up.set_read_timeout(Some(config.read_timeout))?;
    up.set_write_timeout(Some(config.write_timeout))?;
    up.write_all(bytes)?;
    up.shutdown(Shutdown::Write)?;
    let mut response = Vec::new();
    up.read_to_end(&mut response)?;
    Ok(response)
}

/// Runs one downstream connection. The log is pushed *before* the stream
/// is closed, so a client that observed EOF observes the complete log.
fn handle_connection(
    proxy: &Proxy,
    config: &NetProxyConfig,
    mut stream: TcpStream,
    logs: &Mutex<Vec<ProxyConnLog>>,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);

    let mut buf: Vec<u8> = Vec::new();
    let mut pos = 0usize;
    let mut results: Vec<ProxyResult> = Vec::new();
    let mut eof = false;
    let mut teardown = Teardown::Fin;

    'conn: loop {
        while results.len() < config.max_messages && pos < buf.len() {
            let mut r = proxy.forward(&buf[pos..]);
            let i = &r.interpretation;
            let finalizable = eof
                || if i.outcome.is_accept() {
                    !(i.repaired_chunked && i.consumed >= buf.len() - pos)
                } else {
                    !incomplete_reason(i)
                };
            if !finalizable {
                break; // wait for more bytes (or EOF)
            }
            let consumed = r.interpretation.consumed;
            let rejected = matches!(r.action, ForwardAction::Rejected(_));
            let mut drop_rest = false;

            // Apply the pre-decided forward-stage fault to forwarded
            // messages — byte-identically to the in-process path.
            if let (Some(decision), ForwardAction::Forwarded(bytes)) = (config.fault, &r.action) {
                match decision.kind {
                    FaultKind::ConnReset => {
                        let cut = decision.reset_point(bytes.len());
                        r.action = ForwardAction::Forwarded(bytes[..cut].to_vec());
                        drop_rest = true;
                    }
                    FaultKind::GarbleForward => {
                        r.action = ForwardAction::Forwarded(decision.garble(bytes));
                    }
                    FaultKind::StallRead => {
                        r.action = ForwardAction::Forwarded(Vec::new());
                        drop_rest = true;
                    }
                    _ => {}
                }
            }

            match &r.action {
                ForwardAction::Forwarded(bytes) => {
                    // A stalled forward sends nothing upstream and answers
                    // nothing downstream; everything else is relayed.
                    if !bytes.is_empty() {
                        match relay_upstream(config, bytes) {
                            Ok(response) => {
                                if stream.write_all(&response).is_err() {
                                    teardown = Teardown::Abort;
                                    results.push(r);
                                    break 'conn;
                                }
                            }
                            Err(_) => {
                                teardown = Teardown::Abort;
                                results.push(r);
                                break 'conn;
                            }
                        }
                    }
                }
                ForwardAction::Rejected(response) => {
                    let _ = stream.write_all(&response.to_bytes());
                }
            }

            results.push(r);
            if rejected || consumed == 0 || drop_rest {
                if drop_rest {
                    teardown = Teardown::Abort;
                }
                break 'conn;
            }
            pos += consumed;
        }

        if eof || results.len() >= config.max_messages {
            break;
        }

        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                teardown = Teardown::TimedOut;
                break;
            }
            Err(_) => {
                teardown = Teardown::Abort;
                break;
            }
        }
    }

    lock_logs(logs).push(ProxyConnLog { results, teardown });
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::echo::NetEcho;
    use hdiff_servers::profile::ProxyBehavior;

    fn strict_proxy_profile() -> ParserProfile {
        let mut p = ParserProfile::strict("strictproxy");
        p.proxy = Some(ProxyBehavior::strict());
        p
    }

    fn exchange(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s.write_all(bytes).unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        out
    }

    #[test]
    fn forwards_through_the_echo_and_matches_the_in_process_proxy() {
        let echo = NetEcho::spawn(Duration::from_secs(1)).unwrap();
        let proxy =
            NetProxy::spawn(strict_proxy_profile(), NetProxyConfig::new(echo.addr())).unwrap();
        let bytes = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n";
        let raw = exchange(proxy.addr(), bytes);
        assert!(String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 200"), "{raw:?}");

        let in_process = Proxy::new(strict_proxy_profile()).forward_stream(bytes);
        let logs = proxy.take_logs();
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].results, in_process);
        assert_eq!(logs[0].teardown, Teardown::Fin);

        // The echo received each forwarded message on its own connection.
        let records = echo.take_records();
        let expected: Vec<Vec<u8>> =
            in_process.iter().filter_map(|r| r.action.forwarded().map(<[u8]>::to_vec)).collect();
        assert_eq!(records, expected);
    }

    #[test]
    fn rejection_answers_downstream_without_touching_upstream() {
        let echo = NetEcho::spawn(Duration::from_secs(1)).unwrap();
        let proxy =
            NetProxy::spawn(strict_proxy_profile(), NetProxyConfig::new(echo.addr())).unwrap();
        let raw = exchange(proxy.addr(), b"GET / HTTP/1.1\r\nHost : bad\r\n\r\n");
        assert!(String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 400"), "{raw:?}");
        assert!(echo.take_records().is_empty());
    }

    #[test]
    fn conn_reset_fault_forwards_a_prefix_and_aborts() {
        let echo = NetEcho::spawn(Duration::from_secs(1)).unwrap();
        let decision = FaultDecision { kind: FaultKind::ConnReset, salt: 99 };
        let config = NetProxyConfig { fault: Some(decision), ..NetProxyConfig::new(echo.addr()) };
        let proxy = NetProxy::spawn(strict_proxy_profile(), config).unwrap();
        let bytes = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n";
        exchange(proxy.addr(), bytes);
        let logs = proxy.take_logs();
        assert_eq!(logs[0].results.len(), 1, "drop-rest stops the stream");
        assert_eq!(logs[0].teardown, Teardown::Abort);
        let forwarded = logs[0].results[0].action.forwarded().unwrap();
        let clean = Proxy::new(strict_proxy_profile()).forward(bytes);
        let clean_bytes = clean.action.forwarded().unwrap();
        assert_eq!(forwarded, &clean_bytes[..decision.reset_point(clean_bytes.len())]);
        assert_eq!(echo.take_records(), vec![forwarded.to_vec()]);
    }
}
