//! A persistent, reactor-hosted loopback testbed.
//!
//! The blocking transport spawns fresh listeners (and threads) for every
//! case; [`AsyncTestbed`] instead hosts every behavioral profile — all
//! origin servers, all proxy hops, and one shared echo upstream — inside
//! a single [`crate::reactor::Reactor`] event loop for the lifetime of a
//! campaign. Cases fan out to every view *concurrently* as one job
//! batch, connections come from the reactor's warm keep-alive pool, and
//! each exchange collects its own connection log through the reactor's
//! pairing tickets (so interleaved cases can never mix logs up).

use std::time::Duration;

use hdiff_servers::ParserProfile;

use crate::client::SendMode;
use crate::error::NetError;
use crate::proxy::NetProxyConfig;
use crate::reactor::{
    AsyncListener, ExchangeOutput, ExchangeSpec, Job, JobOutput, Reactor, ReactorStats,
};
use crate::server::NetServerConfig;
use crate::timeout::io_timeout;

/// Idle keep-alive connections the reactor pre-opens per listener.
pub const WARM_DEPTH: usize = 2;

/// Every profile of a campaign, served by one event loop.
#[derive(Debug)]
pub struct AsyncTestbed {
    reactor: Reactor,
    backends: Vec<AsyncListener>,
    proxies: Vec<AsyncListener>,
    echo: AsyncListener,
}

impl AsyncTestbed {
    /// Spawns the reactor and hosts `backends` as origin listeners and
    /// `proxies` as forwarding hops (relaying to a shared recording
    /// echo), then pre-warms a keep-alive pool for every listener.
    ///
    /// Fails with a typed error on unsupported targets (no epoll
    /// backend) — callers degrade to the blocking transport.
    ///
    /// # Panics
    ///
    /// Panics if a proxy profile has no proxy behavior configured (same
    /// contract as [`hdiff_servers::Proxy::new`]).
    pub fn new(
        backends: &[ParserProfile],
        proxies: &[ParserProfile],
    ) -> Result<AsyncTestbed, NetError> {
        let reactor = Reactor::spawn()?;
        let echo = reactor.add_echo(io_timeout())?;
        let mut backend_listeners = Vec::with_capacity(backends.len());
        for profile in backends {
            let l = reactor.add_origin(profile.clone(), NetServerConfig::default(), true)?;
            backend_listeners.push(l);
        }
        let mut proxy_listeners = Vec::with_capacity(proxies.len());
        for profile in proxies {
            let l = reactor.add_proxy(profile.clone(), NetProxyConfig::new(echo.addr))?;
            proxy_listeners.push(l);
        }
        for l in backend_listeners.iter().chain(&proxy_listeners) {
            reactor.warm(l.addr, WARM_DEPTH);
        }
        Ok(AsyncTestbed { reactor, backends: backend_listeners, proxies: proxy_listeners, echo })
    }

    /// The hosting reactor.
    pub fn reactor(&self) -> &Reactor {
        &self.reactor
    }

    /// Origin listeners, in the order the backend profiles were given.
    pub fn backends(&self) -> &[AsyncListener] {
        &self.backends
    }

    /// Proxy listeners, in the order the proxy profiles were given.
    pub fn proxies(&self) -> &[AsyncListener] {
        &self.proxies
    }

    /// The shared echo upstream.
    pub fn echo(&self) -> &AsyncListener {
        &self.echo
    }

    /// An exchange job against `listener`, paired so the output carries
    /// the connection log, claiming a warm pooled connection when one is
    /// available.
    pub fn exchange_job(&self, listener: &AsyncListener, bytes: &[u8], mode: SendMode) -> Job {
        self.exchange_job_with_timeout(listener, bytes, mode, io_timeout())
    }

    /// [`AsyncTestbed::exchange_job`] with an explicit read deadline
    /// (stall observation uses a short one).
    pub fn exchange_job_with_timeout(
        &self,
        listener: &AsyncListener,
        bytes: &[u8],
        mode: SendMode,
        read_timeout: Duration,
    ) -> Job {
        Job::Exchange(ExchangeSpec {
            addr: listener.addr,
            bytes: bytes.to_vec(),
            mode,
            read_timeout,
            pair: Some(listener.id),
            warm: true,
        })
    }

    /// Runs a job batch to completion (all jobs concurrently) and
    /// returns outputs in submission order.
    pub fn run(&self, jobs: Vec<Job>) -> Vec<JobOutput> {
        self.reactor.run(jobs)
    }

    /// Runs one exchange to completion.
    pub fn exchange(
        &self,
        listener: &AsyncListener,
        bytes: &[u8],
        mode: SendMode,
    ) -> ExchangeOutput {
        let out = self.run(vec![self.exchange_job(listener, bytes, mode)]);
        out.into_iter()
            .next()
            .and_then(|o| match o {
                JobOutput::Exchange(e) => Some(e),
                JobOutput::Drive(_) => None,
            })
            .unwrap_or_default()
    }

    /// Drops the echo's accumulated forwarded-message records (the diff
    /// outcome never reads them; unbounded growth over a long campaign
    /// is the only concern).
    pub fn clear_echo_records(&self) {
        let _ = self.reactor.take_echo_records(self.echo.id);
    }

    /// Reactor counter snapshot (pool hits/misses, churn, wakeups).
    pub fn stats(&self) -> ReactorStats {
        self.reactor.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_servers::profile::ProxyBehavior;
    use hdiff_servers::{Proxy, Server};

    fn strict_proxy_profile() -> ParserProfile {
        let mut p = ParserProfile::strict("strictproxy");
        p.proxy = Some(ProxyBehavior::strict());
        p
    }

    #[test]
    fn concurrent_fanout_matches_the_in_process_engine() {
        let backends = [ParserProfile::strict("wire"), ParserProfile::strict("wire2")];
        let testbed = AsyncTestbed::new(&backends, &[]).unwrap();
        let bytes: &[u8] = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n";
        let jobs = testbed
            .backends()
            .iter()
            .map(|l| testbed.exchange_job(l, bytes, SendMode::Whole))
            .collect();
        let outs = testbed.run(jobs);
        assert_eq!(outs.len(), 2);
        for (out, profile) in outs.iter().zip(&backends) {
            let ex = out.as_exchange().expect("exchange output");
            assert!(ex.error.is_none(), "{ex:?}");
            assert!(!ex.timed_out);
            let log = ex.server_log.as_ref().expect("paired log");
            assert_eq!(log.replies, Server::new(profile.clone()).handle_stream(bytes));
            assert_eq!(log.replies.len(), 2);
        }
    }

    #[test]
    fn proxy_hop_relays_through_the_shared_echo() {
        let testbed = AsyncTestbed::new(&[], &[strict_proxy_profile()]).unwrap();
        let bytes: &[u8] = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n";
        let ex = testbed.exchange(&testbed.proxies()[0], bytes, SendMode::Whole);
        assert!(ex.error.is_none(), "{ex:?}");
        let log = ex.proxy_log.as_ref().expect("paired proxy log");
        assert_eq!(log.results, Proxy::new(strict_proxy_profile()).forward_stream(bytes));
        assert!(String::from_utf8_lossy(&ex.response).starts_with("HTTP/1.1 200"));
    }

    #[test]
    fn warm_pool_serves_repeat_cases() {
        let testbed = AsyncTestbed::new(&[ParserProfile::strict("wire")], &[]).unwrap();
        let l = testbed.backends()[0].clone();
        let bytes: &[u8] = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n";
        for _ in 0..4 {
            let ex = testbed.exchange(&l, bytes, SendMode::Whole);
            assert!(ex.error.is_none());
            assert!(ex.server_log.is_some());
        }
        let stats = testbed.stats();
        assert!(stats.pool_hits >= 1, "{stats:?}");
        assert_eq!(stats.pool_hits + stats.pool_misses, 4, "{stats:?}");
    }
}
