//! The recording echo origin of Fig. 6, served over a socket.
//!
//! Each forwarded message travels on its own upstream connection (the
//! proxy opens a fresh connection per message), so the echo learns exact
//! message boundaries without parsing: it reads one connection to EOF,
//! records the bytes, and echoes them back in a 200 response — the same
//! behavior as the in-process [`hdiff_servers::EchoServer`], whose
//! response construction it reuses.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use hdiff_servers::EchoServer;

use crate::error::NetError;

/// Poison-tolerant lock: the echo's record list stays structurally
/// intact across a panicking peer thread, and the recorded bytes matter
/// more than poison hygiene.
fn lock_echo(inner: &Mutex<EchoServer>) -> MutexGuard<'_, EchoServer> {
    inner.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A recording echo listener on an ephemeral loopback port.
#[derive(Debug)]
pub struct NetEcho {
    addr: SocketAddr,
    inner: Arc<Mutex<EchoServer>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl NetEcho {
    /// Binds `127.0.0.1:0` and starts recording. Bind/spawn failures are
    /// typed [`NetError`]s; a transient accept failure is counted and
    /// tolerated (see [`crate::server::MAX_ACCEPT_ERRORS`]).
    pub fn spawn(read_timeout: Duration) -> Result<NetEcho, NetError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(NetError::bind)?;
        let addr = listener.local_addr().map_err(NetError::bind)?;
        let inner = Arc::new(Mutex::new(EchoServer::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("net-echo".to_string())
                .spawn(move || {
                    let mut accept_errors = 0u32;
                    while !stop.load(Ordering::SeqCst) {
                        let mut stream = match listener.accept() {
                            Ok((stream, _)) => stream,
                            Err(_) => {
                                hdiff_obs::count("net.accept.error", 1);
                                accept_errors += 1;
                                if accept_errors >= crate::server::MAX_ACCEPT_ERRORS {
                                    break;
                                }
                                continue;
                            }
                        };
                        accept_errors = 0;
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let _ = stream.set_read_timeout(Some(read_timeout));
                        let mut bytes = Vec::new();
                        let _ = stream.read_to_end(&mut bytes);
                        let response = lock_echo(&inner).receive(&bytes);
                        let _ = stream.write_all(&response.to_bytes());
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                })
                .map_err(NetError::spawn)?
        };
        Ok(NetEcho { addr, inner, stop, thread: Some(thread) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drains the recorded forwarded messages, in arrival order.
    pub fn take_records(&self) -> Vec<Vec<u8>> {
        let mut echo = lock_echo(&self.inner);
        let records = echo.records().to_vec();
        echo.clear();
        records
    }

    /// Stops the accept loop and joins the listener thread.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for NetEcho {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_echoes_over_the_wire() {
        let echo = NetEcho::spawn(Duration::from_secs(1)).unwrap();
        let msg = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n";
        let mut s = TcpStream::connect(echo.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s.write_all(msg).unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(raw.ends_with(msg), "echoed body");
        assert_eq!(echo.take_records(), vec![msg.to_vec()]);
        assert!(echo.take_records().is_empty(), "records drain");
    }
}
