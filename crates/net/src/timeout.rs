//! The one shared I/O timeout every loopback socket in the testbed uses.
//!
//! The client, origin server, proxy hop, and echo listener all used to
//! hard-code `500ms` independently; a CI box under load that needed a
//! wider margin had no single place to turn. [`io_timeout`] is that
//! place: it reads [`IO_TIMEOUT_ENV`] once (first use wins, cached for
//! the process) and falls back to [`DEFAULT_IO_TIMEOUT`]. The
//! stalled-read *observation* threshold — the short read a campaign
//! spends to witness an injected stall without waiting out the full
//! timeout — derives from the same value instead of being a second
//! magic number, so widening the env var widens everything coherently.

use std::sync::OnceLock;
use std::time::Duration;

/// Read/write timeout applied when [`IO_TIMEOUT_ENV`] is unset.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Environment variable overriding the shared timeout, in milliseconds.
/// Read once per process; tests that need wider margins (CI under load)
/// must set it before the first socket is opened.
pub const IO_TIMEOUT_ENV: &str = "HDIFF_NET_TIMEOUT_MS";

/// The process-wide read/write timeout for testbed sockets.
///
/// An unparseable or non-positive value is *not* silently ignored: the
/// OnceLock caches whatever the first read decides for the life of the
/// process, so a typo'd env var would otherwise pin a fleet run to the
/// 500ms default with no trace. The rejection is reported once on
/// stderr, naming the value.
pub fn io_timeout() -> Duration {
    static CACHED: OnceLock<Duration> = OnceLock::new();
    *CACHED.get_or_init(|| {
        let (timeout, rejected) = resolve(std::env::var(IO_TIMEOUT_ENV).ok());
        if let Some(value) = rejected {
            eprintln!(
                "hdiff: ignoring invalid {IO_TIMEOUT_ENV}={value:?} \
                 (want a positive integer of milliseconds); \
                 using the {}ms default",
                DEFAULT_IO_TIMEOUT.as_millis()
            );
        }
        timeout
    })
}

/// Resolves the env-var override: the timeout to use plus the rejected
/// raw value, if the variable was set but not a positive integer.
fn resolve(var: Option<String>) -> (Duration, Option<String>) {
    match var {
        None => (DEFAULT_IO_TIMEOUT, None),
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => (Duration::from_millis(ms), None),
            _ => (DEFAULT_IO_TIMEOUT, Some(raw)),
        },
    }
}

/// How long a client read waits to *observe* an injected stall: a
/// fraction of [`io_timeout`] (1/12 — ~41ms at the 500ms default, close
/// to the 40ms this threshold was historically tuned to) so stalled
/// attempts stay cheap but scale with any widened timeout.
pub fn stall_observe_timeout() -> Duration {
    io_timeout() / 12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_threshold_derives_from_the_shared_timeout() {
        assert_eq!(stall_observe_timeout(), io_timeout() / 12);
        assert!(stall_observe_timeout() < io_timeout());
        assert!(stall_observe_timeout() >= Duration::from_millis(1));
    }

    #[test]
    fn default_matches_the_historical_hardcoded_value() {
        assert_eq!(DEFAULT_IO_TIMEOUT, Duration::from_millis(500));
    }

    #[test]
    fn resolve_accepts_positive_integers_and_flags_everything_else() {
        assert_eq!(resolve(None), (DEFAULT_IO_TIMEOUT, None));
        assert_eq!(resolve(Some("750".into())), (Duration::from_millis(750), None));
        assert_eq!(resolve(Some(" 250 ".into())), (Duration::from_millis(250), None));
        for bad in ["0", "-5", "500ms", "fast", "", "1.5"] {
            let (timeout, rejected) = resolve(Some(bad.to_string()));
            assert_eq!(timeout, DEFAULT_IO_TIMEOUT, "{bad:?}");
            assert_eq!(rejected.as_deref(), Some(bad), "{bad:?} must be reported");
        }
    }
}
