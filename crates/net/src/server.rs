//! A behavioral profile served over a real TCP listener.
//!
//! [`NetServer`] binds an ephemeral loopback port and runs the existing
//! [`hdiff_servers::engine`] over a buffered connection loop: bytes are
//! read incrementally, messages are parsed and answered as they complete
//! (keep-alive pipelining), and per-connection accounting (replies,
//! consumed bytes, teardown mode) is recorded for the campaign to
//! collect. The parsing loop is written so a connection that delivers the
//! same bytes as an in-process [`Server::handle_stream`] call produces
//! the identical reply sequence — the property the cross-transport
//! consistency pass asserts.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use hdiff_servers::{Interpretation, ParserProfile, Server, ServerReply};
use hdiff_wire::{Response, StatusCode};

use crate::error::NetError;

/// Consecutive `accept` failures the listener tolerates (counting and
/// continuing) before it concludes the listener socket itself is dead
/// and exits the loop. A transient per-connection error (aborted
/// handshake, EMFILE pressure easing) must not kill the whole server.
pub const MAX_ACCEPT_ERRORS: u32 = 8;

/// Locks a connection-log mutex, tolerating poison: the log is
/// append-only accounting, so a panic in another handler thread leaves
/// it structurally intact — losing the whole campaign's wire log over it
/// would be the worse failure.
fn lock_logs(logs: &Mutex<Vec<ConnectionLog>>) -> MutexGuard<'_, Vec<ConnectionLog>> {
    logs.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Mirror of the in-process pipelining cap (see `Server::handle_stream`).
pub const MAX_MESSAGES: usize = 16;

/// Socket-level analogues of the origin-side fault kinds. The fault plan
/// itself stays in `hdiff_servers::fault`; the campaign decides a fault
/// on the case thread and passes the *effect* here, so the wire layer
/// stays ignorant of fault-schedule semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerFault {
    /// `ConnReset`: close the connection without ever replying.
    CloseNoReply,
    /// `StallRead`: hold the connection open and never reply — the client
    /// observes a real read timeout.
    Stall,
    /// `Transient5xx`: substitute a 503 for every reply.
    Substitute503,
    /// `TruncateResponse`: halve each response body on the wire (the
    /// `Content-Length` header keeps its original value, so the client
    /// sees a genuinely short read).
    TruncateBody,
}

/// How a connection ended, recorded per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Teardown {
    /// Graceful close (FIN) after the last response was written.
    Fin,
    /// Aborted: closed without completing the exchange (I/O error or an
    /// injected reset).
    Abort,
    /// Held open without replying until the peer gave up (stall fault).
    Stalled,
    /// The server's own read timeout fired with the connection still open.
    TimedOut,
}

/// Per-connection accounting.
#[derive(Debug, Clone)]
pub struct ConnectionLog {
    /// Replies produced, in order — interpretation plus response, exactly
    /// what the in-process engine records.
    pub replies: Vec<ServerReply>,
    /// Total request bytes received on the connection.
    pub bytes_in: usize,
    /// Total response bytes written to the connection.
    pub bytes_out: usize,
    /// How the connection ended.
    pub teardown: Teardown,
}

/// Configuration for one listener.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Per-read timeout; a fire with the connection open records
    /// [`Teardown::TimedOut`].
    pub read_timeout: Duration,
    /// Per-write timeout.
    pub write_timeout: Duration,
    /// Socket-level fault effect applied to every connection.
    pub fault: Option<ServerFault>,
    /// Pipelined-message cap per connection.
    pub max_messages: usize,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            read_timeout: crate::timeout::io_timeout(),
            write_timeout: crate::timeout::io_timeout(),
            fault: None,
            max_messages: MAX_MESSAGES,
        }
    }
}

/// Classifies a rejection as "the stream is incomplete — more bytes may
/// change the verdict" (as opposed to genuinely malformed). These are
/// exactly the engine's partial-input reject reasons; a keep-alive
/// connection waits for more bytes on them instead of answering early.
pub fn incomplete_reason(i: &Interpretation) -> bool {
    match &i.outcome {
        hdiff_servers::Outcome::Accept => false,
        hdiff_servers::Outcome::Reject { status, reason } => {
            *status == 408
                || reason.contains("no request line terminator")
                || reason.contains("header section not terminated")
                || reason.contains("chunked body truncated")
        }
    }
}

/// Whether a parse of `remaining` buffered bytes can be finalized before
/// EOF. Accepts are prefix-stable except when a chunked-repair consumed
/// everything buffered (more bytes could extend the repaired body);
/// rejects are final unless they look like a partial message.
pub(crate) fn is_final(reply: &ServerReply, remaining: usize, eof: bool) -> bool {
    if eof {
        return true;
    }
    let i = &reply.interpretation;
    if i.outcome.is_accept() {
        !(i.repaired_chunked && i.consumed >= remaining)
    } else {
        !incomplete_reason(i)
    }
}

/// A behavioral profile listening on an ephemeral loopback port.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    logs: Arc<Mutex<Vec<ConnectionLog>>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    /// The product name served.
    pub name: String,
}

impl NetServer {
    /// Binds `127.0.0.1:0` and starts serving `profile`. A bind or
    /// thread-spawn failure comes back as a typed [`NetError`] for the
    /// caller to record; the accept loop itself tolerates up to
    /// [`MAX_ACCEPT_ERRORS`] consecutive transient failures before
    /// concluding the listener is dead.
    pub fn spawn(profile: ParserProfile, config: NetServerConfig) -> Result<NetServer, NetError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(NetError::bind)?;
        let addr = listener.local_addr().map_err(NetError::bind)?;
        let logs = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let name = profile.name.clone();
        let thread = {
            let logs = Arc::clone(&logs);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("net-{name}"))
                .spawn(move || {
                    let server = Server::new(profile);
                    let mut accept_errors = 0u32;
                    while !stop.load(Ordering::SeqCst) {
                        let stream = match listener.accept() {
                            Ok((stream, _)) => stream,
                            Err(_) => {
                                hdiff_obs::count("net.accept.error", 1);
                                accept_errors += 1;
                                if accept_errors >= MAX_ACCEPT_ERRORS {
                                    break;
                                }
                                continue;
                            }
                        };
                        accept_errors = 0;
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        handle_connection(&server, &config, stream, &logs);
                    }
                })
                .map_err(NetError::spawn)?
        };
        Ok(NetServer { addr, logs, stop, thread: Some(thread), name })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drains the accumulated connection logs.
    pub fn take_logs(&self) -> Vec<ConnectionLog> {
        std::mem::take(&mut *lock_logs(&self.logs))
    }

    /// Stops the accept loop and joins the listener thread.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept call.
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs one connection to completion. The connection log is pushed into
/// `logs` *before* the stream is closed, so a client that observed EOF
/// (or gave up on a stall) is guaranteed to observe the complete log.
fn handle_connection(
    server: &Server,
    config: &NetServerConfig,
    mut stream: TcpStream,
    logs: &Mutex<Vec<ConnectionLog>>,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);

    match config.fault {
        Some(ServerFault::CloseNoReply) => {
            // Read whatever is in flight, then abort without a byte.
            let mut sink = [0u8; 4096];
            let bytes_in = stream.read(&mut sink).unwrap_or(0);
            lock_logs(logs).push(ConnectionLog {
                replies: Vec::new(),
                bytes_in,
                bytes_out: 0,
                teardown: Teardown::Abort,
            });
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        Some(ServerFault::Stall) => {
            // Never reply; hold the socket until the peer gives up. The
            // client's read timeout is the real-world stall observation,
            // so the log is pushed *before* the stall begins — the
            // campaign collects it after its client times out.
            let mut sink = [0u8; 4096];
            let bytes_in = stream.read(&mut sink).unwrap_or(0);
            lock_logs(logs).push(ConnectionLog {
                replies: Vec::new(),
                bytes_in,
                bytes_out: 0,
                teardown: Teardown::Stalled,
            });
            loop {
                match stream.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            return;
        }
        _ => {}
    }

    let mut buf: Vec<u8> = Vec::new();
    let mut pos = 0usize;
    let mut replies: Vec<ServerReply> = Vec::new();
    let mut bytes_out = 0usize;
    let mut eof = false;
    let mut teardown = Teardown::Fin;

    'conn: loop {
        // Parse and answer every finalizable message in the buffer.
        while replies.len() < config.max_messages && pos < buf.len() {
            let reply = server.handle(&buf[pos..]);
            if !is_final(&reply, buf.len() - pos, eof) {
                break; // wait for more bytes (or EOF)
            }
            let consumed = reply.interpretation.consumed;
            let rejected = !reply.interpretation.outcome.is_accept();
            let reply = apply_reply_fault(server, config.fault, reply);
            let wire = reply.response.to_bytes();
            if stream.write_all(&wire).is_err() {
                teardown = Teardown::Abort;
                replies.push(reply);
                break 'conn;
            }
            bytes_out += wire.len();
            replies.push(reply);
            if rejected || consumed == 0 {
                break 'conn; // connection closes on error, like the engine
            }
            pos += consumed;
        }

        if eof || replies.len() >= config.max_messages {
            break;
        }

        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                teardown = Teardown::TimedOut;
                break;
            }
            Err(_) => {
                teardown = Teardown::Abort;
                break;
            }
        }
    }

    lock_logs(logs).push(ConnectionLog { replies, bytes_in: buf.len(), bytes_out, teardown });
    let _ = stream.shutdown(Shutdown::Both);
}

/// Applies the reply-shaped fault effects exactly the way the in-process
/// engine does, so recorded replies stay comparable across transports.
pub(crate) fn apply_reply_fault(
    server: &Server,
    fault: Option<ServerFault>,
    mut reply: ServerReply,
) -> ServerReply {
    match fault {
        Some(ServerFault::Substitute503) => {
            let mut r = Response::with_body(
                StatusCode(503),
                "injected transient upstream error".to_string(),
            );
            r.headers.push("Server", server.name());
            reply.response = r;
        }
        Some(ServerFault::TruncateBody) => {
            let keep = reply.response.body.len() / 2;
            reply.response.body.truncate(keep);
        }
        _ => {}
    }
    reply
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn exchange(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s.write_all(bytes).unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        out
    }

    #[test]
    fn serves_a_simple_request_over_tcp() {
        let server =
            NetServer::spawn(ParserProfile::strict("wire"), NetServerConfig::default()).unwrap();
        let raw = exchange(server.addr(), b"GET /x HTTP/1.1\r\nHost: h1.com\r\n\r\n");
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("host=h1.com"), "{text}");
        let logs = server.take_logs();
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].replies.len(), 1);
        assert_eq!(logs[0].teardown, Teardown::Fin);
        assert_eq!(logs[0].bytes_out, raw.len());
    }

    #[test]
    fn pipelined_messages_match_the_in_process_engine() {
        let profile = ParserProfile::strict("wire");
        let stream = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n";
        let server = NetServer::spawn(profile.clone(), NetServerConfig::default()).unwrap();
        exchange(server.addr(), stream);
        let logs = server.take_logs();
        assert_eq!(logs[0].replies, Server::new(profile).handle_stream(stream));
        assert_eq!(logs[0].replies.len(), 2);
    }

    #[test]
    fn segmented_delivery_is_reassembled() {
        let profile = ParserProfile::strict("wire");
        let bytes = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabc";
        let server = NetServer::spawn(profile.clone(), NetServerConfig::default()).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        for part in bytes.chunks(7) {
            s.write_all(part).unwrap();
            s.flush().unwrap();
        }
        s.shutdown(Shutdown::Write).unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let logs = server.take_logs();
        assert_eq!(logs[0].replies, Server::new(profile).handle_stream(bytes));
        assert!(logs[0].replies[0].interpretation.outcome.is_accept());
    }

    #[test]
    fn truncated_send_finalizes_the_partial_message_at_eof() {
        let profile = ParserProfile::strict("wire");
        let bytes = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\nabc";
        let server = NetServer::spawn(profile.clone(), NetServerConfig::default()).unwrap();
        let raw = exchange(server.addr(), bytes);
        assert!(String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 408"), "{raw:?}");
        let logs = server.take_logs();
        assert_eq!(logs[0].replies, Server::new(profile).handle_stream(bytes));
    }

    #[test]
    fn close_no_reply_fault_aborts_silently() {
        let config = NetServerConfig {
            fault: Some(ServerFault::CloseNoReply),
            ..NetServerConfig::default()
        };
        let server = NetServer::spawn(ParserProfile::strict("wire"), config).unwrap();
        let raw = exchange(server.addr(), b"GET / HTTP/1.1\r\nHost: h\r\n\r\n");
        assert!(raw.is_empty());
        let logs = server.take_logs();
        assert!(logs[0].replies.is_empty());
        assert_eq!(logs[0].teardown, Teardown::Abort);
    }

    #[test]
    fn stall_fault_times_the_client_out() {
        let config =
            NetServerConfig { fault: Some(ServerFault::Stall), ..NetServerConfig::default() };
        let server = NetServer::spawn(ParserProfile::strict("wire"), config).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        let mut out = [0u8; 16];
        let err = s.read(&mut out).unwrap_err();
        assert!(
            matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "{err:?}"
        );
    }

    #[test]
    fn substitute_and_truncate_faults_mirror_the_sim_effects() {
        let bytes = b"GET / HTTP/1.1\r\nHost: h1.com\r\n\r\n";
        let c503 = NetServerConfig {
            fault: Some(ServerFault::Substitute503),
            ..NetServerConfig::default()
        };
        let server = NetServer::spawn(ParserProfile::strict("wire"), c503).unwrap();
        let raw = exchange(server.addr(), bytes);
        assert!(String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 503"), "{raw:?}");
        assert_eq!(server.take_logs()[0].replies[0].response.status, StatusCode(503));

        let ctrunc = NetServerConfig {
            fault: Some(ServerFault::TruncateBody),
            ..NetServerConfig::default()
        };
        let server = NetServer::spawn(ParserProfile::strict("wire"), ctrunc).unwrap();
        let raw = exchange(server.addr(), bytes);
        let full = Server::new(ParserProfile::strict("wire")).handle(bytes);
        let logs = server.take_logs();
        assert_eq!(logs[0].replies[0].response.body.len(), full.response.body.len() / 2);
        // The wire carries fewer body bytes than the Content-Length claims.
        assert!(raw.len() < full.response.to_bytes().len());
    }
}
