//! A blocking keep-alive connection pool.
//!
//! The async reactor keeps its own warm pool inside the event loop; this
//! type is the *blocking* counterpart for callers that drive framed
//! request/response traffic from their own thread — `hdiff probe`'s
//! catalog sweep reuses one pooled connection across every vector
//! instead of paying connect setup per probe.
//!
//! Semantics:
//!
//! * [`ConnPool::request`] claims an idle connection (pool **hit**) or
//!   opens one (**miss**), writes the request, reads one framed response
//!   (`hdiff_wire::parse_response`), and returns the connection to the
//!   pool.
//! * A reused connection the server closed in the meantime (write error
//!   or EOF before a complete response, with no partial bytes) is
//!   **evicted** and the request retried exactly once on a fresh
//!   connection — the same stale-connection rule the reactor's warm pool
//!   applies.
//! * Counters are both kept on the pool ([`PoolStats`]) and emitted as
//!   `net.pool.hit` / `net.pool.miss` / `net.pool.evict` observations,
//!   so campaign telemetry and unit tests see the same numbers.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};

use hdiff_wire::{parse_response, ParsedResponse};

use crate::client::NetClientConfig;

/// Pool counters. `hits + misses` equals the number of connection
/// claims: one per request plus one per stale-connection retry —
/// independent of how many threads run their own pools.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served on a reused pooled connection.
    pub hits: u64,
    /// Requests that had to open a fresh connection.
    pub misses: u64,
    /// Stale pooled connections discarded.
    pub evictions: u64,
}

/// One idle pooled connection plus any over-read response bytes.
struct Idle {
    stream: TcpStream,
    leftover: Vec<u8>,
}

/// A keep-alive connection pool for one target address.
#[derive(Debug)]
pub struct ConnPool {
    addr: SocketAddr,
    config: NetClientConfig,
    idle: Vec<Idle>,
    depth: usize,
    stats: PoolStats,
}

impl std::fmt::Debug for Idle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Idle").field("leftover", &self.leftover.len()).finish()
    }
}

impl ConnPool {
    /// A pool of up to `depth` idle connections to `addr`, using the
    /// shared testbed timeouts.
    pub fn new(addr: SocketAddr, depth: usize) -> ConnPool {
        ConnPool::with_config(addr, depth, NetClientConfig::default())
    }

    /// A pool with explicit timeouts.
    pub fn with_config(addr: SocketAddr, depth: usize, config: NetClientConfig) -> ConnPool {
        ConnPool {
            addr,
            config,
            idle: Vec::new(),
            depth: depth.max(1),
            stats: PoolStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Idle connections currently parked.
    pub fn idle_len(&self) -> usize {
        self.idle.len()
    }

    fn connect(&mut self) -> std::io::Result<Idle> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        stream.set_nodelay(true)?;
        hdiff_obs::count("net.conn.open", 1);
        Ok(Idle { stream, leftover: Vec::new() })
    }

    fn claim(&mut self) -> std::io::Result<(Idle, bool)> {
        if let Some(idle) = self.idle.pop() {
            self.stats.hits += 1;
            hdiff_obs::count("net.pool.hit", 1);
            return Ok((idle, true));
        }
        self.stats.misses += 1;
        hdiff_obs::count("net.pool.miss", 1);
        Ok((self.connect()?, false))
    }

    fn evict(&mut self) {
        self.stats.evictions += 1;
        hdiff_obs::count("net.pool.evict", 1);
    }

    /// Writes `bytes` and reads one framed response over a pooled
    /// keep-alive connection. A stale reused connection is evicted and
    /// the request retried once on a fresh one.
    pub fn request(&mut self, bytes: &[u8]) -> std::io::Result<ParsedResponse> {
        let (conn, reused) = self.claim()?;
        match self.exchange_on(conn, bytes) {
            Ok(parsed) => Ok(parsed),
            Err((_, stale)) if reused && stale => {
                // The retry is always a fresh connection (counted as a
                // miss); a second failure is a real error.
                self.evict();
                self.stats.misses += 1;
                hdiff_obs::count("net.pool.miss", 1);
                let fresh = self.connect()?;
                self.exchange_on(fresh, bytes).map_err(|(e2, _)| e2)
            }
            Err((e, _)) => Err(e),
        }
    }

    /// One framed request/response on `conn`; returns the connection to
    /// the pool on success. The error side carries whether the failure
    /// pattern is a stale keep-alive connection (nothing received).
    fn exchange_on(
        &mut self,
        mut conn: Idle,
        bytes: &[u8],
    ) -> Result<ParsedResponse, (std::io::Error, bool)> {
        if let Err(e) = conn.stream.write_all(bytes) {
            return Err((e, true));
        }
        let mut got_bytes = false;
        let mut chunk = [0u8; 4096];
        loop {
            if let Ok(parsed) = parse_response(&conn.leftover) {
                conn.leftover.drain(..parsed.consumed);
                if self.idle.len() < self.depth {
                    self.idle.push(conn);
                }
                return Ok(parsed);
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err((
                        std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "connection closed before a complete response",
                        ),
                        !got_bytes,
                    ));
                }
                Ok(n) => {
                    got_bytes = true;
                    conn.leftover.extend_from_slice(&chunk[..n]);
                }
                Err(e) => return Err((e, false)),
            }
        }
    }

    /// Closes every idle connection: FIN then drain to the server's EOF,
    /// so servers record their connection logs before this returns.
    pub fn close(&mut self) {
        for mut idle in self.idle.drain(..) {
            let _ = idle.stream.shutdown(Shutdown::Write);
            let mut sink = [0u8; 1024];
            while matches!(idle.stream.read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

impl Drop for ConnPool {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetServer, NetServerConfig};
    use hdiff_servers::ParserProfile;

    #[test]
    fn reuses_one_connection_across_requests() {
        let server =
            NetServer::spawn(ParserProfile::strict("wire"), NetServerConfig::default()).unwrap();
        let mut pool = ConnPool::new(server.addr(), 2);
        for _ in 0..3 {
            let r = pool.request(b"GET / HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
            assert_eq!(r.status.as_u16(), 200);
        }
        pool.close();
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 2, "{stats:?}");
        let logs = server.take_logs();
        assert_eq!(logs.len(), 1, "all three requests rode one connection");
        assert_eq!(logs[0].replies.len(), 3);
    }
}
