//! Raw epoll syscalls, `libc`-free.
//!
//! The workspace has a zero-dependency policy (everything outside `std`
//! is vendored), so the reactor cannot link `libc` or `mio`. Epoll is
//! reached through `core::arch::asm!` syscall stubs instead: four
//! instructions per call, the same ABI `libc` would use. Only the three
//! calls the reactor needs are wrapped — `epoll_create1`, `epoll_ctl`,
//! and `epoll_pwait` (the `pwait` variant because aarch64 has no plain
//! `epoll_wait` syscall).
//!
//! Everything else the event loop does (socket creation, nonblocking
//! mode, reads, writes, shutdown) goes through `std`, which keeps this
//! file tiny and auditable. On targets without a wrapper implementation
//! the functions return `Unsupported`, and [`supported`] lets callers
//! degrade to the blocking transport up front.

use std::io;
use std::os::fd::RawFd;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;

const EPOLL_CLOEXEC: usize = 0o2000000;

/// The kernel's `epoll_event`. x86_64 is the one architecture where the
/// kernel declares it packed (12 bytes); everywhere else it is a plain
/// 16-byte struct.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

impl EpollEvent {
    pub fn new(events: u32, data: u64) -> EpollEvent {
        EpollEvent { events, data }
    }

    /// Field reads that copy out of the (possibly packed) struct, so
    /// callers never form an unaligned reference.
    pub fn events(&self) -> u32 {
        let e = *self;
        e.events
    }

    pub fn data(&self) -> u64 {
        let e = *self;
        e.data
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod arch {
    const SYS_EPOLL_CREATE1: usize = 291;
    const SYS_EPOLL_CTL: usize = 233;
    const SYS_EPOLL_PWAIT: usize = 281;

    pub const SUPPORTED: bool = true;

    /// # Safety
    /// Arguments must be valid for the given syscall number.
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub fn epoll_create1(flags: usize) -> isize {
        unsafe { syscall6(SYS_EPOLL_CREATE1, flags, 0, 0, 0, 0, 0) }
    }

    pub fn epoll_ctl(epfd: usize, op: usize, fd: usize, event: usize) -> isize {
        unsafe { syscall6(SYS_EPOLL_CTL, epfd, op, fd, event, 0, 0) }
    }

    pub fn epoll_pwait(epfd: usize, events: usize, maxevents: usize, timeout_ms: usize) -> isize {
        // Null sigmask: plain epoll_wait semantics. The final argument is
        // the kernel's sigsetsize and is ignored for a null mask.
        unsafe { syscall6(SYS_EPOLL_PWAIT, epfd, events, maxevents, timeout_ms, 0, 8) }
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod arch {
    const SYS_EPOLL_CREATE1: usize = 20;
    const SYS_EPOLL_CTL: usize = 21;
    const SYS_EPOLL_PWAIT: usize = 22;

    pub const SUPPORTED: bool = true;

    /// # Safety
    /// Arguments must be valid for the given syscall number.
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            in("x8") nr,
            options(nostack),
        );
        ret
    }

    pub fn epoll_create1(flags: usize) -> isize {
        unsafe { syscall6(SYS_EPOLL_CREATE1, flags, 0, 0, 0, 0, 0) }
    }

    pub fn epoll_ctl(epfd: usize, op: usize, fd: usize, event: usize) -> isize {
        unsafe { syscall6(SYS_EPOLL_CTL, epfd, op, fd, event, 0, 0) }
    }

    pub fn epoll_pwait(epfd: usize, events: usize, maxevents: usize, timeout_ms: usize) -> isize {
        unsafe { syscall6(SYS_EPOLL_PWAIT, epfd, events, maxevents, timeout_ms, 0, 8) }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod arch {
    pub const SUPPORTED: bool = false;

    pub fn epoll_create1(_flags: usize) -> isize {
        -38 // -ENOSYS
    }

    pub fn epoll_ctl(_epfd: usize, _op: usize, _fd: usize, _event: usize) -> isize {
        -38
    }

    pub fn epoll_pwait(_epfd: usize, _events: usize, _maxevents: usize, _timeout: usize) -> isize {
        -38
    }
}

/// Whether the reactor's epoll backend exists on this target.
pub fn supported() -> bool {
    arch::SUPPORTED
}

fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// An owned epoll instance; the fd is closed on drop (via `std`'s
/// `OwnedFd`, so no raw `close` syscall is needed).
#[derive(Debug)]
pub struct Epoll {
    fd: std::os::fd::OwnedFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let raw = check(arch::epoll_create1(EPOLL_CLOEXEC))? as RawFd;
        // SAFETY: epoll_create1 returned a fresh fd we exclusively own.
        let fd = unsafe { <std::os::fd::OwnedFd as std::os::fd::FromRawFd>::from_raw_fd(raw) };
        Ok(Epoll { fd })
    }

    fn raw(&self) -> usize {
        use std::os::fd::AsRawFd;
        self.fd.as_raw_fd() as usize
    }

    /// Registers `fd` for edge-triggered readiness with `data` as the
    /// token delivered in events.
    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let ev = EpollEvent::new(events, data);
        check(arch::epoll_ctl(
            self.raw(),
            EPOLL_CTL_ADD as usize,
            fd as usize,
            std::ptr::addr_of!(ev) as usize,
        ))?;
        Ok(())
    }

    /// Deregisters `fd`. Harmless to call for an fd the kernel already
    /// dropped (closing an fd removes it from every epoll set).
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        let ev = EpollEvent::default();
        check(arch::epoll_ctl(
            self.raw(),
            EPOLL_CTL_DEL as usize,
            fd as usize,
            std::ptr::addr_of!(ev) as usize,
        ))?;
        Ok(())
    }

    /// Waits up to `timeout_ms` (`-1` blocks) and fills `events`,
    /// returning how many fired. EINTR is retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let ret = arch::epoll_pwait(
                self.raw(),
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
            );
            match check(ret) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_sees_readiness_on_a_socketpair() {
        let (mut a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN | EPOLLET, 42).unwrap();

        let mut events = [EpollEvent::default(); 8];
        let n = ep.wait(&mut events, 0).unwrap();
        assert_eq!(n, 0, "no readiness before a write");

        a.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].data(), 42);
        assert!(events[0].events() & EPOLLIN != 0);

        ep.del(b.as_raw_fd()).unwrap();
    }
}
