//! The readiness-driven event loop behind the async transport.
//!
//! One [`Reactor`] owns one epoll instance and one loop thread that
//! multiplexes every socket the async testbed touches: origin/proxy/echo
//! listeners, their accepted connections, upstream relay connections,
//! and the client side of every in-flight exchange. Each connection is a
//! small state machine ported line-for-line from the blocking handlers
//! in [`crate::server`], [`crate::proxy`], [`crate::echo`], and
//! [`crate::client`] — the parity the cross-transport consistency gate
//! asserts comes from running the *same* parse/finalize/fault logic,
//! just cooperatively instead of a thread per socket.
//!
//! Design points:
//!
//! * **Edge-triggered epoll, slab tokens.** Every fd registers once with
//!   `EPOLLIN|EPOLLOUT|EPOLLRDHUP|EPOLLET`; the event token packs a slab
//!   index and a generation counter so a recycled slot can never receive
//!   a stale event. Handlers read/write until `WouldBlock`.
//! * **Deadline wheel, not per-socket timeouts.** Sockets are
//!   nonblocking; the per-read 500 ms budget of the blocking layer
//!   becomes a [`super::reactor::wheel::Wheel`] entry re-armed on every
//!   read with progress. Cancellation is a sequence-number bump.
//! * **Log-before-EOF ordering for free.** The blocking layer's
//!   synchronization contract (a server pushes its connection log before
//!   closing, a client that saw EOF sees the complete log) holds here
//!   because server finalize and client EOF run on the same loop thread:
//!   the close that produces the client's EOF readiness happens strictly
//!   after the log was delivered.
//! * **Warm connection pool.** `warm()` pre-opens idle connections per
//!   listener address; an exchange submitted with `warm: true` claims
//!   one (pool hit) instead of connecting (miss). A server-side close of
//!   an idle connection is detected by its read readiness and counted as
//!   an eviction; a claimed-but-stale connection (empty response, no
//!   server log) is retried once on a fresh connection.
//! * **Blocking `connect`, bounded burst.** Loopback connects complete
//!   in microseconds *when the listener backlog has room*, so the loop
//!   issues at most [`CONNECT_BURST`] connects per iteration and drains
//!   accepts in between — the backlog (128) can never overflow and the
//!   kernel's 1 s SYN-retry stall can never trigger.

pub mod sys;
pub mod wheel;

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::rc::Rc;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hdiff_servers::fault::FaultKind;
use hdiff_servers::{
    EchoServer, ForwardAction, ParserProfile, Proxy, ProxyResult, Server, ServerReply,
};
use hdiff_wire::parse_response;

use crate::client::SendMode;
use crate::error::NetError;
use crate::proxy::{NetProxyConfig, ProxyConnLog};
use crate::server::{
    apply_reply_fault, incomplete_reason, is_final, ConnectionLog, NetServerConfig, ServerFault,
    Teardown,
};

use sys::{Epoll, EpollEvent, EPOLLET, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use wheel::Wheel;

/// Event token reserved for the loop's wake channel.
const WAKE_TOKEN: u64 = u64::MAX;

/// Maximum outbound connects initiated per loop iteration (see module
/// docs: must stay below the listen backlog).
const CONNECT_BURST: usize = 64;

/// Read chunk size, matching the blocking handlers.
const CHUNK: usize = 4096;

/// Idle epoll wait cap when no deadline is armed.
const IDLE_WAIT_MS: u64 = 100;

/// Opaque handle to a listener hosted by the reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListenerId(u64);

/// A listener the reactor serves, as seen by the submitting thread.
#[derive(Debug, Clone)]
pub struct AsyncListener {
    /// Product name (profile name) this listener serves.
    pub name: String,
    /// Bound loopback address.
    pub addr: SocketAddr,
    /// Handle for log collection and exchange pairing.
    pub id: ListenerId,
}

/// One unit of client work submitted to the loop.
#[derive(Debug, Clone)]
pub enum Job {
    /// Campaign-style exchange: write, FIN, read to EOF.
    Exchange(ExchangeSpec),
    /// Bench-style drive: N framed keep-alive requests on one connection.
    Drive(DriveSpec),
}

/// Parameters of one campaign exchange.
#[derive(Debug, Clone)]
pub struct ExchangeSpec {
    /// Target address.
    pub addr: SocketAddr,
    /// Request stream bytes.
    pub bytes: Vec<u8>,
    /// How the bytes go on the wire.
    pub mode: SendMode,
    /// Read deadline (re-armed on progress), mirroring the blocking
    /// client's per-read timeout.
    pub read_timeout: Duration,
    /// Listener whose connection log this exchange collects, if any.
    pub pair: Option<ListenerId>,
    /// Claim a pre-warmed pool connection when one is available.
    pub warm: bool,
}

/// Parameters of one throughput drive.
#[derive(Debug, Clone)]
pub struct DriveSpec {
    /// Target address.
    pub addr: SocketAddr,
    /// One framed request; sent `requests` times.
    pub payload: Vec<u8>,
    /// Total requests to complete.
    pub requests: u64,
    /// Requests kept in flight per refill (1 = strict request/response).
    pub pipeline: usize,
    /// Read deadline (re-armed on progress).
    pub read_timeout: Duration,
}

/// Result of one [`Job::Exchange`].
#[derive(Debug, Clone, Default)]
pub struct ExchangeOutput {
    /// Raw response bytes read before EOF (or the deadline).
    pub response: Vec<u8>,
    /// Whether the read ended on the deadline rather than EOF.
    pub timed_out: bool,
    /// Connect or stream failure, if the exchange never completed.
    pub error: Option<NetError>,
    /// The paired origin listener's connection log, when requested.
    pub server_log: Option<ConnectionLog>,
    /// The paired proxy listener's connection log, when requested.
    pub proxy_log: Option<ProxyConnLog>,
    /// Wall time from job assignment to completion.
    pub rtt_ns: u64,
    /// Whether a warm pooled connection was claimed.
    pub reused: bool,
    /// Whether the exchange re-ran on a fresh connection after a stale
    /// pooled one.
    pub retried: bool,
}

/// Result of one [`Job::Drive`].
#[derive(Debug, Clone, Default)]
pub struct DriveOutput {
    /// Requests that received a complete framed response.
    pub completed: u64,
    /// Connect or stream errors (the drive stops on the first).
    pub errors: u64,
    /// Wall time for the whole drive.
    pub elapsed_ns: u64,
    /// Per-request RTTs, recorded only at `pipeline == 1`.
    pub rtt_ns: Vec<u64>,
    /// Whether the drive ended on the deadline.
    pub timed_out: bool,
}

/// Output of one [`Job`], in submission order.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Result of an exchange job.
    Exchange(ExchangeOutput),
    /// Result of a drive job.
    Drive(DriveOutput),
}

impl JobOutput {
    /// The exchange result, when this job was an exchange.
    pub fn as_exchange(&self) -> Option<&ExchangeOutput> {
        match self {
            JobOutput::Exchange(e) => Some(e),
            JobOutput::Drive(_) => None,
        }
    }

    /// The drive result, when this job was a drive.
    pub fn as_drive(&self) -> Option<&DriveOutput> {
        match self {
            JobOutput::Drive(d) => Some(d),
            JobOutput::Exchange(_) => None,
        }
    }
}

/// Loop-side counters, snapshotted via [`Reactor::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReactorStats {
    /// `epoll_wait` returns.
    pub wakeups: u64,
    /// Readiness events delivered.
    pub events: u64,
    /// Connections the loop opened or accepted.
    pub conns_opened: u64,
    /// Connections the loop closed.
    pub conns_closed: u64,
    /// Warm-pool connections opened beyond each address's first fill —
    /// the keep-alive churn signal.
    pub conn_churn: u64,
    /// Exchanges that claimed a warm pooled connection.
    pub pool_hits: u64,
    /// Warm-requested exchanges that found the pool empty.
    pub pool_misses: u64,
    /// Idle pooled connections discarded after a server-side close.
    pub pool_evictions: u64,
    /// Deadline-wheel entries that fired against a live connection.
    pub deadline_fires: u64,
}

// ---------------------------------------------------------------------------
// Commands from the handle to the loop.
// ---------------------------------------------------------------------------

enum Cmd {
    AddOrigin {
        listener: TcpListener,
        server: Server,
        config: NetServerConfig,
        record: bool,
        name: String,
        ack: Sender<ListenerId>,
    },
    AddProxy {
        listener: TcpListener,
        proxy: Proxy,
        config: NetProxyConfig,
        name: String,
        ack: Sender<ListenerId>,
    },
    AddEcho {
        listener: TcpListener,
        read_timeout: Duration,
        ack: Sender<ListenerId>,
    },
    Warm {
        addr: SocketAddr,
        depth: usize,
        ack: Sender<()>,
    },
    Submit {
        jobs: Vec<Job>,
        done: Sender<Vec<JobOutput>>,
    },
    TakeServerLogs {
        id: ListenerId,
        ack: Sender<Vec<ConnectionLog>>,
    },
    TakeProxyLogs {
        id: ListenerId,
        ack: Sender<Vec<ProxyConnLog>>,
    },
    TakeEchoRecords {
        id: ListenerId,
        ack: Sender<Vec<Vec<u8>>>,
    },
    Stats {
        ack: Sender<ReactorStats>,
    },
    Shutdown,
}

// ---------------------------------------------------------------------------
// Loop-side state.
// ---------------------------------------------------------------------------

struct OriginListener {
    listener: TcpListener,
    server: Rc<Server>,
    config: Rc<NetServerConfig>,
    record: bool,
    logs: Vec<ConnectionLog>,
    #[allow(dead_code)]
    name: String,
}

struct ProxyListener {
    listener: TcpListener,
    proxy: Rc<Proxy>,
    config: Rc<NetProxyConfig>,
    logs: Vec<ProxyConnLog>,
    #[allow(dead_code)]
    name: String,
}

struct EchoListener {
    listener: TcpListener,
    echo: Rc<RefCell<EchoServer>>,
    read_timeout: Duration,
}

/// Origin-side fault phase for the two whole-connection faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OriginFaultPhase {
    /// No whole-connection fault; run the normal parse loop.
    None,
    /// `CloseNoReply`: waiting for the first bytes, then abort.
    AwaitAbort,
    /// `Stall`: log already pushed, draining quietly until EOF.
    Stalling,
}

struct OriginConn {
    stream: TcpStream,
    server: Rc<Server>,
    config: Rc<NetServerConfig>,
    record: bool,
    owner: usize,
    peer: SocketAddr,
    buf: Vec<u8>,
    pos: usize,
    replies: Vec<ServerReply>,
    bytes_out: usize,
    eof: bool,
    teardown: Teardown,
    out: Vec<u8>,
    out_pos: usize,
    closing: bool,
    finalized: bool,
    fault_phase: OriginFaultPhase,
    seq: u64,
}

struct PendingRelay {
    result: ProxyResult,
    consumed: usize,
    rejected: bool,
    drop_rest: bool,
}

struct ProxyConn {
    stream: TcpStream,
    proxy: Rc<Proxy>,
    config: Rc<NetProxyConfig>,
    owner: usize,
    peer: SocketAddr,
    buf: Vec<u8>,
    pos: usize,
    results: Vec<ProxyResult>,
    eof: bool,
    teardown: Teardown,
    out: Vec<u8>,
    out_pos: usize,
    closing: bool,
    relay: Option<PendingRelay>,
    seq: u64,
}

struct UpstreamConn {
    stream: TcpStream,
    /// Slab index of the proxy connection awaiting this relay.
    owner: usize,
    out: Vec<u8>,
    out_pos: usize,
    fin_sent: bool,
    resp: Vec<u8>,
    seq: u64,
}

struct EchoConn {
    stream: TcpStream,
    echo: Rc<RefCell<EchoServer>>,
    buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    responded: bool,
    seq: u64,
}

struct ExchangeState {
    batch: usize,
    job: usize,
    out: Vec<u8>,
    out_pos: usize,
    fin_sent: bool,
    resp: Vec<u8>,
    read_timeout: Duration,
    started: Instant,
    reused: bool,
    retried: bool,
    pair: Option<usize>,
    /// Original spec kept for the stale-connection retry.
    spec: ExchangeSpec,
}

struct DriveState {
    batch: usize,
    job: usize,
    payload: Vec<u8>,
    requests: u64,
    sent: u64,
    completed: u64,
    pipeline: usize,
    out: Vec<u8>,
    out_pos: usize,
    resp_buf: Vec<u8>,
    rtts: Vec<u64>,
    last_send: Instant,
    read_timeout: Duration,
    started: Instant,
}

enum ClientKind {
    /// Warm pool member, waiting for an exchange to claim it.
    Idle {
        addr: SocketAddr,
    },
    Exchange(Box<ExchangeState>),
    Drive(Box<DriveState>),
}

struct ClientConn {
    stream: TcpStream,
    kind: ClientKind,
    seq: u64,
}

enum Entry {
    OriginListener(OriginListener),
    ProxyListener(ProxyListener),
    EchoListener(EchoListener),
    Origin(OriginConn),
    ProxyDown(Box<ProxyConn>),
    Upstream(UpstreamConn),
    EchoConn(EchoConn),
    Client(ClientConn),
}

struct Slot {
    gen: u32,
    entry: Option<Entry>,
}

struct BatchState {
    outputs: Vec<Option<JobOutput>>,
    remaining: usize,
    done: Sender<Vec<JobOutput>>,
    pending_server_logs: HashMap<usize, ConnectionLog>,
    pending_proxy_logs: HashMap<usize, ProxyConnLog>,
}

enum ConnectIntent {
    Exchange { batch: usize, job: usize, spec: ExchangeSpec, retried: bool },
    Drive { batch: usize, job: usize, spec: DriveSpec },
    Idle { addr: SocketAddr },
    Upstream { owner: usize, addr: SocketAddr, bytes: Vec<u8>, read_timeout: Duration },
}

enum Wake {
    Io(u64),
    Deadline(usize, u64),
    Resume(usize),
    RelayDone(usize, Result<Vec<u8>, ()>),
}

enum ReadOutcome {
    /// Read until `WouldBlock`; `true` when any bytes arrived.
    More(bool),
    /// Peer sent FIN.
    Eof,
    /// Hard stream error.
    Error,
}

/// Drains `stream` into `buf` until `WouldBlock`, EOF, or error.
fn drain_read(stream: &mut TcpStream, buf: &mut Vec<u8>) -> ReadOutcome {
    let mut any = false;
    let mut chunk = [0u8; CHUNK];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                any = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return ReadOutcome::More(any),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Error,
        }
    }
}

enum WriteOutcome {
    Flushed,
    Partial,
    Error,
}

/// Writes `out[*pos..]` until `WouldBlock`, completion, or error.
fn drain_write(stream: &mut TcpStream, out: &[u8], pos: &mut usize) -> WriteOutcome {
    while *pos < out.len() {
        match stream.write(&out[*pos..]) {
            Ok(0) => return WriteOutcome::Error,
            Ok(n) => *pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return WriteOutcome::Partial,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return WriteOutcome::Error,
        }
    }
    WriteOutcome::Flushed
}

/// Flattens a [`SendMode`] into the exact bytes an exchange puts on the
/// wire. Segment boundaries are not reproduced as separate writes: the
/// blocking client emits its segments back-to-back with no pauses, so
/// coalescing is already possible there, and the servers' finalization
/// rule (`is_final`) makes outcomes depend only on the total stream.
fn mode_bytes(bytes: &[u8], mode: &SendMode) -> Vec<u8> {
    match mode {
        SendMode::Whole | SendMode::Segmented(_) => bytes.to_vec(),
        SendMode::TruncateAt(n) => bytes[..(*n).min(bytes.len())].to_vec(),
    }
}

struct EventLoop {
    ep: Epoll,
    wake_rx: TcpStream,
    cmds: Arc<Mutex<VecDeque<Cmd>>>,
    slab: Vec<Slot>,
    free: Vec<usize>,
    wheel: Wheel,
    next_seq: u64,
    batches: Vec<Option<BatchState>>,
    free_batches: Vec<usize>,
    tickets: HashMap<(usize, SocketAddr), (usize, usize)>,
    /// Idle pooled connections per address, as (slab idx, generation).
    warm: HashMap<SocketAddr, VecDeque<(usize, u32)>>,
    /// Registered pool depth per address.
    warm_targets: HashMap<SocketAddr, usize>,
    /// Addresses that completed their first pool fill (for churn
    /// accounting).
    warm_filled: HashMap<SocketAddr, bool>,
    pending_connects: VecDeque<ConnectIntent>,
    agenda: VecDeque<Wake>,
    stats: ReactorStats,
}

impl EventLoop {
    fn new(ep: Epoll, wake_rx: TcpStream, cmds: Arc<Mutex<VecDeque<Cmd>>>) -> EventLoop {
        EventLoop {
            ep,
            wake_rx,
            cmds,
            slab: Vec::new(),
            free: Vec::new(),
            wheel: Wheel::new(Instant::now()),
            next_seq: 1,
            batches: Vec::new(),
            free_batches: Vec::new(),
            tickets: HashMap::new(),
            warm: HashMap::new(),
            warm_targets: HashMap::new(),
            warm_filled: HashMap::new(),
            pending_connects: VecDeque::new(),
            agenda: VecDeque::new(),
            stats: ReactorStats::default(),
        }
    }

    // -- slab ------------------------------------------------------------

    fn insert(&mut self, entry: Entry) -> usize {
        match self.free.pop() {
            Some(idx) => {
                self.slab[idx].entry = Some(entry);
                idx
            }
            None => {
                self.slab.push(Slot { gen: 0, entry: Some(entry) });
                self.slab.len() - 1
            }
        }
    }

    fn token(&self, idx: usize) -> u64 {
        ((self.slab[idx].gen as u64) << 32) | idx as u64
    }

    /// Frees a slot whose entry has already been taken out.
    fn release(&mut self, idx: usize) {
        self.slab[idx].gen = self.slab[idx].gen.wrapping_add(1);
        self.slab[idx].entry = None;
        self.free.push(idx);
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn arm(&mut self, idx: usize, seq: u64, after: Duration) {
        self.wheel.arm(Instant::now(), idx, seq, after);
    }

    fn register(&mut self, fd: std::os::fd::RawFd, idx: usize) -> std::io::Result<()> {
        self.ep.add(fd, EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET, self.token(idx))
    }

    // -- main loop -------------------------------------------------------

    fn run(mut self) {
        let mut events = vec![EpollEvent::default(); 1024];
        loop {
            let timeout_ms = if self.pending_connects.is_empty() && self.agenda.is_empty() {
                self.wheel.next_timeout_ms(Instant::now(), IDLE_WAIT_MS) as i32
            } else {
                0
            };
            let n = self.ep.wait(&mut events, timeout_ms).unwrap_or(0);
            self.stats.wakeups += 1;
            self.stats.events += n as u64;
            let mut woken = false;
            for ev in &events[..n] {
                if ev.data() == WAKE_TOKEN {
                    woken = true;
                } else {
                    self.agenda.push_back(Wake::Io(ev.data()));
                }
            }
            if woken {
                let mut sink = [0u8; 256];
                while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            }
            let now = Instant::now();
            let mut fired = Vec::new();
            self.wheel.advance(now, |c, s| fired.push((c, s)));
            for (c, s) in fired {
                self.agenda.push_back(Wake::Deadline(c, s));
            }
            loop {
                let cmd = self.cmds.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
                match cmd {
                    Some(Cmd::Shutdown) => return,
                    Some(cmd) => self.handle_cmd(cmd),
                    None => break,
                }
            }
            while let Some(wake) = self.agenda.pop_front() {
                self.dispatch(wake);
            }
            for _ in 0..CONNECT_BURST {
                match self.pending_connects.pop_front() {
                    Some(intent) => self.do_connect(intent),
                    None => break,
                }
            }
        }
    }

    fn handle_cmd(&mut self, cmd: Cmd) {
        match cmd {
            Cmd::AddOrigin { listener, server, config, record, name, ack } => {
                let _ = listener.set_nonblocking(true);
                let fd = listener.as_raw_fd();
                let idx = self.insert(Entry::OriginListener(OriginListener {
                    listener,
                    server: Rc::new(server),
                    config: Rc::new(config),
                    record,
                    logs: Vec::new(),
                    name,
                }));
                let _ = self.register(fd, idx);
                let _ = ack.send(ListenerId(self.token(idx)));
            }
            Cmd::AddProxy { listener, proxy, config, name, ack } => {
                let _ = listener.set_nonblocking(true);
                let fd = listener.as_raw_fd();
                let idx = self.insert(Entry::ProxyListener(ProxyListener {
                    listener,
                    proxy: Rc::new(proxy),
                    config: Rc::new(config),
                    logs: Vec::new(),
                    name,
                }));
                let _ = self.register(fd, idx);
                let _ = ack.send(ListenerId(self.token(idx)));
            }
            Cmd::AddEcho { listener, read_timeout, ack } => {
                let _ = listener.set_nonblocking(true);
                let fd = listener.as_raw_fd();
                let idx = self.insert(Entry::EchoListener(EchoListener {
                    listener,
                    echo: Rc::new(RefCell::new(EchoServer::new())),
                    read_timeout,
                }));
                let _ = self.register(fd, idx);
                let _ = ack.send(ListenerId(self.token(idx)));
            }
            Cmd::Warm { addr, depth, ack } => {
                self.warm_targets.insert(addr, depth);
                let have = self.idle_count(addr);
                for _ in have..depth {
                    self.pending_connects.push_back(ConnectIntent::Idle { addr });
                }
                let _ = ack.send(());
            }
            Cmd::Submit { jobs, done } => self.handle_submit(jobs, done),
            Cmd::TakeServerLogs { id, ack } => {
                let logs = match self.resolve(id) {
                    Some(idx) => match self.slab[idx].entry.as_mut() {
                        Some(Entry::OriginListener(l)) => std::mem::take(&mut l.logs),
                        _ => Vec::new(),
                    },
                    None => Vec::new(),
                };
                let _ = ack.send(logs);
            }
            Cmd::TakeProxyLogs { id, ack } => {
                let logs = match self.resolve(id) {
                    Some(idx) => match self.slab[idx].entry.as_mut() {
                        Some(Entry::ProxyListener(l)) => std::mem::take(&mut l.logs),
                        _ => Vec::new(),
                    },
                    None => Vec::new(),
                };
                let _ = ack.send(logs);
            }
            Cmd::TakeEchoRecords { id, ack } => {
                let records = match self.resolve(id) {
                    Some(idx) => match self.slab[idx].entry.as_ref() {
                        Some(Entry::EchoListener(l)) => {
                            let mut echo = l.echo.borrow_mut();
                            let records = echo.records().to_vec();
                            echo.clear();
                            records
                        }
                        _ => Vec::new(),
                    },
                    None => Vec::new(),
                };
                let _ = ack.send(records);
            }
            Cmd::Stats { ack } => {
                let _ = ack.send(self.stats);
            }
            Cmd::Shutdown => {}
        }
    }

    fn resolve(&self, id: ListenerId) -> Option<usize> {
        let idx = (id.0 & 0xffff_ffff) as usize;
        let gen = (id.0 >> 32) as u32;
        (idx < self.slab.len() && self.slab[idx].gen == gen).then_some(idx)
    }

    fn idle_count(&self, addr: SocketAddr) -> usize {
        self.warm.get(&addr).map_or(0, VecDeque::len)
    }

    // -- submission ------------------------------------------------------

    fn handle_submit(&mut self, jobs: Vec<Job>, done: Sender<Vec<JobOutput>>) {
        let batch = match self.free_batches.pop() {
            Some(b) => b,
            None => {
                self.batches.push(None);
                self.batches.len() - 1
            }
        };
        self.batches[batch] = Some(BatchState {
            outputs: vec![None; jobs.len()],
            remaining: jobs.len(),
            done,
            pending_server_logs: HashMap::new(),
            pending_proxy_logs: HashMap::new(),
        });
        if jobs.is_empty() {
            self.finish_batch_if_done(batch);
            return;
        }
        for (job, spec) in jobs.into_iter().enumerate() {
            match spec {
                Job::Exchange(spec) => self.submit_exchange(batch, job, spec, false),
                Job::Drive(spec) => {
                    self.pending_connects.push_back(ConnectIntent::Drive { batch, job, spec });
                }
            }
        }
    }

    fn submit_exchange(&mut self, batch: usize, job: usize, spec: ExchangeSpec, retried: bool) {
        if spec.warm && !retried {
            if let Some(idx) = self.claim_idle(spec.addr) {
                self.stats.pool_hits += 1;
                self.replenish(spec.addr);
                self.assign_exchange(idx, batch, job, spec, true, false);
                return;
            }
            self.stats.pool_misses += 1;
            self.replenish(spec.addr);
        }
        self.pending_connects.push_back(ConnectIntent::Exchange { batch, job, spec, retried });
    }

    /// Pops idle pooled connections for `addr` until a live one is found.
    fn claim_idle(&mut self, addr: SocketAddr) -> Option<usize> {
        let deque = self.warm.get_mut(&addr)?;
        while let Some((idx, gen)) = deque.pop_front() {
            if self.slab.get(idx).is_some_and(|s| {
                s.gen == gen
                    && matches!(
                        s.entry,
                        Some(Entry::Client(ClientConn { kind: ClientKind::Idle { .. }, .. }))
                    )
            }) {
                return Some(idx);
            }
        }
        None
    }

    /// Tops the pool back up to the registered depth for `addr`.
    fn replenish(&mut self, addr: SocketAddr) {
        let Some(&depth) = self.warm_targets.get(&addr) else { return };
        if self.idle_count(addr) < depth {
            self.pending_connects.push_back(ConnectIntent::Idle { addr });
        }
    }

    /// Converts a connected client slot into a running exchange.
    fn assign_exchange(
        &mut self,
        idx: usize,
        batch: usize,
        job: usize,
        spec: ExchangeSpec,
        reused: bool,
        retried: bool,
    ) {
        let pair = spec.pair.and_then(|id| self.resolve(id));
        let seq = self.next_seq();
        let read_timeout = spec.read_timeout;
        let state = ExchangeState {
            batch,
            job,
            out: mode_bytes(&spec.bytes, &spec.mode),
            out_pos: 0,
            fin_sent: false,
            resp: Vec::new(),
            read_timeout,
            started: Instant::now(),
            reused,
            retried,
            pair,
            spec,
        };
        if let Some(Entry::Client(c)) = self.slab[idx].entry.as_mut() {
            c.kind = ClientKind::Exchange(Box::new(state));
            c.seq = seq;
            if let (Some(owner), Ok(local)) = (pair, c.stream.local_addr()) {
                self.tickets.insert((owner, local), (batch, job));
            }
        }
        self.arm(idx, seq, read_timeout);
        self.agenda.push_back(Wake::Resume(idx));
    }

    // -- connect processing ---------------------------------------------

    fn do_connect(&mut self, intent: ConnectIntent) {
        match intent {
            ConnectIntent::Exchange { batch, job, spec, retried } => match self.open(spec.addr) {
                Ok(idx) => self.assign_exchange(idx, batch, job, spec, false, retried),
                Err(e) => {
                    let out = ExchangeOutput {
                        error: Some(NetError::connect(e)),
                        retried,
                        ..ExchangeOutput::default()
                    };
                    self.complete(batch, job, JobOutput::Exchange(out));
                }
            },
            ConnectIntent::Drive { batch, job, spec } => match self.open(spec.addr) {
                Ok(idx) => {
                    let seq = self.next_seq();
                    let read_timeout = spec.read_timeout;
                    let mut state = DriveState {
                        batch,
                        job,
                        payload: spec.payload,
                        requests: spec.requests,
                        sent: 0,
                        completed: 0,
                        pipeline: spec.pipeline.max(1),
                        out: Vec::new(),
                        out_pos: 0,
                        resp_buf: Vec::new(),
                        rtts: Vec::new(),
                        last_send: Instant::now(),
                        read_timeout,
                        started: Instant::now(),
                    };
                    refill_drive(&mut state);
                    if let Some(Entry::Client(c)) = self.slab[idx].entry.as_mut() {
                        c.kind = ClientKind::Drive(Box::new(state));
                        c.seq = seq;
                    }
                    self.arm(idx, seq, read_timeout);
                    self.agenda.push_back(Wake::Resume(idx));
                }
                Err(_) => {
                    let out = DriveOutput { errors: 1, ..DriveOutput::default() };
                    self.complete(batch, job, JobOutput::Drive(out));
                }
            },
            ConnectIntent::Idle { addr } => {
                let depth = self.warm_targets.get(&addr).copied().unwrap_or(0);
                if self.idle_count(addr) >= depth {
                    return; // pool refilled by a competing intent
                }
                if let Ok(idx) = self.open(addr) {
                    if let Some(Entry::Client(c)) = self.slab[idx].entry.as_mut() {
                        c.kind = ClientKind::Idle { addr };
                    }
                    let gen = self.slab[idx].gen;
                    self.warm.entry(addr).or_default().push_back((idx, gen));
                    if self.warm_filled.get(&addr).copied().unwrap_or(false) {
                        self.stats.conn_churn += 1;
                    } else if self.idle_count(addr) >= depth {
                        self.warm_filled.insert(addr, true);
                    }
                }
            }
            ConnectIntent::Upstream { owner, addr, bytes, read_timeout } => {
                match TcpStream::connect(addr) {
                    Ok(stream) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        self.stats.conns_opened += 1;
                        let fd = stream.as_raw_fd();
                        let seq = self.next_seq();
                        let idx = self.insert(Entry::Upstream(UpstreamConn {
                            stream,
                            owner,
                            out: bytes,
                            out_pos: 0,
                            fin_sent: false,
                            resp: Vec::new(),
                            seq,
                        }));
                        let _ = self.register(fd, idx);
                        self.arm(idx, seq, read_timeout);
                    }
                    Err(_) => {
                        self.agenda.push_back(Wake::RelayDone(owner, Err(())));
                    }
                }
            }
        }
    }

    /// Opens a client connection and registers it as an (unassigned)
    /// idle entry; the caller converts it.
    fn open(&mut self, addr: SocketAddr) -> std::io::Result<usize> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        self.stats.conns_opened += 1;
        let fd = stream.as_raw_fd();
        let idx = self.insert(Entry::Client(ClientConn {
            stream,
            kind: ClientKind::Idle { addr },
            seq: 0,
        }));
        let _ = self.register(fd, idx);
        Ok(idx)
    }

    // -- dispatch --------------------------------------------------------

    fn dispatch(&mut self, wake: Wake) {
        let (idx, deadline_seq, relay) = match wake {
            Wake::Io(token) => {
                let idx = (token & 0xffff_ffff) as usize;
                let gen = (token >> 32) as u32;
                if idx >= self.slab.len() || self.slab[idx].gen != gen {
                    return;
                }
                (idx, None, None)
            }
            Wake::Resume(idx) => (idx, None, None),
            Wake::Deadline(idx, seq) => (idx, Some(seq), None),
            Wake::RelayDone(idx, result) => (idx, None, Some(result)),
        };
        let Some(entry) = self.slab.get_mut(idx).and_then(|s| s.entry.take()) else {
            return;
        };
        let keep = match entry {
            Entry::OriginListener(mut l) => {
                self.accept_origin(idx, &mut l);
                self.slab[idx].entry = Some(Entry::OriginListener(l));
                return;
            }
            Entry::ProxyListener(mut l) => {
                self.accept_proxy(idx, &mut l);
                self.slab[idx].entry = Some(Entry::ProxyListener(l));
                return;
            }
            Entry::EchoListener(mut l) => {
                self.accept_echo(&mut l);
                self.slab[idx].entry = Some(Entry::EchoListener(l));
                return;
            }
            Entry::Origin(mut c) => {
                let keep = if let Some(seq) = deadline_seq {
                    if seq != c.seq {
                        true
                    } else {
                        self.stats.deadline_fires += 1;
                        self.origin_deadline(&mut c)
                    }
                } else {
                    self.origin_step(idx, &mut c)
                };
                if keep {
                    self.slab[idx].entry = Some(Entry::Origin(c));
                }
                keep
            }
            Entry::ProxyDown(mut c) => {
                let keep = if let Some(seq) = deadline_seq {
                    if seq != c.seq {
                        true
                    } else {
                        self.stats.deadline_fires += 1;
                        self.proxy_deadline(&mut c)
                    }
                } else if let Some(result) = relay {
                    self.proxy_relay_done(idx, &mut c, result)
                } else {
                    self.proxy_step(idx, &mut c)
                };
                if keep {
                    self.slab[idx].entry = Some(Entry::ProxyDown(c));
                }
                keep
            }
            Entry::Upstream(mut c) => {
                let keep = if let Some(seq) = deadline_seq {
                    if seq != c.seq {
                        true
                    } else {
                        self.stats.deadline_fires += 1;
                        self.agenda.push_back(Wake::RelayDone(c.owner, Err(())));
                        false
                    }
                } else {
                    self.upstream_step(&mut c)
                };
                if keep {
                    self.slab[idx].entry = Some(Entry::Upstream(c));
                }
                keep
            }
            Entry::EchoConn(mut c) => {
                let keep = if let Some(seq) = deadline_seq {
                    if seq != c.seq {
                        true
                    } else {
                        self.stats.deadline_fires += 1;
                        self.echo_deadline(&mut c)
                    }
                } else {
                    self.echo_step(&mut c)
                };
                if keep {
                    self.slab[idx].entry = Some(Entry::EchoConn(c));
                }
                keep
            }
            Entry::Client(mut c) => {
                let keep = if let Some(seq) = deadline_seq {
                    if seq != c.seq {
                        true
                    } else {
                        self.stats.deadline_fires += 1;
                        self.client_deadline(&mut c)
                    }
                } else {
                    self.client_step(idx, &mut c)
                };
                if keep {
                    self.slab[idx].entry = Some(Entry::Client(c));
                }
                keep
            }
        };
        if !keep {
            self.stats.conns_closed += 1;
            self.release(idx);
        }
    }

    // -- accept ----------------------------------------------------------

    fn accept_origin(&mut self, owner: usize, l: &mut OriginListener) {
        loop {
            match l.listener.accept() {
                Ok((stream, peer)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.stats.conns_opened += 1;
                    let fd = stream.as_raw_fd();
                    let seq = self.next_seq();
                    // Both whole-connection faults start by waiting for
                    // the first bytes; which one applies is re-checked
                    // when the wait ends.
                    let fault_phase = match l.config.fault {
                        Some(ServerFault::CloseNoReply) | Some(ServerFault::Stall) => {
                            OriginFaultPhase::AwaitAbort
                        }
                        _ => OriginFaultPhase::None,
                    };
                    let read_timeout = l.config.read_timeout;
                    let idx = self.insert(Entry::Origin(OriginConn {
                        stream,
                        server: Rc::clone(&l.server),
                        config: Rc::clone(&l.config),
                        record: l.record,
                        owner,
                        peer,
                        buf: Vec::new(),
                        pos: 0,
                        replies: Vec::new(),
                        bytes_out: 0,
                        eof: false,
                        teardown: Teardown::Fin,
                        out: Vec::new(),
                        out_pos: 0,
                        closing: false,
                        finalized: false,
                        fault_phase,
                        seq,
                    }));
                    let _ = self.register(fd, idx);
                    self.arm(idx, seq, read_timeout);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn accept_proxy(&mut self, owner: usize, l: &mut ProxyListener) {
        loop {
            match l.listener.accept() {
                Ok((stream, peer)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.stats.conns_opened += 1;
                    let fd = stream.as_raw_fd();
                    let seq = self.next_seq();
                    let read_timeout = l.config.read_timeout;
                    let idx = self.insert(Entry::ProxyDown(Box::new(ProxyConn {
                        stream,
                        proxy: Rc::clone(&l.proxy),
                        config: Rc::clone(&l.config),
                        owner,
                        peer,
                        buf: Vec::new(),
                        pos: 0,
                        results: Vec::new(),
                        eof: false,
                        teardown: Teardown::Fin,
                        out: Vec::new(),
                        out_pos: 0,
                        closing: false,
                        relay: None,
                        seq,
                    })));
                    let _ = self.register(fd, idx);
                    self.arm(idx, seq, read_timeout);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn accept_echo(&mut self, l: &mut EchoListener) {
        loop {
            match l.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.stats.conns_opened += 1;
                    let fd = stream.as_raw_fd();
                    let seq = self.next_seq();
                    let read_timeout = l.read_timeout;
                    let idx = self.insert(Entry::EchoConn(EchoConn {
                        stream,
                        echo: Rc::clone(&l.echo),
                        buf: Vec::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        responded: false,
                        seq,
                    }));
                    let _ = self.register(fd, idx);
                    self.arm(idx, seq, read_timeout);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    // -- origin connection state machine ---------------------------------

    /// Delivers an origin connection log to its paired exchange, or to
    /// the listener's accumulated logs.
    fn deliver_server_log(&mut self, owner: usize, peer: SocketAddr, log: ConnectionLog) {
        if let Some((batch, job)) = self.tickets.remove(&(owner, peer)) {
            if let Some(Some(b)) = self.batches.get_mut(batch) {
                b.pending_server_logs.insert(job, log);
                return;
            }
        }
        if let Some(Entry::OriginListener(l)) =
            self.slab.get_mut(owner).and_then(|s| s.entry.as_mut())
        {
            l.logs.push(log);
        }
    }

    fn deliver_proxy_log(&mut self, owner: usize, peer: SocketAddr, log: ProxyConnLog) {
        if let Some((batch, job)) = self.tickets.remove(&(owner, peer)) {
            if let Some(Some(b)) = self.batches.get_mut(batch) {
                b.pending_proxy_logs.insert(job, log);
                return;
            }
        }
        if let Some(Entry::ProxyListener(l)) =
            self.slab.get_mut(owner).and_then(|s| s.entry.as_mut())
        {
            l.logs.push(log);
        }
    }

    fn origin_finalize(&mut self, c: &mut OriginConn) {
        if c.finalized {
            return;
        }
        c.finalized = true;
        let replies = if c.record { std::mem::take(&mut c.replies) } else { Vec::new() };
        let log = ConnectionLog {
            replies,
            bytes_in: c.buf.len(),
            bytes_out: c.bytes_out,
            teardown: c.teardown,
        };
        self.deliver_server_log(c.owner, c.peer, log);
    }

    /// Returns `true` to keep the connection alive.
    fn origin_step(&mut self, idx: usize, c: &mut OriginConn) -> bool {
        match c.fault_phase {
            OriginFaultPhase::AwaitAbort => return self.origin_fault_await(c),
            OriginFaultPhase::Stalling => {
                // Drain quietly; close silently on EOF or error.
                let mut sink = Vec::new();
                return matches!(drain_read(&mut c.stream, &mut sink), ReadOutcome::More(_));
            }
            OriginFaultPhase::None => {}
        }

        if c.closing {
            return self.origin_flush_close(c);
        }

        let mut progressed = false;
        match drain_read(&mut c.stream, &mut c.buf) {
            ReadOutcome::More(any) => progressed = any,
            ReadOutcome::Eof => c.eof = true,
            ReadOutcome::Error => {
                c.teardown = Teardown::Abort;
                c.closing = true;
            }
        }

        if !c.closing {
            self.origin_parse(c);
            if !c.closing && (c.eof || c.replies.len() >= c.config.max_messages) {
                c.closing = true;
            }
        }

        if c.closing {
            return self.origin_flush_close(c);
        }
        let out = std::mem::take(&mut c.out);
        match drain_write(&mut c.stream, &out, &mut c.out_pos) {
            WriteOutcome::Error => {
                c.teardown = Teardown::Abort;
                self.origin_finalize(c);
                return false;
            }
            WriteOutcome::Partial => c.out = out,
            WriteOutcome::Flushed => {
                c.out = Vec::new();
                c.out_pos = 0;
            }
        }
        if progressed {
            c.seq = self.next_seq();
            let t = c.config.read_timeout;
            self.wheel.arm(Instant::now(), idx, c.seq, t);
        }
        true
    }

    /// First-bytes wait shared by the two whole-connection faults.
    fn origin_fault_await(&mut self, c: &mut OriginConn) -> bool {
        let outcome = drain_read(&mut c.stream, &mut c.buf);
        let got = !c.buf.is_empty() || matches!(outcome, ReadOutcome::Eof | ReadOutcome::Error);
        if !got {
            return true; // keep waiting for the first bytes
        }
        match c.config.fault {
            Some(ServerFault::Stall) => {
                c.teardown = Teardown::Stalled;
                self.origin_finalize(c);
                c.fault_phase = OriginFaultPhase::Stalling;
                // Hold the socket open; the client's read deadline is the
                // observation. EOF/error later closes silently.
                !matches!(outcome, ReadOutcome::Eof | ReadOutcome::Error)
            }
            _ => {
                // CloseNoReply: abort without a byte.
                c.teardown = Teardown::Abort;
                self.origin_finalize(c);
                false
            }
        }
    }

    fn origin_parse(&mut self, c: &mut OriginConn) {
        while c.replies.len() < c.config.max_messages && c.pos < c.buf.len() {
            let reply = c.server.handle(&c.buf[c.pos..]);
            if !is_final(&reply, c.buf.len() - c.pos, c.eof) {
                break;
            }
            let consumed = reply.interpretation.consumed;
            let rejected = !reply.interpretation.outcome.is_accept();
            let reply = apply_reply_fault(&c.server, c.config.fault, reply);
            let wire = reply.response.to_bytes();
            c.out.extend_from_slice(&wire);
            c.bytes_out += wire.len();
            c.replies.push(reply);
            if rejected || consumed == 0 {
                c.closing = true;
                break;
            }
            c.pos += consumed;
        }
    }

    fn origin_flush_close(&mut self, c: &mut OriginConn) -> bool {
        let out = std::mem::take(&mut c.out);
        match drain_write(&mut c.stream, &out, &mut c.out_pos) {
            WriteOutcome::Flushed => {
                self.origin_finalize(c);
                let _ = c.stream.shutdown(Shutdown::Both);
                false
            }
            WriteOutcome::Partial => {
                c.out = out;
                true
            }
            WriteOutcome::Error => {
                c.teardown = Teardown::Abort;
                self.origin_finalize(c);
                false
            }
        }
    }

    fn origin_deadline(&mut self, c: &mut OriginConn) -> bool {
        match c.fault_phase {
            OriginFaultPhase::Stalling => {
                // The blocking stall loop exits on its own read timeout.
                return false;
            }
            OriginFaultPhase::AwaitAbort => {
                c.teardown = if matches!(c.config.fault, Some(ServerFault::Stall)) {
                    Teardown::Stalled
                } else {
                    Teardown::Abort
                };
                self.origin_finalize(c);
                return false;
            }
            OriginFaultPhase::None => {}
        }
        if c.closing {
            // Mid-close flush stalled past the read budget; give up.
            self.origin_finalize(c);
            return false;
        }
        c.teardown = Teardown::TimedOut;
        self.origin_finalize(c);
        false
    }

    // -- proxy connection state machine ----------------------------------

    fn proxy_step(&mut self, idx: usize, c: &mut ProxyConn) -> bool {
        if c.closing {
            return self.proxy_flush_close(c);
        }
        let mut progressed = false;
        match drain_read(&mut c.stream, &mut c.buf) {
            ReadOutcome::More(any) => progressed = any,
            ReadOutcome::Eof => c.eof = true,
            ReadOutcome::Error => {
                c.teardown = Teardown::Abort;
                c.closing = true;
            }
        }
        if !c.closing && c.relay.is_none() {
            self.proxy_parse(idx, c);
            if c.relay.is_none()
                && !c.closing
                && (c.eof || c.results.len() >= c.config.max_messages)
            {
                c.closing = true;
            }
        }
        if c.closing {
            return self.proxy_flush_close(c);
        }
        let out = std::mem::take(&mut c.out);
        match drain_write(&mut c.stream, &out, &mut c.out_pos) {
            WriteOutcome::Error => {
                c.teardown = Teardown::Abort;
                self.proxy_finalize(c);
                return false;
            }
            WriteOutcome::Partial => c.out = out,
            WriteOutcome::Flushed => {
                c.out = Vec::new();
                c.out_pos = 0;
            }
        }
        if progressed && c.relay.is_none() {
            c.seq = self.next_seq();
            let t = c.config.read_timeout;
            self.wheel.arm(Instant::now(), idx, c.seq, t);
        }
        true
    }

    fn proxy_parse(&mut self, idx: usize, c: &mut ProxyConn) {
        while c.relay.is_none()
            && !c.closing
            && c.results.len() < c.config.max_messages
            && c.pos < c.buf.len()
        {
            let mut r = c.proxy.forward(&c.buf[c.pos..]);
            let i = &r.interpretation;
            let finalizable = c.eof
                || if i.outcome.is_accept() {
                    !(i.repaired_chunked && i.consumed >= c.buf.len() - c.pos)
                } else {
                    !incomplete_reason(i)
                };
            if !finalizable {
                break;
            }
            let consumed = r.interpretation.consumed;
            let rejected = matches!(r.action, ForwardAction::Rejected(_));
            let mut drop_rest = false;

            if let (Some(decision), ForwardAction::Forwarded(bytes)) = (c.config.fault, &r.action) {
                match decision.kind {
                    FaultKind::ConnReset => {
                        let cut = decision.reset_point(bytes.len());
                        r.action = ForwardAction::Forwarded(bytes[..cut].to_vec());
                        drop_rest = true;
                    }
                    FaultKind::GarbleForward => {
                        r.action = ForwardAction::Forwarded(decision.garble(bytes));
                    }
                    FaultKind::StallRead => {
                        r.action = ForwardAction::Forwarded(Vec::new());
                        drop_rest = true;
                    }
                    _ => {}
                }
            }

            match &r.action {
                ForwardAction::Forwarded(bytes) if !bytes.is_empty() => {
                    self.pending_connects.push_back(ConnectIntent::Upstream {
                        owner: idx,
                        addr: c.config.upstream,
                        bytes: bytes.clone(),
                        read_timeout: c.config.read_timeout,
                    });
                    // Suspend the downstream deadline for the relay's
                    // duration, exactly like the blocking hop (which is
                    // blocked inside `relay_upstream` and cannot time the
                    // downstream side out).
                    c.seq = self.next_seq();
                    c.relay = Some(PendingRelay { result: r, consumed, rejected, drop_rest });
                    return;
                }
                ForwardAction::Forwarded(_) => {
                    c.results.push(r);
                    if drop_rest {
                        c.teardown = Teardown::Abort;
                    }
                    if rejected || consumed == 0 || drop_rest {
                        c.closing = true;
                        return;
                    }
                    c.pos += consumed;
                }
                ForwardAction::Rejected(response) => {
                    c.out.extend_from_slice(&response.to_bytes());
                    c.results.push(r);
                    c.closing = true;
                    return;
                }
            }
        }
    }

    fn proxy_relay_done(
        &mut self,
        idx: usize,
        c: &mut ProxyConn,
        result: Result<Vec<u8>, ()>,
    ) -> bool {
        let Some(pending) = c.relay.take() else { return true };
        match result {
            Ok(response) => {
                c.out.extend_from_slice(&response);
                let rejected = pending.rejected;
                let consumed = pending.consumed;
                let drop_rest = pending.drop_rest;
                c.results.push(pending.result);
                if drop_rest {
                    c.teardown = Teardown::Abort;
                }
                if rejected || consumed == 0 || drop_rest {
                    c.closing = true;
                } else {
                    c.pos += consumed;
                    c.seq = self.next_seq();
                    let t = c.config.read_timeout;
                    self.wheel.arm(Instant::now(), idx, c.seq, t);
                    self.proxy_parse(idx, c);
                    if c.relay.is_none()
                        && !c.closing
                        && (c.eof || c.results.len() >= c.config.max_messages)
                    {
                        c.closing = true;
                    }
                }
            }
            Err(()) => {
                c.teardown = Teardown::Abort;
                c.results.push(pending.result);
                self.proxy_finalize(c);
                return false;
            }
        }
        if c.closing {
            return self.proxy_flush_close(c);
        }
        let out = std::mem::take(&mut c.out);
        match drain_write(&mut c.stream, &out, &mut c.out_pos) {
            WriteOutcome::Error => {
                c.teardown = Teardown::Abort;
                self.proxy_finalize(c);
                false
            }
            WriteOutcome::Partial => {
                c.out = out;
                true
            }
            WriteOutcome::Flushed => {
                c.out = Vec::new();
                c.out_pos = 0;
                true
            }
        }
    }

    fn proxy_finalize(&mut self, c: &mut ProxyConn) {
        let log = ProxyConnLog { results: std::mem::take(&mut c.results), teardown: c.teardown };
        self.deliver_proxy_log(c.owner, c.peer, log);
    }

    fn proxy_flush_close(&mut self, c: &mut ProxyConn) -> bool {
        let out = std::mem::take(&mut c.out);
        match drain_write(&mut c.stream, &out, &mut c.out_pos) {
            WriteOutcome::Flushed => {
                self.proxy_finalize(c);
                let _ = c.stream.shutdown(Shutdown::Both);
                false
            }
            WriteOutcome::Partial => {
                c.out = out;
                true
            }
            WriteOutcome::Error => {
                c.teardown = Teardown::Abort;
                self.proxy_finalize(c);
                false
            }
        }
    }

    fn proxy_deadline(&mut self, c: &mut ProxyConn) -> bool {
        if c.relay.is_some() {
            return true; // suspended during a relay; stale by construction
        }
        c.teardown = Teardown::TimedOut;
        self.proxy_finalize(c);
        false
    }

    // -- upstream relay connection ---------------------------------------

    fn upstream_step(&mut self, c: &mut UpstreamConn) -> bool {
        if !c.fin_sent {
            let out = std::mem::take(&mut c.out);
            match drain_write(&mut c.stream, &out, &mut c.out_pos) {
                WriteOutcome::Flushed => {
                    let _ = c.stream.shutdown(Shutdown::Write);
                    c.fin_sent = true;
                }
                WriteOutcome::Partial => c.out = out,
                WriteOutcome::Error => {
                    self.agenda.push_back(Wake::RelayDone(c.owner, Err(())));
                    return false;
                }
            }
        }
        match drain_read(&mut c.stream, &mut c.resp) {
            ReadOutcome::More(_) => true,
            ReadOutcome::Eof => {
                self.agenda.push_back(Wake::RelayDone(c.owner, Ok(std::mem::take(&mut c.resp))));
                false
            }
            ReadOutcome::Error => {
                self.agenda.push_back(Wake::RelayDone(c.owner, Err(())));
                false
            }
        }
    }

    // -- echo connection -------------------------------------------------

    fn echo_step(&mut self, c: &mut EchoConn) -> bool {
        if !c.responded {
            match drain_read(&mut c.stream, &mut c.buf) {
                ReadOutcome::More(_) => return true,
                ReadOutcome::Eof | ReadOutcome::Error => {
                    let response = c.echo.borrow_mut().receive(&c.buf);
                    c.out = response.to_bytes();
                    c.responded = true;
                }
            }
        }
        let out = std::mem::take(&mut c.out);
        match drain_write(&mut c.stream, &out, &mut c.out_pos) {
            WriteOutcome::Flushed => {
                let _ = c.stream.shutdown(Shutdown::Both);
                false
            }
            WriteOutcome::Partial => {
                c.out = out;
                true
            }
            WriteOutcome::Error => false,
        }
    }

    fn echo_deadline(&mut self, c: &mut EchoConn) -> bool {
        // The blocking echo responds with whatever arrived before its
        // read timeout; mirror that.
        if !c.responded {
            let response = c.echo.borrow_mut().receive(&c.buf);
            c.out = response.to_bytes();
            c.responded = true;
        }
        let out = std::mem::take(&mut c.out);
        match drain_write(&mut c.stream, &out, &mut c.out_pos) {
            WriteOutcome::Flushed => {
                let _ = c.stream.shutdown(Shutdown::Both);
                false
            }
            WriteOutcome::Partial => {
                c.out = out;
                true
            }
            WriteOutcome::Error => false,
        }
    }

    // -- client connections ----------------------------------------------

    fn client_step(&mut self, idx: usize, c: &mut ClientConn) -> bool {
        match &mut c.kind {
            ClientKind::Idle { addr } => {
                // Any readiness on an idle pooled connection means the
                // server closed (or errored) it: evict.
                let mut sink = Vec::new();
                match drain_read(&mut c.stream, &mut sink) {
                    ReadOutcome::More(false) => true, // spurious (writable edge)
                    _ => {
                        self.stats.pool_evictions += 1;
                        let addr = *addr;
                        self.drop_idle_entry(addr, idx);
                        false
                    }
                }
            }
            ClientKind::Exchange(_) => self.exchange_step(idx, c),
            ClientKind::Drive(_) => self.drive_step(idx, c),
        }
    }

    fn drop_idle_entry(&mut self, addr: SocketAddr, idx: usize) {
        if let Some(q) = self.warm.get_mut(&addr) {
            q.retain(|(i, _)| *i != idx);
        }
    }

    fn exchange_step(&mut self, idx: usize, c: &mut ClientConn) -> bool {
        let ClientKind::Exchange(state) = &mut c.kind else { return true };
        if !state.fin_sent {
            let out = std::mem::take(&mut state.out);
            match drain_write(&mut c.stream, &out, &mut state.out_pos) {
                WriteOutcome::Flushed => {
                    let _ = c.stream.shutdown(Shutdown::Write);
                    state.fin_sent = true;
                }
                WriteOutcome::Partial => state.out = out,
                WriteOutcome::Error => {
                    return self.exchange_done(c, ExchangeEnd::WriteError);
                }
            }
        }
        let ClientKind::Exchange(state) = &mut c.kind else { return true };
        let read_timeout = state.read_timeout;
        let progressed = match drain_read(&mut c.stream, &mut state.resp) {
            ReadOutcome::More(any) => any,
            // The blocking client treats read errors as EOF.
            ReadOutcome::Eof | ReadOutcome::Error => {
                return self.exchange_done(c, ExchangeEnd::Eof);
            }
        };
        if progressed {
            c.seq = self.next_seq();
            self.wheel.arm(Instant::now(), idx, c.seq, read_timeout);
        }
        true
    }

    fn client_deadline(&mut self, c: &mut ClientConn) -> bool {
        match &mut c.kind {
            ClientKind::Idle { .. } => true,
            ClientKind::Exchange(_) => {
                // Take the exchange to completion with timed_out set.
                self.exchange_complete(c, true);
                false
            }
            ClientKind::Drive(_) => {
                self.drive_complete(c, true);
                false
            }
        }
    }

    fn exchange_done(&mut self, c: &mut ClientConn, end: ExchangeEnd) -> bool {
        let ClientKind::Exchange(state) = &mut c.kind else { return true };
        // Stale pooled connection: the server closed it between claim
        // and use — no bytes, no log, nothing charged. Retry once fresh.
        let log_pending = state.pair.is_some_and(|owner| match c.stream.local_addr() {
            Ok(local) => self.tickets.contains_key(&(owner, local)),
            Err(_) => false,
        });
        if state.reused && !state.retried && state.resp.is_empty() && log_pending {
            if let (Some(owner), Ok(local)) = (state.pair, c.stream.local_addr()) {
                self.tickets.remove(&(owner, local));
            }
            let batch = state.batch;
            let job = state.job;
            let spec = state.spec.clone();
            self.submit_exchange(batch, job, spec, true);
            return false;
        }
        match end {
            ExchangeEnd::WriteError => {
                let err = Some(NetError::io(std::io::Error::other("write failed mid-exchange")));
                self.exchange_complete_with(c, false, err);
            }
            ExchangeEnd::Eof => self.exchange_complete(c, false),
        }
        false
    }

    fn exchange_complete(&mut self, c: &mut ClientConn, timed_out: bool) {
        self.exchange_complete_with(c, timed_out, None);
    }

    fn exchange_complete_with(
        &mut self,
        c: &mut ClientConn,
        timed_out: bool,
        error: Option<NetError>,
    ) {
        let ClientKind::Exchange(state) = &mut c.kind else { return };
        let batch = state.batch;
        let job = state.job;
        // Unregister a still-pending ticket so a late server log lands in
        // the listener's accumulated logs instead of a dead batch slot.
        let mut server_log = None;
        let mut proxy_log = None;
        if let Some(Some(b)) = self.batches.get_mut(batch) {
            server_log = b.pending_server_logs.remove(&job);
            proxy_log = b.pending_proxy_logs.remove(&job);
        }
        let out = ExchangeOutput {
            response: std::mem::take(&mut state.resp),
            timed_out,
            error,
            server_log,
            proxy_log,
            rtt_ns: state.started.elapsed().as_nanos() as u64,
            reused: state.reused,
            retried: state.retried,
        };
        let _ = c.stream.shutdown(Shutdown::Both);
        self.complete(batch, job, JobOutput::Exchange(out));
    }

    fn drive_step(&mut self, idx: usize, c: &mut ClientConn) -> bool {
        let ClientKind::Drive(state) = &mut c.kind else { return true };
        let mut progressed = false;
        loop {
            // Flush whatever is queued.
            let out = std::mem::take(&mut state.out);
            match drain_write(&mut c.stream, &out, &mut state.out_pos) {
                WriteOutcome::Flushed => {
                    state.out = Vec::new();
                    state.out_pos = 0;
                }
                WriteOutcome::Partial => {
                    state.out = out;
                }
                WriteOutcome::Error => {
                    self.drive_complete(c, false);
                    return false;
                }
            }
            // Read and frame responses.
            match drain_read(&mut c.stream, &mut state.resp_buf) {
                ReadOutcome::More(any) => progressed |= any,
                ReadOutcome::Eof | ReadOutcome::Error => {
                    drive_parse(state);
                    self.drive_complete(c, false);
                    return false;
                }
            }
            drive_parse(state);
            if state.completed >= state.requests {
                self.drive_complete(c, false);
                return false;
            }
            let inflight = state.sent - state.completed;
            if inflight == 0 && state.sent < state.requests {
                refill_drive(state);
                continue; // write the fresh batch now
            }
            break;
        }
        if progressed {
            let t = state.read_timeout;
            c.seq = self.next_seq();
            self.wheel.arm(Instant::now(), idx, c.seq, t);
        }
        true
    }

    fn drive_complete(&mut self, c: &mut ClientConn, timed_out: bool) {
        let ClientKind::Drive(state) = &mut c.kind else { return };
        let out = DriveOutput {
            completed: state.completed,
            errors: u64::from(state.completed < state.requests && !timed_out),
            elapsed_ns: state.started.elapsed().as_nanos() as u64,
            rtt_ns: std::mem::take(&mut state.rtts),
            timed_out,
        };
        let batch = state.batch;
        let job = state.job;
        let _ = c.stream.shutdown(Shutdown::Both);
        self.complete(batch, job, JobOutput::Drive(out));
    }

    // -- batch completion ------------------------------------------------

    fn complete(&mut self, batch: usize, job: usize, output: JobOutput) {
        let Some(Some(b)) = self.batches.get_mut(batch) else { return };
        if b.outputs[job].is_none() {
            b.outputs[job] = Some(output);
            b.remaining -= 1;
        }
        self.finish_batch_if_done(batch);
    }

    fn finish_batch_if_done(&mut self, batch: usize) {
        let done = matches!(&self.batches[batch], Some(b) if b.remaining == 0);
        if done {
            if let Some(b) = self.batches[batch].take() {
                let outputs = b
                    .outputs
                    .into_iter()
                    .map(|o| o.unwrap_or(JobOutput::Exchange(ExchangeOutput::default())))
                    .collect();
                let _ = b.done.send(outputs);
            }
            self.free_batches.push(batch);
        }
    }
}

enum ExchangeEnd {
    Eof,
    WriteError,
}

/// Queues the next pipeline window of requests on a drive.
fn refill_drive(state: &mut DriveState) {
    let window = (state.requests - state.sent).min(state.pipeline as u64);
    for _ in 0..window {
        state.out.extend_from_slice(&state.payload);
    }
    state.sent += window;
    if state.pipeline == 1 {
        state.last_send = Instant::now();
    }
}

/// Frames completed responses out of a drive's read buffer.
fn drive_parse(state: &mut DriveState) {
    while let Ok(parsed) = parse_response(&state.resp_buf) {
        state.resp_buf.drain(..parsed.consumed);
        state.completed += 1;
        if state.pipeline == 1 {
            state.rtts.push(state.last_send.elapsed().as_nanos() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// The handle.
// ---------------------------------------------------------------------------

/// Handle to a running event loop. Cloneable operations go through an
/// internal command queue plus a loopback wake byte; dropping the handle
/// shuts the loop down and joins its thread.
#[derive(Debug)]
pub struct Reactor {
    cmds: Arc<Mutex<VecDeque<Cmd>>>,
    wake_tx: TcpStream,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for EventLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoop").field("slots", &self.slab.len()).finish()
    }
}

impl std::fmt::Debug for Cmd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Cmd")
    }
}

impl Reactor {
    /// Starts the loop thread. Fails with a typed error when the target
    /// has no epoll backend (callers fall back to the blocking
    /// transport) or when the wake channel cannot be established.
    pub fn spawn() -> Result<Reactor, NetError> {
        if !sys::supported() {
            return Err(NetError::spawn(std::io::Error::other(
                "epoll reactor unsupported on this target",
            )));
        }
        // Portable in-process wake channel: a loopback TCP pair (no
        // platform-gated socketpair needed outside sys.rs).
        let listener = TcpListener::bind("127.0.0.1:0").map_err(NetError::bind)?;
        let addr = listener.local_addr().map_err(NetError::bind)?;
        let wake_tx = TcpStream::connect(addr).map_err(NetError::connect)?;
        let (wake_rx, _) = listener.accept().map_err(NetError::accept)?;
        drop(listener);
        wake_tx.set_nodelay(true).map_err(NetError::connect)?;
        wake_rx.set_nonblocking(true).map_err(NetError::accept)?;

        let ep = Epoll::new().map_err(NetError::spawn)?;
        ep.add(wake_rx.as_raw_fd(), EPOLLIN | EPOLLET, WAKE_TOKEN).map_err(NetError::spawn)?;

        let cmds: Arc<Mutex<VecDeque<Cmd>>> = Arc::new(Mutex::new(VecDeque::new()));
        let thread = {
            let cmds = Arc::clone(&cmds);
            std::thread::Builder::new()
                .name("hdiff-reactor".to_string())
                .spawn(move || EventLoop::new(ep, wake_rx, cmds).run())
                .map_err(NetError::spawn)?
        };
        Ok(Reactor { cmds, wake_tx, thread: Some(thread) })
    }

    fn send(&self, cmd: Cmd) {
        self.cmds.lock().unwrap_or_else(|e| e.into_inner()).push_back(cmd);
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    /// Hosts an origin server (a behavioral profile) on an ephemeral
    /// loopback port inside the loop. `record: false` drops per-reply
    /// accounting (bench mode — memory stays flat over millions of
    /// requests).
    pub fn add_origin(
        &self,
        profile: ParserProfile,
        config: NetServerConfig,
        record: bool,
    ) -> Result<AsyncListener, NetError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(NetError::bind)?;
        let addr = listener.local_addr().map_err(NetError::bind)?;
        let name = profile.name.clone();
        let server = Server::new(profile);
        let (ack, rx) = channel();
        self.send(Cmd::AddOrigin { listener, server, config, record, name: name.clone(), ack });
        let id = rx.recv().map_err(|_| {
            NetError::spawn(std::io::Error::other("reactor loop gone during add_origin"))
        })?;
        Ok(AsyncListener { name, addr, id })
    }

    /// Hosts a proxy hop inside the loop.
    ///
    /// # Panics
    ///
    /// Panics if `profile` has no proxy behavior configured (same
    /// contract as [`hdiff_servers::Proxy::new`]).
    pub fn add_proxy(
        &self,
        profile: ParserProfile,
        config: NetProxyConfig,
    ) -> Result<AsyncListener, NetError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(NetError::bind)?;
        let addr = listener.local_addr().map_err(NetError::bind)?;
        let name = profile.name.clone();
        let proxy = Proxy::new(profile);
        let (ack, rx) = channel();
        self.send(Cmd::AddProxy { listener, proxy, config, name: name.clone(), ack });
        let id = rx.recv().map_err(|_| {
            NetError::spawn(std::io::Error::other("reactor loop gone during add_proxy"))
        })?;
        Ok(AsyncListener { name, addr, id })
    }

    /// Hosts a recording echo origin inside the loop.
    pub fn add_echo(&self, read_timeout: Duration) -> Result<AsyncListener, NetError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(NetError::bind)?;
        let addr = listener.local_addr().map_err(NetError::bind)?;
        let (ack, rx) = channel();
        self.send(Cmd::AddEcho { listener, read_timeout, ack });
        let id = rx.recv().map_err(|_| {
            NetError::spawn(std::io::Error::other("reactor loop gone during add_echo"))
        })?;
        Ok(AsyncListener { name: "echo".to_string(), addr, id })
    }

    /// Registers `addr` for keep-alive pooling at `depth` pre-opened
    /// connections, and fills the pool.
    pub fn warm(&self, addr: SocketAddr, depth: usize) {
        let (ack, rx) = channel();
        self.send(Cmd::Warm { addr, depth, ack });
        let _ = rx.recv();
    }

    /// Runs `jobs` to completion concurrently and returns their outputs
    /// in submission order. Blocks the calling thread; the loop itself
    /// never blocks on any single job.
    pub fn run(&self, jobs: Vec<Job>) -> Vec<JobOutput> {
        let (done, rx) = channel();
        self.send(Cmd::Submit { jobs, done });
        rx.recv().unwrap_or_default()
    }

    /// Drains connection logs accumulated by an origin listener outside
    /// of paired exchanges.
    pub fn take_server_logs(&self, id: ListenerId) -> Vec<ConnectionLog> {
        let (ack, rx) = channel();
        self.send(Cmd::TakeServerLogs { id, ack });
        rx.recv().unwrap_or_default()
    }

    /// Drains connection logs accumulated by a proxy listener outside of
    /// paired exchanges.
    pub fn take_proxy_logs(&self, id: ListenerId) -> Vec<ProxyConnLog> {
        let (ack, rx) = channel();
        self.send(Cmd::TakeProxyLogs { id, ack });
        rx.recv().unwrap_or_default()
    }

    /// Drains the forwarded messages an echo listener recorded.
    pub fn take_echo_records(&self, id: ListenerId) -> Vec<Vec<u8>> {
        let (ack, rx) = channel();
        self.send(Cmd::TakeEchoRecords { id, ack });
        rx.recv().unwrap_or_default()
    }

    /// Snapshot of the loop-side counters.
    pub fn stats(&self) -> ReactorStats {
        let (ack, rx) = channel();
        self.send(Cmd::Stats { ack });
        rx.recv().unwrap_or_default()
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.send(Cmd::Shutdown);
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeout::{io_timeout, stall_observe_timeout};
    use hdiff_servers::ParserProfile;

    fn exchange(reactor: &Reactor, l: &AsyncListener, bytes: &[u8]) -> ExchangeOutput {
        exchange_with_timeout(reactor, l, bytes, io_timeout())
    }

    fn exchange_with_timeout(
        reactor: &Reactor,
        l: &AsyncListener,
        bytes: &[u8],
        read_timeout: Duration,
    ) -> ExchangeOutput {
        let outs = reactor.run(vec![Job::Exchange(ExchangeSpec {
            addr: l.addr,
            bytes: bytes.to_vec(),
            mode: SendMode::Whole,
            read_timeout,
            pair: Some(l.id),
            warm: false,
        })]);
        match outs.into_iter().next() {
            Some(JobOutput::Exchange(e)) => e,
            other => panic!("expected exchange output, got {other:?}"),
        }
    }

    #[test]
    fn drive_completes_a_pipelined_run() {
        let reactor = Reactor::spawn().unwrap();
        let config = NetServerConfig { max_messages: 1 << 20, ..NetServerConfig::default() };
        let l = reactor.add_origin(ParserProfile::strict("wire"), config, false).unwrap();
        let outs = reactor.run(vec![Job::Drive(DriveSpec {
            addr: l.addr,
            payload: b"GET / HTTP/1.1\r\nHost: h\r\n\r\n".to_vec(),
            requests: 100,
            pipeline: 8,
            read_timeout: io_timeout(),
        })]);
        let d = outs[0].as_drive().expect("drive output");
        assert_eq!(d.completed, 100, "{d:?}");
        assert_eq!(d.errors, 0, "{d:?}");
        assert!(!d.timed_out);
        assert!(d.elapsed_ns > 0);
    }

    #[test]
    fn close_no_reply_fault_delivers_an_abort_log() {
        let reactor = Reactor::spawn().unwrap();
        let config = NetServerConfig {
            fault: Some(ServerFault::CloseNoReply),
            ..NetServerConfig::default()
        };
        let l = reactor.add_origin(ParserProfile::strict("wire"), config, true).unwrap();
        let ex = exchange(&reactor, &l, b"GET / HTTP/1.1\r\nHost: h\r\n\r\n");
        assert!(ex.response.is_empty(), "{ex:?}");
        assert!(!ex.timed_out);
        let log = ex.server_log.expect("paired log");
        assert_eq!(log.teardown, Teardown::Abort);
        assert!(log.replies.is_empty());
    }

    #[test]
    fn stall_fault_never_replies_and_delivers_a_stalled_log() {
        let reactor = Reactor::spawn().unwrap();
        let config =
            NetServerConfig { fault: Some(ServerFault::Stall), ..NetServerConfig::default() };
        let l = reactor.add_origin(ParserProfile::strict("wire"), config, true).unwrap();
        // The exchange client FINs after writing; the stalling server's
        // drain observes it and closes — same as the blocking stack, the
        // client sees EOF with nothing received and the Stalled log is
        // already delivered.
        let ex = exchange_with_timeout(
            &reactor,
            &l,
            b"GET / HTTP/1.1\r\nHost: h\r\n\r\n",
            stall_observe_timeout(),
        );
        assert!(ex.response.is_empty(), "{ex:?}");
        let log = ex.server_log.expect("stall log is pushed before the stall begins");
        assert_eq!(log.teardown, Teardown::Stalled);
    }

    #[test]
    fn deadline_wheel_times_out_a_drive_with_no_response() {
        let reactor = Reactor::spawn().unwrap();
        let config =
            NetServerConfig { fault: Some(ServerFault::Stall), ..NetServerConfig::default() };
        let l = reactor.add_origin(ParserProfile::strict("wire"), config, true).unwrap();
        // A drive keeps the connection open (no FIN), so a never-replying
        // server leaves only the deadline wheel to end the job.
        let outs = reactor.run(vec![Job::Drive(DriveSpec {
            addr: l.addr,
            payload: b"GET / HTTP/1.1\r\nHost: h\r\n\r\n".to_vec(),
            requests: 4,
            pipeline: 1,
            read_timeout: stall_observe_timeout(),
        })]);
        let d = outs[0].as_drive().expect("drive output");
        assert!(d.timed_out, "{d:?}");
        assert_eq!(d.completed, 0, "{d:?}");
        assert!(reactor.stats().deadline_fires >= 1);
    }

    #[test]
    fn batch_outputs_keep_submission_order() {
        let reactor = Reactor::spawn().unwrap();
        let strict = reactor
            .add_origin(ParserProfile::strict("wire"), NetServerConfig::default(), true)
            .unwrap();
        let jobs: Vec<Job> = (0..16)
            .map(|i| {
                Job::Exchange(ExchangeSpec {
                    addr: strict.addr,
                    bytes: format!("GET /{i} HTTP/1.1\r\nHost: h\r\n\r\n").into_bytes(),
                    mode: SendMode::Whole,
                    read_timeout: io_timeout(),
                    pair: Some(strict.id),
                    warm: false,
                })
            })
            .collect();
        let outs = reactor.run(jobs);
        assert_eq!(outs.len(), 16);
        for (i, out) in outs.iter().enumerate() {
            let ex = out.as_exchange().expect("exchange");
            let log = ex.server_log.as_ref().expect("own log");
            assert_eq!(log.replies.len(), 1, "job {i}: {ex:?}");
            let text = String::from_utf8_lossy(&ex.response);
            assert!(text.starts_with("HTTP/1.1 200"), "job {i}: {text}");
        }
    }

    #[test]
    fn segmented_and_truncated_modes_match_the_blocking_client() {
        let reactor = Reactor::spawn().unwrap();
        let l = reactor
            .add_origin(ParserProfile::strict("wire"), NetServerConfig::default(), true)
            .unwrap();
        let bytes = b"GET /seg HTTP/1.1\r\nHost: h\r\n\r\n".to_vec();
        let outs = reactor.run(vec![
            Job::Exchange(ExchangeSpec {
                addr: l.addr,
                bytes: bytes.clone(),
                mode: SendMode::Segmented(vec![4, 9]),
                read_timeout: io_timeout(),
                pair: Some(l.id),
                warm: false,
            }),
            Job::Exchange(ExchangeSpec {
                addr: l.addr,
                bytes: bytes.clone(),
                mode: SendMode::TruncateAt(10),
                read_timeout: io_timeout(),
                pair: Some(l.id),
                warm: false,
            }),
        ]);
        let seg = outs[0].as_exchange().unwrap();
        assert!(String::from_utf8_lossy(&seg.response).starts_with("HTTP/1.1 200"), "{seg:?}");
        let trunc = outs[1].as_exchange().unwrap();
        let log = trunc.server_log.as_ref().expect("log");
        assert_eq!(log.replies.len(), 1, "truncated prefix finalizes at EOF: {log:?}");
    }
}
