//! A slotted deadline wheel for connection timeouts.
//!
//! The blocking transport gives every socket its own `SO_RCVTIMEO`; with
//! thousands of multiplexed connections the reactor needs one shared
//! structure instead. Deadlines are hashed into coarse time slots
//! (16 ms granularity); arming is O(1), cancellation is free (each
//! connection carries a monotonically bumped sequence number, so a stale
//! wheel entry simply fails the sequence check when its slot comes up),
//! and deadlines beyond the wheel horizon are re-armed on expiry until
//! their absolute fire time is reached.
//!
//! Stall detection keeps its existing resolution: the campaign's stall
//! observation timeout is `io_timeout()/12` (≈ 41 ms at the default
//! 500 ms), well above one 16 ms tick.

use std::time::{Duration, Instant};

/// Wheel tick granularity. Deadlines fire up to one tick late, never
/// early.
pub const TICK: Duration = Duration::from_millis(16);

/// Number of slots; `TICK * SLOTS` (~8 s) is the single-rotation
/// horizon. Longer deadlines park in their modulo slot and re-arm.
const SLOTS: usize = 512;

#[derive(Debug, Clone, Copy)]
struct Armed {
    /// Slab index of the connection this deadline belongs to.
    conn: usize,
    /// The connection's deadline sequence at arm time; a mismatch at
    /// fire time means the deadline was cancelled or superseded.
    seq: u64,
    /// Absolute fire time (slots are coarse; this is exact).
    at: Instant,
}

/// The wheel. One per event loop, driven from the loop's own clock
/// reads — it never looks at the wall clock itself.
#[derive(Debug)]
pub struct Wheel {
    slots: Vec<Vec<Armed>>,
    /// The tick index the wheel has advanced through.
    cursor: u64,
    /// Loop start; tick indices are measured from here.
    epoch: Instant,
    armed: usize,
}

impl Wheel {
    pub fn new(now: Instant) -> Wheel {
        Wheel { slots: vec![Vec::new(); SLOTS], cursor: 0, epoch: now, armed: 0 }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.epoch);
        (since.as_millis() / TICK.as_millis()) as u64
    }

    /// Arms a deadline `after` from `now` for connection `conn` with
    /// cancellation sequence `seq`.
    pub fn arm(&mut self, now: Instant, conn: usize, seq: u64, after: Duration) {
        let at = now + after;
        // Never file into a slot the cursor already passed this
        // rotation: a deadline inside the current tick fires next tick.
        let tick = self.tick_of(at).max(self.cursor + 1);
        let slot = (tick % SLOTS as u64) as usize;
        self.slots[slot].push(Armed { conn, seq, at });
        self.armed += 1;
    }

    /// Advances to `now`, invoking `fire(conn, seq)` for every expired
    /// deadline. Entries whose absolute time lies a full rotation ahead
    /// are re-filed instead of fired.
    pub fn advance(&mut self, now: Instant, mut fire: impl FnMut(usize, u64)) {
        let target = self.tick_of(now);
        while self.cursor < target {
            self.cursor += 1;
            let slot = (self.cursor % SLOTS as u64) as usize;
            let drained = std::mem::take(&mut self.slots[slot]);
            for entry in drained {
                if entry.at <= now {
                    self.armed -= 1;
                    fire(entry.conn, entry.seq);
                } else {
                    // A future rotation's entry: park it again.
                    self.slots[slot].push(entry);
                }
            }
        }
    }

    /// Milliseconds until the next armed deadline could fire — the epoll
    /// wait budget. Returns `cap` when nothing is armed.
    pub fn next_timeout_ms(&self, now: Instant, cap: u64) -> u64 {
        if self.armed == 0 {
            return cap;
        }
        let mut best: Option<Instant> = None;
        for slot in &self.slots {
            for entry in slot {
                if best.is_none_or(|b| entry.at < b) {
                    best = Some(entry.at);
                }
            }
        }
        match best {
            Some(at) => {
                let ms = at.saturating_duration_since(now).as_millis() as u64;
                // +1 so the wait strictly covers the deadline tick.
                (ms + 1).min(cap)
            }
            None => cap,
        }
    }

    /// How many deadlines are currently armed (stale entries included
    /// until their slot is swept).
    pub fn armed(&self) -> usize {
        self.armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_the_deadline_not_before() {
        let t0 = Instant::now();
        let mut w = Wheel::new(t0);
        w.arm(t0, 7, 1, Duration::from_millis(50));

        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_millis(20), |c, s| fired.push((c, s)));
        assert!(fired.is_empty(), "fired early");

        w.advance(t0 + Duration::from_millis(80), |c, s| fired.push((c, s)));
        assert_eq!(fired, vec![(7, 1)]);
        assert_eq!(w.armed(), 0);
    }

    #[test]
    fn stale_sequences_are_delivered_for_the_owner_to_ignore() {
        // The wheel itself does not cancel; it hands (conn, seq) to the
        // loop, which compares seq against the connection's current one.
        let t0 = Instant::now();
        let mut w = Wheel::new(t0);
        w.arm(t0, 3, 1, Duration::from_millis(10));
        w.arm(t0, 3, 2, Duration::from_millis(10));
        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_millis(64), |c, s| fired.push((c, s)));
        assert_eq!(fired.len(), 2);
    }

    #[test]
    fn horizon_overflow_refiles_until_due() {
        let t0 = Instant::now();
        let mut w = Wheel::new(t0);
        // Beyond one rotation (512 * 16ms ≈ 8.2s).
        w.arm(t0, 1, 9, Duration::from_millis(12_000));
        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_millis(9_000), |c, s| fired.push((c, s)));
        assert!(fired.is_empty(), "fired a rotation early");
        assert_eq!(w.armed(), 1);
        w.advance(t0 + Duration::from_millis(12_100), |c, s| fired.push((c, s)));
        assert_eq!(fired, vec![(1, 9)]);
    }

    #[test]
    fn next_timeout_tracks_the_earliest_deadline() {
        let t0 = Instant::now();
        let mut w = Wheel::new(t0);
        assert_eq!(w.next_timeout_ms(t0, 100), 100);
        w.arm(t0, 1, 1, Duration::from_millis(40));
        let ms = w.next_timeout_ms(t0, 100);
        assert!((30..=60).contains(&ms), "{ms}");
    }
}
