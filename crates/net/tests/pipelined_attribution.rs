//! Cross-product integration test for pipelined delivery on the wire.
//!
//! Three requests ride one connection, the middle one malformed. For
//! every backend product the per-request response attribution and the
//! consumed-byte accounting on the socket must match what the in-process
//! engine (`Server::handle_stream`) computes for the same byte stream —
//! the core equivalence the TCP transport relies on.

use hdiff_net::{attribute_responses, NetServer, NetServerConfig, WireClient};
use hdiff_servers::products::{backends, ProductId};
use hdiff_servers::Server;

const REQ_A: &[u8] = b"GET /a HTTP/1.1\r\nHost: one.example\r\n\r\n";
// Whitespace before the colon: rejected by strict parsers, tolerated
// (stripped or used) by others — a genuine mid-stream divergence point.
const REQ_BAD: &[u8] = b"GET /b HTTP/1.1\r\nHost : two.example\r\n\r\n";
const REQ_C: &[u8] = b"GET /c HTTP/1.1\r\nHost: three.example\r\n\r\n";

#[test]
fn pipelined_attribution_matches_the_in_process_engine_for_every_backend() {
    let mut stream = Vec::new();
    stream.extend_from_slice(REQ_A);
    stream.extend_from_slice(REQ_BAD);
    stream.extend_from_slice(REQ_C);

    for profile in backends() {
        let name = profile.name.clone();
        let expected = Server::new(profile.clone()).handle_stream(&stream);
        let server = NetServer::spawn(profile, NetServerConfig::default()).unwrap();
        let client = WireClient::new(server.addr());

        let batch = client.pipelined(&[REQ_A, REQ_BAD, REQ_C]).unwrap();
        assert!(!batch.timed_out, "{name}: wire exchange timed out");

        let logs = server.take_logs();
        assert_eq!(logs.len(), 1, "{name}: one connection expected");
        let log = &logs[0];

        // Reply-for-reply equality with the in-process engine.
        assert_eq!(log.replies, expected, "{name}: reply sequence diverged");

        // Consumed-byte accounting: all request bytes arrived, and the
        // engine's consumed offsets are reproduced on the wire.
        assert_eq!(log.bytes_in, stream.len(), "{name}: bytes_in");
        let consumed: Vec<usize> = log.replies.iter().map(|r| r.interpretation.consumed).collect();
        let expected_consumed: Vec<usize> =
            expected.iter().map(|r| r.interpretation.consumed).collect();
        assert_eq!(consumed, expected_consumed, "{name}: consumed accounting");

        // Per-request attribution: one framed response per engine reply,
        // statuses in the same order, and every response byte attributed.
        let expected_statuses: Vec<u16> = expected.iter().map(|r| r.response.status.0).collect();
        assert_eq!(batch.attribution.statuses, expected_statuses, "{name}: attribution statuses");
        assert!(batch.attribution.clean(), "{name}: unattributed trailing bytes");
        assert_eq!(log.bytes_out, batch.raw.len(), "{name}: bytes_out");
    }
}

#[test]
fn strict_backend_stops_answering_after_the_malformed_request() {
    // Sanity-check the scenario actually exercises a mid-stream reject:
    // a strict parser answers request 1, rejects request 2, and never
    // sees request 3.
    let profile = hdiff_servers::products::product(ProductId::Nginx);
    let server = NetServer::spawn(profile, NetServerConfig::default()).unwrap();
    let client = WireClient::new(server.addr());
    let batch = client.pipelined(&[REQ_A, REQ_BAD, REQ_C]).unwrap();
    assert_eq!(batch.attribution.count(), 2, "200 then 400, nothing more");
    assert_eq!(batch.attribution.statuses[0], 200);
    assert_ne!(batch.attribution.statuses[1], 200);

    let attribution = attribute_responses(&batch.raw, 16);
    assert_eq!(attribution, batch.attribution);
}
