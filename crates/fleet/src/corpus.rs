//! The supervisor-written corpus artifact.
//!
//! Workers used to regenerate the entire corpus through
//! [`hdiff_core::HDiff::prepare`] on every spawn — a fixed cost paid per
//! incarnation (including every chaos respawn) that dominated short
//! campaigns (`BENCH_fleet.json` measured ~594% overhead at 4 shards).
//! The supervisor already holds the canonical corpus, so it persists it
//! once into the fleet directory and hands workers `--corpus`; a worker
//! then only rebuilds the grammar for its syntax oracle
//! ([`hdiff_core::HDiff::prepare_with_cases`]) instead of re-running SR
//! extraction and generation.
//!
//! Requests are serialized *structurally* — request-line components,
//! raw header lines, and body each hex-encoded on their own — never as
//! concatenated wire bytes, because malformed requests do not round-trip
//! through a parse (the exact byte shapes under test are the ones
//! parsers disagree on). SR assertions are deliberately not carried:
//! they are only read at summarize time, and the merged fleet summary
//! always comes from the supervisor's canonical corpus, never from a
//! worker's.
//!
//! The format is the same hand-rolled JSON the checkpoint and replay
//! codecs use ([`hdiff_diff::json`]); a worker that finds the artifact
//! missing or unreadable falls back to full regeneration, keeping the
//! fabric's crash tolerance.

use std::io;
use std::path::Path;

use hdiff_diff::json::{push_json_str, Json, Parser};
use hdiff_gen::{Origin, TestCase};
use hdiff_wire::Request;

/// On-disk format version.
const FORMAT_VERSION: u64 = 1;

fn data_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

const HEX: &[u8; 16] = b"0123456789abcdef";

fn nibble(b: u8) -> io::Result<u8> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        _ => Err(data_err("invalid hex field")),
    }
}

fn hex_decode(s: &str) -> io::Result<Vec<u8>> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return Err(data_err("odd-length hex field"));
    }
    s.chunks_exact(2).map(|pair| Ok(nibble(pair[0])? << 4 | nibble(pair[1])?)).collect()
}

/// Hex needs no JSON escaping, so this writes the string literal directly.
fn push_hex(out: &mut String, bytes: &[u8]) {
    out.reserve(bytes.len() * 2 + 2);
    out.push('"');
    for &b in bytes {
        out.push(char::from(HEX[usize::from(b >> 4)]));
        out.push(char::from(HEX[usize::from(b & 0xf)]));
    }
    out.push('"');
}

/// Parses the `Display` form of [`Origin`] back (`sr:<id>`, `abnf`,
/// `catalog:<name>`).
fn parse_origin(s: &str) -> io::Result<Origin> {
    if s == "abnf" {
        return Ok(Origin::Abnf);
    }
    if let Some(id) = s.strip_prefix("sr:") {
        return Ok(Origin::Sr(id.to_string()));
    }
    if let Some(name) = s.strip_prefix("catalog:") {
        return Ok(Origin::Catalog(name.to_string()));
    }
    Err(data_err(format!("unknown case origin {s:?}")))
}

fn write_case(out: &mut String, case: &TestCase) {
    out.push_str(&format!("{{\"uuid\":{},\"origin\":", case.uuid));
    push_json_str(out, &case.origin.to_string());
    out.push_str(",\"note\":");
    push_json_str(out, &case.note);
    out.push_str(",\"method\":");
    push_hex(out, case.request.method_bytes());
    out.push_str(",\"target\":");
    push_hex(out, case.request.target());
    out.push_str(",\"version\":");
    push_hex(out, case.request.version_bytes());
    if case.request.has_raw_request_line() {
        out.push_str(",\"raw_line\":");
        push_hex(out, &case.request.request_line());
    }
    out.push_str(",\"headers\":[");
    for (i, field) in case.request.headers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_hex(out, field.raw());
    }
    out.push_str("],\"body\":");
    push_hex(out, &case.request.body);
    out.push('}');
}

fn read_case(v: &Json) -> io::Result<TestCase> {
    let hex_field = |key: &str| -> io::Result<Vec<u8>> {
        hex_decode(
            v.get(key).and_then(Json::as_str).ok_or_else(|| data_err(format!("case {key}")))?,
        )
    };
    let mut b = Request::builder();
    b.method_raw(hex_field("method")?)
        .target(hex_field("target")?)
        .version_raw(hex_field("version")?)
        .body(hex_field("body")?);
    for raw in v.get("headers").and_then(Json::as_arr).unwrap_or_default() {
        let raw = raw.as_str().ok_or_else(|| data_err("case header"))?;
        b.header_raw(hex_decode(raw)?);
    }
    if v.get("raw_line").is_some() {
        b.raw_request_line(hex_field("raw_line")?);
    }
    Ok(TestCase {
        uuid: v.get("uuid").and_then(Json::as_u64).ok_or_else(|| data_err("case uuid"))?,
        request: b.build(),
        assertions: Vec::new(),
        origin: parse_origin(
            v.get("origin").and_then(Json::as_str).ok_or_else(|| data_err("case origin"))?,
        )?,
        note: v
            .get("note")
            .and_then(Json::as_str)
            .ok_or_else(|| data_err("case note"))?
            .to_string(),
    })
}

/// Serializes the corpus as a JSON document.
pub fn to_json(cases: &[TestCase]) -> String {
    let mut out = format!("{{\"version\":{FORMAT_VERSION},\"cases\":[\n");
    for (i, case) in cases.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        write_case(&mut out, case);
    }
    out.push_str("\n]}\n");
    out
}

/// Parses a corpus written by [`to_json`].
pub fn from_json(bytes: &[u8]) -> io::Result<Vec<TestCase>> {
    let root = Parser::new(bytes).value()?;
    let version = root.get("version").and_then(Json::as_u64).unwrap_or(0);
    if version != FORMAT_VERSION {
        return Err(data_err(format!(
            "corpus artifact format v{version}, this build reads v{FORMAT_VERSION}"
        )));
    }
    root.get("cases")
        .and_then(Json::as_arr)
        .ok_or_else(|| data_err("corpus cases"))?
        .iter()
        .map(read_case)
        .collect()
}

/// Writes the corpus artifact to `path` atomically.
pub fn save(path: &Path, cases: &[TestCase]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, to_json(cases).as_bytes())?;
    std::fs::rename(&tmp, path)
}

/// Loads an artifact written by [`save`].
pub fn load(path: &Path) -> io::Result<Vec<TestCase>> {
    from_json(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_core::{HDiff, HdiffConfig};

    /// The artifact round-trips every field except assertions, which it
    /// drops on purpose.
    fn strip_assertions(mut cases: Vec<TestCase>) -> Vec<TestCase> {
        for c in &mut cases {
            c.assertions.clear();
        }
        cases
    }

    #[test]
    fn quick_corpus_roundtrips_byte_exactly() {
        let cases = HDiff::new(HdiffConfig::quick()).prepare().cases;
        let loaded = from_json(to_json(&cases).as_bytes()).unwrap();
        assert_eq!(loaded, strip_assertions(cases));
    }

    #[test]
    fn malformed_shapes_survive_the_codec() {
        let mut b = Request::builder();
        b.method_raw(b"GE\x00T")
            .target(b"/\xff ")
            .version_raw(b"")
            .header_raw(b"Content-Length : 5".to_vec())
            .header_raw(b"Transfer-Encoding:\x0bchunked".to_vec())
            .body(b"hel\r\nlo".to_vec())
            .raw_request_line(b"GET /?a=b 1.1/HTTP HTTP/1.0".to_vec());
        let case = TestCase {
            uuid: 7,
            request: b.build(),
            assertions: Vec::new(),
            origin: Origin::Catalog("cl-ows".to_string()),
            note: "codec probe".to_string(),
        };
        let loaded = from_json(to_json(std::slice::from_ref(&case)).as_bytes()).unwrap();
        assert_eq!(loaded, vec![case]);
    }

    #[test]
    fn artifact_fed_prepare_matches_full_prepare() {
        let config = HdiffConfig::quick();
        let full = HDiff::new(config.clone()).prepare();
        let slice: Vec<TestCase> = full.cases.iter().take(40).cloned().collect();
        let loaded = from_json(to_json(&full.cases).as_bytes()).unwrap();
        let fed = HDiff::new(config).prepare_with_cases(loaded);
        assert_eq!(fed.cases.len(), full.cases.len());
        // The merge invariant: identical per-case results, so findings,
        // pair matrices, and verdicts agree (SR violations differ by
        // design — assertions do not travel).
        let a = full.engine.run(&slice);
        let b = fed.engine.run(&fed.cases[..slice.len()]);
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.errors, b.errors);
    }
}
