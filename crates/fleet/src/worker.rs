//! The `hdiff worker` process body.
//!
//! A worker is handed a [`ShardSpec`], a checkpoint path, the
//! supervisor's serialized [`HdiffConfig`], and (normally) the
//! supervisor's corpus artifact ([`crate::corpus`]). Loading the
//! artifact skips the per-incarnation SR extraction and generation cost
//! — the worker rebuilds only the grammar its syntax oracle needs
//! ([`HDiff::prepare_with_cases`]) and slices out its shard by corpus
//! index. A missing or unreadable artifact degrades to full
//! regeneration through [`HDiff::prepare`] (deterministic per config,
//! so the records come out identical either way). It then resumes
//! tolerantly from the checkpoint (missing, torn, or stale files fall
//! back to a clean shard restart; see
//! [`hdiff_diff::checkpoint::resume_state`]) and streams the
//! [`crate::heartbeat`] protocol on stdout while it runs.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hdiff_core::HDiff;
use hdiff_core::HdiffConfig;
use hdiff_diff::checkpoint;
use hdiff_diff::{shard_ranges, ChunkProgress, ProgressHook, ShardSpec};

use crate::heartbeat;

/// Everything a worker invocation needs (parsed from the CLI by the
/// `hdiff worker` subcommand).
#[derive(Debug)]
pub struct WorkerOptions {
    /// The shard this process owns.
    pub shard: ShardSpec,
    /// Checkpoint file for the shard (shared across incarnations).
    pub checkpoint: PathBuf,
    /// The campaign configuration, exactly as the supervisor runs it.
    pub config: HdiffConfig,
    /// The supervisor's corpus artifact ([`crate::corpus`]), when one
    /// was shipped; `None` (or a load failure) regenerates instead.
    pub corpus: Option<PathBuf>,
    /// Resume floor: checkpoint generations below this are stale (older
    /// than progress the supervisor already witnessed) and are discarded.
    pub min_generation: u64,
    /// Interval between `hdiff-alive` liveness ticks.
    pub alive_interval: Duration,
    /// After each heartbeat, sleep this long — the chaos drill's kill
    /// window (zero outside drills).
    pub chaos_pause: Duration,
    /// Test hook: print one liveness tick, then hang forever (exercises
    /// the supervisor's silence watchdog).
    pub stall: bool,
}

/// Runs one shard to completion, returning the completed-case count.
///
/// Stdout is the supervisor protocol; human-facing notes go to stderr.
pub fn run_worker(opts: WorkerOptions) -> io::Result<usize> {
    println!("{}", heartbeat::ALIVE);
    if opts.stall {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    // Liveness ticker: covers corpus regeneration (no checkpoints yet)
    // and chunks that outlast the heartbeat interval. Detached — the
    // process exits out from under it when the shard completes.
    let finished = Arc::new(AtomicBool::new(false));
    {
        let finished = Arc::clone(&finished);
        let interval = opts.alive_interval.max(Duration::from_millis(1));
        std::thread::spawn(move || {
            while !finished.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if finished.load(Ordering::Relaxed) {
                    break;
                }
                println!("{}", heartbeat::ALIVE);
            }
        });
    }

    let artifact = opts.corpus.as_ref().and_then(|path| match crate::corpus::load(path) {
        Ok(cases) => Some(cases),
        Err(e) => {
            eprintln!(
                "hdiff worker {}: corpus artifact {} unreadable ({e}); regenerating",
                opts.shard,
                path.display()
            );
            None
        }
    });
    let prepared = match artifact {
        Some(cases) => HDiff::new(opts.config).prepare_with_cases(cases),
        None => HDiff::new(opts.config).prepare(),
    };
    let expected = shard_ranges(prepared.cases.len(), opts.shard.count)
        .into_iter()
        .find(|s| s.index == opts.shard.index);
    if expected != Some(opts.shard) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "{} does not match a corpus of {} cases (config drift between supervisor and worker?)",
                opts.shard,
                prepared.cases.len()
            ),
        ));
    }
    let slice = &prepared.cases[opts.shard.start..opts.shard.end];

    let resume = checkpoint::resume_state(&opts.checkpoint, opts.min_generation);
    if let Some(reason) = &resume.discarded {
        eprintln!("hdiff worker {}: {reason}; restarting the shard clean", opts.shard);
    }

    let mut engine = prepared.engine;
    let chaos_pause = opts.chaos_pause;
    engine.progress = Some(ProgressHook::new(move |p: ChunkProgress| {
        println!("{}", heartbeat::heartbeat_line(p.completed, p.generation));
        if !chaos_pause.is_zero() {
            std::thread::sleep(chaos_pause);
        }
    }));
    let summary = engine.run_resuming(slice, resume, &opts.checkpoint)?;
    finished.store(true, Ordering::Relaxed);
    println!("{}", heartbeat::done_line(summary.cases));
    Ok(summary.cases)
}
