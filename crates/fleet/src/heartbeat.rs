//! The worker → supervisor stdout protocol.
//!
//! One line per event, plain text, so a worker can be driven by hand and
//! its output read in a terminal. Three line shapes:
//!
//! * `hdiff-alive` — liveness tick from a background thread, covering
//!   the corpus-regeneration phase (and long chunks) when no checkpoint
//!   progress exists yet.
//! * `hdiff-hb <completed> <generation>` — emitted after every
//!   checkpoint save: the shard-local completed-case count and the
//!   generation just written. The supervisor feeds the generation back
//!   as the resume floor when it re-dispatches the shard.
//! * `hdiff-done <completed>` — the shard finished; the final checkpoint
//!   holds every record.
//!
//! Anything else (stray prints, future extensions) parses as
//! [`WorkerLine::Other`] and still counts as liveness — an old
//! supervisor never kills a newer worker for talking too much.

/// Liveness tick line.
pub const ALIVE: &str = "hdiff-alive";

const HEARTBEAT: &str = "hdiff-hb";
const DONE: &str = "hdiff-done";

/// One parsed line of worker stdout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerLine {
    /// Liveness tick (no progress information).
    Alive,
    /// Checkpoint saved: shard-local completed count and the generation
    /// just written.
    Heartbeat {
        /// Completed cases in the shard's checkpoint, including resumed.
        completed: usize,
        /// Checkpoint generation just written.
        generation: u64,
    },
    /// The shard finished with this many completed cases.
    Done {
        /// Final completed-case count.
        completed: usize,
    },
    /// Unrecognized output; treated as liveness only.
    Other(String),
}

/// Formats the post-checkpoint heartbeat line.
pub fn heartbeat_line(completed: usize, generation: u64) -> String {
    format!("{HEARTBEAT} {completed} {generation}")
}

/// Formats the completion line.
pub fn done_line(completed: usize) -> String {
    format!("{DONE} {completed}")
}

/// Parses one line of worker stdout. Never fails: malformed lines
/// degrade to [`WorkerLine::Other`].
pub fn parse(line: &str) -> WorkerLine {
    let line = line.trim_end();
    if line == ALIVE {
        return WorkerLine::Alive;
    }
    if let Some(rest) = line.strip_prefix(HEARTBEAT) {
        let mut parts = rest.split_whitespace();
        if let (Some(completed), Some(generation), None) =
            (parts.next(), parts.next(), parts.next())
        {
            if let (Ok(completed), Ok(generation)) = (completed.parse(), generation.parse()) {
                return WorkerLine::Heartbeat { completed, generation };
            }
        }
    }
    if let Some(rest) = line.strip_prefix(DONE) {
        let mut parts = rest.split_whitespace();
        if let (Some(completed), None) = (parts.next(), parts.next()) {
            if let Ok(completed) = completed.parse() {
                return WorkerLine::Done { completed };
            }
        }
    }
    WorkerLine::Other(line.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_roundtrip() {
        assert_eq!(parse(ALIVE), WorkerLine::Alive);
        assert_eq!(
            parse(&heartbeat_line(128, 3)),
            WorkerLine::Heartbeat { completed: 128, generation: 3 }
        );
        assert_eq!(parse(&done_line(512)), WorkerLine::Done { completed: 512 });
    }

    #[test]
    fn malformed_lines_degrade_to_other() {
        for junk in ["", "hdiff-hb", "hdiff-hb 1", "hdiff-hb one 2", "hdiff-done x", "warning: x"] {
            assert!(matches!(parse(junk), WorkerLine::Other(_)), "{junk:?}");
        }
    }
}
