//! Deterministic worker-kill schedule for recovery drills.
//!
//! `hdiff run --fleet-chaos <rate>` makes the supervisor SIGKILL its own
//! workers — the only honest way to exercise the respawn/resume path.
//! Every kill decision is a pure hash of
//! `(campaign seed, shard index, incarnation)`, the same discipline as
//! the runner's fault injector: re-running the campaign replays the
//! identical kill schedule, so a recovery bug reproduces.
//!
//! The *when* of a kill is not scheduled here: the supervisor arms a
//! doomed incarnation with a completed-case threshold one checkpoint
//! interval past what the shard had already saved, and fires when a
//! heartbeat crosses it. That guarantees every killed incarnation banked
//! at least one new checkpoint first, so shard progress is monotonic and
//! a 100% kill rate still terminates.

/// The deterministic kill schedule.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlan {
    seed: u64,
    rate: u8,
}

impl ChaosPlan {
    /// A plan killing roughly `rate`% of worker incarnations (clamped to
    /// 100), scheduled by `seed`.
    pub fn new(seed: u64, rate: u8) -> ChaosPlan {
        ChaosPlan { seed, rate: rate.min(100) }
    }

    /// The no-op plan (rate 0).
    pub fn disabled() -> ChaosPlan {
        ChaosPlan::new(0, 0)
    }

    /// Whether any kill can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.rate > 0
    }

    /// Whether incarnation `incarnation` of shard `shard` is scheduled
    /// to die.
    pub fn kills(&self, shard: u32, incarnation: u32) -> bool {
        if self.rate == 0 {
            return false;
        }
        let key = (u64::from(shard) << 32) | u64::from(incarnation);
        mix(self.seed ^ mix(key ^ 0x464c_4545_5421)) % 100 < u64::from(self.rate)
    }
}

// Same finalizer as the fault injector's decision hash (splitmix64).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_rate_bounded() {
        let plan = ChaosPlan::new(7, 50);
        let again = ChaosPlan::new(7, 50);
        let mut kills = 0u32;
        for shard in 0..8 {
            for inc in 0..32 {
                assert_eq!(plan.kills(shard, inc), again.kills(shard, inc));
                kills += u32::from(plan.kills(shard, inc));
            }
        }
        // 256 rolls at 50%: a wildly skewed count means the hash is broken.
        assert!((64..=192).contains(&kills), "{kills} kills out of 256 at rate 50");
        assert_ne!(
            (0..8).map(|s| ChaosPlan::new(1, 50).kills(s, 0)).collect::<Vec<_>>(),
            (0..8).map(|s| ChaosPlan::new(2, 50).kills(s, 0)).collect::<Vec<_>>(),
            "different seeds must reschedule"
        );
    }

    #[test]
    fn rate_extremes() {
        assert!(!ChaosPlan::disabled().is_enabled());
        for shard in 0..4 {
            for inc in 0..8 {
                assert!(!ChaosPlan::new(9, 0).kills(shard, inc));
                assert!(ChaosPlan::new(9, 100).kills(shard, inc));
                assert!(ChaosPlan::new(9, 200).kills(shard, inc), "rate clamps to 100");
            }
        }
    }
}
