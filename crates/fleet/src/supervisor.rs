//! The fleet supervisor: spawn, watch, recover, merge.
//!
//! The supervisor prepares the campaign once (so it holds the canonical
//! corpus), writes the config to disk for the workers, then dispatches
//! one `hdiff worker` process per shard and enters a single supervision
//! loop:
//!
//! 1. **Watch.** Reader threads forward each worker's stdout lines (the
//!    [`crate::heartbeat`] protocol) over a channel. Any line refreshes
//!    the shard's liveness deadline; heartbeats additionally record the
//!    completed count and checkpoint generation.
//! 2. **Declare dead.** A worker is dead when its process exits before
//!    reporting `done`, *or* when it stays silent past
//!    [`FleetConfig::heartbeat_timeout`] (then the watchdog SIGKILLs it).
//! 3. **Recover.** A dead shard re-dispatches after exponential backoff,
//!    resuming from the orphaned checkpoint — the new worker is handed
//!    the highest generation the supervisor witnessed as a floor, so it
//!    can never resume from a stale file. A torn checkpoint (SIGKILL
//!    mid-save loses to the atomic rename, but disks happen) degrades to
//!    a clean shard restart inside the worker.
//! 4. **Quarantine.** A shard whose failures exhaust
//!    [`FleetConfig::respawn_budget`] becomes a typed
//!    [`ShardError`] in the merged summary; the campaign completes
//!    without it (graceful degradation, the fleet-level analogue of the
//!    runner's per-case quarantine).
//! 5. **Merge.** Per-shard checkpoints are loaded and reassembled in
//!    corpus order through [`hdiff_diff::DiffEngine::summarize_records`],
//!    so the final [`RunSummary`] is identical to a single-process run
//!    regardless of shard count, kill schedule, or resume history.
//!
//! Chaos drills ([`ChaosPlan`]) piggyback on the same loop: a doomed
//! incarnation is armed with a completed-case threshold one checkpoint
//! interval past its resume point and killed when a heartbeat crosses
//! it — guaranteeing every kill happens *after* new progress was banked.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use hdiff_core::{HDiff, HdiffConfig, PipelineReport, PreparedCampaign};
use hdiff_diff::checkpoint;
use hdiff_diff::{
    shard_ranges, CaseRecord, RunSummary, ShardError, ShardErrorKind, ShardSpec, ShardStat,
    ShardTopology,
};

use crate::chaos::ChaosPlan;
use crate::heartbeat::{self, WorkerLine};

/// Supervisor knobs. Everything time-shaped derives from the testbed's
/// shared [`hdiff_net::io_timeout`] so one env var widens the whole
/// stack coherently; carried here as concrete [`Duration`]s because the
/// timeout is cached per process and workers are separate processes.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker processes (>= 1).
    pub shards: u32,
    /// Chaos kill rate in percent (0 disables the drill).
    pub chaos_rate: u8,
    /// Working directory: the shipped config plus one checkpoint file
    /// per shard.
    pub dir: PathBuf,
    /// The binary to spawn with the `worker` subcommand (defaults to the
    /// running executable).
    pub worker_exe: PathBuf,
    /// Silence past this duration declares a worker dead.
    pub heartbeat_timeout: Duration,
    /// Supervision-loop wakeup interval (exits, watchdog, respawns).
    pub poll_interval: Duration,
    /// Worker failures a shard survives before quarantine (chaos kills
    /// are the supervisor's own doing and do not count).
    pub respawn_budget: u32,
    /// Base of the exponential respawn backoff (failure `k` waits
    /// `backoff_base * 2^(k-1)`).
    pub backoff_base: Duration,
    /// Test hook: spawn this `(shard, incarnation)` with `--stall` so it
    /// hangs after one liveness tick (exercises the watchdog).
    pub stall_shard: Option<(u32, u32)>,
    /// Keep the working directory after the run (default: remove it).
    pub keep_dir: bool,
}

impl FleetConfig {
    /// Defaults for `shards` workers under `dir`.
    pub fn new(shards: u32, dir: impl Into<PathBuf>) -> FleetConfig {
        let io = hdiff_net::io_timeout();
        FleetConfig {
            shards: shards.max(1),
            chaos_rate: 0,
            dir: dir.into(),
            worker_exe: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("hdiff")),
            // A worker ticks every timeout/8; 40 timeouts of silence
            // (20s at the 500ms default) is decisively dead, not slow.
            heartbeat_timeout: io * 40,
            poll_interval: io / 20,
            respawn_budget: 5,
            backoff_base: io / 50,
            stall_shard: None,
            keep_dir: false,
        }
    }
}

/// Runs the whole campaign through the sharded fabric: prepare once,
/// supervise the fleet, merge the shards.
pub fn run_fleet(config: &HdiffConfig, fleet: &FleetConfig) -> io::Result<PipelineReport> {
    let prepared = HDiff::new(config.clone()).prepare();
    let summary = supervise(&prepared, config, fleet)?;
    if !fleet.keep_dir {
        std::fs::remove_dir_all(&fleet.dir).ok();
    }
    Ok(prepared.into_report(summary))
}

enum Phase {
    /// Waiting for the respawn backoff to elapse (due instant).
    Pending(Instant),
    Running,
    Done,
    Failed,
}

struct ShardRun {
    spec: ShardSpec,
    ckpt: PathBuf,
    child: Option<Child>,
    /// Spawns so far; the live incarnation id is `incarnations - 1`.
    incarnations: u32,
    /// Crashes + watchdog kills (not chaos) — the budget counter.
    failures: u32,
    last_seen: Instant,
    completed: usize,
    generation: u64,
    /// Armed chaos threshold: kill once a heartbeat reports this many
    /// completed cases.
    kill_at: Option<usize>,
    done_seen: bool,
    chaos_killed: bool,
    watchdog_killed: bool,
    phase: Phase,
    stat: ShardStat,
    error: Option<ShardError>,
}

fn supervise(
    prepared: &PreparedCampaign,
    config: &HdiffConfig,
    fleet: &FleetConfig,
) -> io::Result<RunSummary> {
    std::fs::create_dir_all(&fleet.dir)?;
    let config_path = fleet.dir.join("config.json");
    std::fs::write(&config_path, config.to_json())?;
    // The canonical corpus, persisted once: workers load it instead of
    // re-running SR extraction and generation on every incarnation.
    let corpus_path = fleet.dir.join("corpus.json");
    crate::corpus::save(&corpus_path, &prepared.cases)?;
    let chaos = ChaosPlan::new(config.seed, fleet.chaos_rate);
    let checkpoint_every = config.checkpoint_every.max(1);

    let (tx, rx) = mpsc::channel();
    let mut shards: Vec<ShardRun> = shard_ranges(prepared.cases.len(), fleet.shards)
        .into_iter()
        .map(|spec| ShardRun {
            spec,
            ckpt: fleet.dir.join(format!("shard-{}.json", spec.index)),
            child: None,
            incarnations: 0,
            failures: 0,
            last_seen: Instant::now(),
            completed: 0,
            generation: 0,
            kill_at: None,
            done_seen: false,
            chaos_killed: false,
            watchdog_killed: false,
            phase: Phase::Pending(Instant::now()),
            stat: ShardStat { cases: spec.len(), ..ShardStat::default() },
            error: None,
        })
        .collect();

    loop {
        for s in &mut shards {
            if matches!(s.phase, Phase::Pending(due) if Instant::now() >= due) {
                spawn_worker(s, fleet, &config_path, &corpus_path, &chaos, checkpoint_every, &tx);
            }
        }
        if shards.iter().all(|s| matches!(s.phase, Phase::Done | Phase::Failed)) {
            break;
        }

        match rx.recv_timeout(fleet.poll_interval) {
            Ok(msg) => {
                handle_line(&mut shards, msg);
                while let Ok(msg) = rx.try_recv() {
                    handle_line(&mut shards, msg);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            // Unreachable while we hold `tx`, but never busy-loop.
            Err(mpsc::RecvTimeoutError::Disconnected) => std::thread::sleep(fleet.poll_interval),
        }

        for s in &mut shards {
            if !matches!(s.phase, Phase::Running) {
                continue;
            }
            let Some(child) = s.child.as_mut() else { continue };
            match child.try_wait() {
                Ok(Some(status)) => {
                    s.child = None;
                    if s.done_seen {
                        s.stat.generation = s.generation;
                        s.phase = Phase::Done;
                    } else if s.chaos_killed {
                        // Our own kill: recover immediately, no backoff,
                        // no budget charge.
                        s.phase = Phase::Pending(Instant::now());
                    } else {
                        let kind = if s.watchdog_killed {
                            ShardErrorKind::HeartbeatTimeout
                        } else {
                            ShardErrorKind::Exit
                        };
                        let detail = if s.watchdog_killed {
                            format!("silent for over {:?}", fleet.heartbeat_timeout)
                        } else {
                            format!(
                                "worker exited ({status}) after {}/{} cases",
                                s.completed,
                                s.spec.len()
                            )
                        };
                        note_failure(s, fleet, kind, detail);
                    }
                }
                Ok(None) => {
                    if s.last_seen.elapsed() > fleet.heartbeat_timeout {
                        let _ = child.kill();
                        let _ = child.wait();
                        s.child = None;
                        s.stat.watchdog_kills += 1;
                        s.watchdog_killed = true;
                        note_failure(
                            s,
                            fleet,
                            ShardErrorKind::HeartbeatTimeout,
                            format!("silent for over {:?}", fleet.heartbeat_timeout),
                        );
                    }
                }
                Err(e) => {
                    s.child = None;
                    note_failure(s, fleet, ShardErrorKind::Exit, format!("wait failed: {e}"));
                }
            }
        }
    }

    // Merge: every shard's final (or last orphaned) checkpoint,
    // reassembled in corpus order by the shared summarize path.
    let mut completed: BTreeMap<u64, CaseRecord> = BTreeMap::new();
    let mut shard_errors = Vec::new();
    let mut stats = Vec::new();
    for s in shards {
        if s.ckpt.exists() {
            match checkpoint::load(&s.ckpt) {
                Ok(records) => completed.extend(records),
                Err(e) => {
                    // A finished shard always leaves a readable file
                    // (saves are atomic); a quarantined one may not.
                    if s.error.is_none() {
                        shard_errors.push(ShardError {
                            shard: s.spec.index,
                            respawns: s.stat.respawns,
                            kind: ShardErrorKind::Exit,
                            detail: format!("unreadable final checkpoint: {e}"),
                        });
                    }
                }
            }
        }
        shard_errors.extend(s.error);
        stats.push(s.stat);
    }
    let mut summary = prepared.engine.summarize_records(&prepared.cases, &completed);
    summary.shard_errors = shard_errors;
    summary.topology = ShardTopology { shards: fleet.shards, stats };
    Ok(summary)
}

fn spawn_worker(
    s: &mut ShardRun,
    fleet: &FleetConfig,
    config_path: &Path,
    corpus_path: &Path,
    chaos: &ChaosPlan,
    checkpoint_every: usize,
    tx: &mpsc::Sender<(u32, u32, WorkerLine)>,
) {
    let incarnation = s.incarnations;
    s.incarnations += 1;
    if incarnation > 0 {
        s.stat.respawns += 1;
    }
    s.done_seen = false;
    s.chaos_killed = false;
    s.watchdog_killed = false;
    s.kill_at = None;

    let mut cmd = Command::new(&fleet.worker_exe);
    cmd.arg("worker")
        .arg("--shard")
        .arg(s.spec.to_arg())
        .arg("--checkpoint")
        .arg(&s.ckpt)
        .arg("--config")
        .arg(config_path)
        .arg("--corpus")
        .arg(corpus_path)
        .arg("--min-generation")
        .arg(s.generation.to_string())
        .arg("--alive-interval-ms")
        .arg(((fleet.heartbeat_timeout.as_millis() / 8).max(1)).to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if chaos.kills(s.spec.index, incarnation) {
        // Arm the kill one checkpoint interval past the shard's banked
        // progress — but never when the shard would finish first, so
        // kills taper off and a 100% rate still terminates.
        let kill_at = s.completed + checkpoint_every;
        if kill_at < s.spec.len() {
            s.kill_at = Some(kill_at);
            // The drill's kill window: the worker idles after each
            // heartbeat long enough for the SIGKILL to land.
            cmd.arg("--chaos-pause-ms")
                .arg((fleet.poll_interval.as_millis() * 4).max(10).to_string());
        }
    }
    if fleet.stall_shard == Some((s.spec.index, incarnation)) {
        cmd.arg("--stall");
    }

    match cmd.spawn() {
        Ok(mut child) => {
            if let Some(stdout) = child.stdout.take() {
                let tx = tx.clone();
                let index = s.spec.index;
                std::thread::spawn(move || {
                    for line in BufReader::new(stdout).lines() {
                        let Ok(line) = line else { break };
                        if tx.send((index, incarnation, heartbeat::parse(&line))).is_err() {
                            break;
                        }
                    }
                });
            }
            s.child = Some(child);
            s.last_seen = Instant::now();
            s.phase = Phase::Running;
        }
        Err(e) => note_failure(s, fleet, ShardErrorKind::Spawn, format!("spawn failed: {e}")),
    }
}

fn handle_line(shards: &mut [ShardRun], (index, incarnation, line): (u32, u32, WorkerLine)) {
    let Some(s) = shards.iter_mut().find(|s| s.spec.index == index) else { return };
    // A line from a killed predecessor must not refresh the live
    // incarnation's deadline or roll its progress back.
    if incarnation + 1 != s.incarnations {
        return;
    }
    s.last_seen = Instant::now();
    match line {
        WorkerLine::Alive | WorkerLine::Other(_) => {}
        WorkerLine::Heartbeat { completed, generation } => {
            s.completed = completed;
            s.generation = s.generation.max(generation);
            s.stat.generation = s.generation;
        }
        WorkerLine::Done { completed } => {
            s.completed = completed;
            s.done_seen = true;
        }
    }
    if !s.done_seen {
        if let Some(kill_at) = s.kill_at {
            if s.completed >= kill_at {
                s.kill_at = None;
                if let Some(child) = s.child.as_mut() {
                    let _ = child.kill();
                    s.stat.chaos_kills += 1;
                    s.chaos_killed = true;
                }
            }
        }
    }
}

fn note_failure(s: &mut ShardRun, fleet: &FleetConfig, kind: ShardErrorKind, detail: String) {
    s.failures += 1;
    if s.failures > fleet.respawn_budget {
        s.error = Some(ShardError { shard: s.spec.index, respawns: s.stat.respawns, kind, detail });
        s.phase = Phase::Failed;
        return;
    }
    let k = s.failures.min(16);
    s.stat.backoff_units += 1u64 << k;
    s.phase = Phase::Pending(Instant::now() + fleet.backoff_base * (1u32 << (k - 1)));
}
