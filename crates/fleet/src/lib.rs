//! Crash-tolerant sharded campaign fabric.
//!
//! A long differential campaign should survive more than hostile *cases*
//! (the runner's quarantine) — it should survive hostile *infrastructure*:
//! a worker process segfaulting, being OOM-killed, or silently hanging.
//! This crate runs a campaign as a supervisor plus `N` worker processes,
//! each owning one contiguous corpus-order shard (see
//! [`hdiff_diff::shard`]) under its own checkpoint file, and recovers
//! dead workers deterministically:
//!
//! * [`worker`] — the `hdiff worker` process body: load the supervisor's
//!   [`corpus`] artifact (falling back to full regeneration from the
//!   shipped [`hdiff_core::HdiffConfig`] when it is missing or torn),
//!   slice out the shard, resume tolerantly from the checkpoint, and
//!   stream heartbeats on stdout.
//! * [`corpus`] — the corpus artifact codec: requests serialized
//!   *structurally* (each component hex-encoded), because malformed
//!   requests do not round-trip through concatenated wire bytes.
//! * [`heartbeat`] — the one-line stdout protocol between the two:
//!   `hdiff-alive` liveness ticks, `hdiff-hb <completed> <generation>`
//!   after every checkpoint save, `hdiff-done <completed>` on completion.
//! * [`supervisor`] — spawn, watch (process exit *or* heartbeat silence
//!   past a deadline derived from [`hdiff_net::io_timeout`]), respawn
//!   with exponential backoff from the orphaned checkpoint, quarantine a
//!   shard as a typed [`hdiff_diff::ShardError`] once its budget is
//!   spent, and merge the per-shard checkpoints in corpus order.
//! * [`chaos`] — a pure-hash SIGKILL schedule the supervisor uses to
//!   drill the recovery path (`hdiff run --fleet-chaos <rate>`).
//!
//! The invariant the whole fabric is built around: the merged
//! [`hdiff_diff::RunSummary`] is identical to the single-process run's,
//! regardless of shard count, kill schedule, or resume history.

pub mod chaos;
pub mod corpus;
pub mod heartbeat;
pub mod supervisor;
pub mod worker;

pub use chaos::ChaosPlan;
pub use heartbeat::WorkerLine;
pub use supervisor::{run_fleet, FleetConfig};
pub use worker::{run_worker, WorkerOptions};
