//! RFC 6265 cookie workload — the first non-HTTP [`Protocol`] instance.
//!
//! Cookie handling is a classic semantic-gap surface: the grammar lives
//! in RFC 6265, but deployed parsers descend from three incompatible
//! ancestors (the original Netscape spec, RFC 2109's `$Version`
//! metadata, and RFC 6265's serialize-then-split model), and they
//! disagree on attribute-name case, duplicate-name precedence, quoted
//! values, `Expires` date leniency, and domain matching. Each
//! disagreement is a gap a pair of components can be driven through —
//! cookie shadowing, attribute smuggling via `;` inside quoted values,
//! scope confusion — the same attack shape the paper's HTTP detection
//! models formalize.
//!
//! * [`grammar`] — the RFC 6265 ABNF (`set-cookie-string`,
//!   `cookie-string`) as a closed [`hdiff_abnf::Grammar`].
//! * [`profile`] — behavioral parse profiles in the `ParserProfile`
//!   policy-enum idiom, each modeling a real implementation family.
//! * [`parse`] — per-profile Set-Cookie interpretation, jar semantics,
//!   and inbound `Cookie:` header splitting.
//! * [`detect`] — pairwise detection over profile views, emitting
//!   [`hdiff_diff::Finding`]s with `cookie:<tag>:` evidence mapped onto
//!   the paper's attack classes.
//! * [`cases`] — the line-based case codec and the seed corpus.
//! * [`proto`] — [`CookieProtocol`], wiring it all behind
//!   [`hdiff_diff::Protocol`] so `run_protocol_campaign` drives it like
//!   any other workload.
//!
//! [`Protocol`]: hdiff_diff::Protocol

pub mod cases;
pub mod detect;
pub mod grammar;
pub mod parse;
pub mod profile;
pub mod proto;

pub use cases::{seed_vectors, CookieCase, CookieSeed};
pub use detect::{class_for_tag, detect_cookie_case, TAGS};
pub use grammar::rfc6265_grammar;
pub use parse::{interpret, CookieView, SetOutcome};
pub use profile::{profiles, CookieProfile};
pub use proto::{CookieProtocol, COOKIE_UUID_BASE};
