//! The cookie case codec and seed corpus.
//!
//! A case is an exchange context: the request host and path, the
//! `Set-Cookie` header values a server responded with, and optionally
//! raw inbound `Cookie:` header values to parse directly. The byte form
//! is line-based so the generic minimizer can drop lines and shrink
//! segments without a protocol-specific AST:
//!
//! ```text
//! host: example.com
//! path: /account
//! set: sid=alpha; Path=/; Secure
//! cookie: sid=alpha; lang=en
//! ```

/// One cookie exchange context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CookieCase {
    /// Request host the jar is evaluated against.
    pub host: String,
    /// Request path the jar is evaluated against.
    pub path: String,
    /// `Set-Cookie` header values, in response order.
    pub sets: Vec<String>,
    /// Raw inbound `Cookie` header values.
    pub cookies: Vec<String>,
}

impl Default for CookieCase {
    fn default() -> CookieCase {
        CookieCase {
            host: "example.com".to_string(),
            path: "/".to_string(),
            sets: Vec::new(),
            cookies: Vec::new(),
        }
    }
}

impl CookieCase {
    /// Encodes to the line-based byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        out.push_str("host: ");
        out.push_str(&self.host);
        out.push('\n');
        out.push_str("path: ");
        out.push_str(&self.path);
        out.push('\n');
        for s in &self.sets {
            out.push_str("set: ");
            out.push_str(s);
            out.push('\n');
        }
        for c in &self.cookies {
            out.push_str("cookie: ");
            out.push_str(c);
            out.push('\n');
        }
        out.into_bytes()
    }

    /// Decodes the line-based byte form. Tolerant by design (the
    /// minimizer deletes lines freely): unknown or blank lines are
    /// skipped, missing `host:`/`path:` fall back to the defaults.
    pub fn parse(bytes: &[u8]) -> CookieCase {
        let mut case = CookieCase::default();
        for line in String::from_utf8_lossy(bytes).lines() {
            let line = line.trim();
            if let Some(v) = line.strip_prefix("host:") {
                case.host = v.trim().to_string();
            } else if let Some(v) = line.strip_prefix("path:") {
                case.path = v.trim().to_string();
            } else if let Some(v) = line.strip_prefix("set:") {
                case.sets.push(v.trim().to_string());
            } else if let Some(v) = line.strip_prefix("cookie:") {
                case.cookies.push(v.trim().to_string());
            }
        }
        case
    }
}

/// One seed vector: a stable id, what it demonstrates, and the case.
#[derive(Debug, Clone)]
pub struct CookieSeed {
    /// Stable identifier; campaign origins are `cookie:<id>`.
    pub id: &'static str,
    /// What the vector demonstrates.
    pub description: &'static str,
    /// The exchange context.
    pub case: CookieCase,
}

fn seed(
    id: &'static str,
    description: &'static str,
    host: &str,
    path: &str,
    sets: &[&str],
    cookies: &[&str],
) -> CookieSeed {
    CookieSeed {
        id,
        description,
        case: CookieCase {
            host: host.to_string(),
            path: path.to_string(),
            sets: sets.iter().map(|s| s.to_string()).collect(),
            cookies: cookies.iter().map(|s| s.to_string()).collect(),
        },
    }
}

/// The seed corpus, in canonical order. Each vector targets one (or a
/// couple) of the divergence axes in [`crate::profile`]; `plain-session`
/// is the clean control every profile agrees on.
pub fn seed_vectors() -> Vec<CookieSeed> {
    vec![
        seed(
            "plain-session",
            "well-formed session cookie, no divergence expected",
            "example.com",
            "/",
            &["sid=31d4d96e407aad42; Path=/"],
            &["sid=31d4d96e407aad42"],
        ),
        seed(
            "duplicate-name",
            "same name set twice: last-wins jars ship the second write, first-wins the first",
            "example.com",
            "/",
            &["sid=first-write; Path=/", "sid=second-write; Path=/"],
            &[],
        ),
        seed(
            "quoted-semicolon-value",
            "quoted value containing `; Secure`: quote-aware parsers keep it as value, naive parsers mint a Secure attribute",
            "example.com",
            "/",
            &["token=\"alpha;Secure\"; Path=/"],
            &[],
        ),
        seed(
            "uppercase-attrs",
            "SECURE/HTTPONLY in caps: case-insensitive parsers honor them, canonical-only parsers drop them",
            "example.com",
            "/",
            &["sid=caps; Path=/; SECURE; HTTPONLY"],
            &[],
        ),
        seed(
            "legacy-expires",
            "RFC 850 dashed Expires date: lenient parsers expire the cookie, strict parsers keep a session cookie",
            "example.com",
            "/",
            &["sid=stale; Expires=Sun, 06-Nov-1994 08:49:37 GMT"],
            &[],
        ),
        seed(
            "sloppy-expires",
            "free-form Expires tokens: only the 6265 scanning algorithm extracts a (past) date",
            "example.com",
            "/",
            &["sid=loose; expires=1 Jan 1970 00:00:01"],
            &[],
        ),
        seed(
            "dotted-domain",
            "Domain=.example.com on example.com: 6265 strips the dot and accepts, tail-matchers and host-locked jars reject",
            "example.com",
            "/",
            &["sid=dotted; Domain=.example.com"],
            &[],
        ),
        seed(
            "suffix-domain",
            "Domain=le.com on example.com: naive tail-match accepts a foreign scope everyone else rejects",
            "example.com",
            "/",
            &["sid=hijack; Domain=le.com"],
            &[],
        ),
        seed(
            "parent-domain",
            "Domain=example.com on app.example.com: host-locked jars reject the parent scope",
            "app.example.com",
            "/",
            &["sid=parent; Domain=example.com"],
            &[],
        ),
        seed(
            "version-meta",
            "$Version/$Path in the Cookie header: RFC 2109 parsers consume them as metadata, 6265 parsers see cookies",
            "example.com",
            "/",
            &[],
            &["$Version=1; sid=alpha; $Path=/"],
        ),
        seed(
            "quoted-cookie",
            "DQUOTE-wrapped inbound value: strippers and verbatim parsers forward different bytes",
            "example.com",
            "/",
            &[],
            &["token=\"quoted-value\""],
        ),
        seed(
            "inbound-smuggle",
            "`;` inside a quoted inbound value: naive splitting mints an extra pair",
            "example.com",
            "/",
            &[],
            &["a=\"b;admin=true\""],
        ),
        seed(
            "kitchen-sink",
            "combined duplicate + caps attribute + legacy metadata (minimizer exercise)",
            "example.com",
            "/account",
            &[
                "sid=first-write; Path=/; SECURE",
                "sid=second-write; Path=/",
                "lang=en-US; Max-Age=3600",
            ],
            &["$Version=1; sid=first-write"],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_every_seed() {
        for s in seed_vectors() {
            let bytes = s.case.to_bytes();
            assert_eq!(CookieCase::parse(&bytes), s.case, "{}", s.id);
        }
    }

    #[test]
    fn parse_tolerates_garbage_and_missing_context() {
        let case = CookieCase::parse(b"junk\n\nset: a=b\nwhatever: x\n");
        assert_eq!(case.host, "example.com");
        assert_eq!(case.path, "/");
        assert_eq!(case.sets, vec!["a=b".to_string()]);
        assert!(case.cookies.is_empty());
    }

    #[test]
    fn seed_ids_are_unique() {
        let seeds = seed_vectors();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }
}
