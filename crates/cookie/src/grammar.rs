//! The RFC 6265 cookie grammar as a closed ABNF [`Grammar`].
//!
//! `set-cookie-string` / `cookie-pair` / `cookie-av` follow §4.1.1 and
//! `cookie-string` follows §4.2.1. `token` is imported from RFC 2616 the
//! way RFC 6265 does (spelled here as the RFC 7230 `tchar` set, which is
//! the same character class), and `sane-cookie-date` is the RFC 1123
//! fixed-format date the section requires servers to emit — the *lenient*
//! §5.1.1 parsing algorithm is deliberately not a grammar and lives in
//! [`crate::parse`] as profile behavior.

use hdiff_abnf::{parser, Grammar};

/// The ABNF rule text for the cookie surface.
pub const RFC6265_ABNF: &str = concat!(
    "set-cookie-string = cookie-pair *( \";\" SP cookie-av )\n",
    "cookie-pair = cookie-name \"=\" cookie-value\n",
    "cookie-name = token\n",
    "cookie-value = *cookie-octet / ( DQUOTE *cookie-octet DQUOTE )\n",
    "cookie-octet = %x21 / %x23-2B / %x2D-3A / %x3C-5B / %x5D-7E\n",
    "token = 1*tchar\n",
    "tchar = \"!\" / \"#\" / \"$\" / \"%\" / \"&\" / \"'\" / \"*\" / \"+\" / \"-\" / \".\" /\n",
    "        \"^\" / \"_\" / \"`\" / \"|\" / \"~\" / DIGIT / ALPHA\n",
    "cookie-av = expires-av / max-age-av / domain-av / path-av / secure-av /\n",
    "            httponly-av / extension-av\n",
    "expires-av = \"Expires=\" sane-cookie-date\n",
    "sane-cookie-date = day-name \",\" SP 2DIGIT SP month SP 4DIGIT SP\n",
    "                   2DIGIT \":\" 2DIGIT \":\" 2DIGIT SP \"GMT\"\n",
    "day-name = \"Mon\" / \"Tue\" / \"Wed\" / \"Thu\" / \"Fri\" / \"Sat\" / \"Sun\"\n",
    "month = \"Jan\" / \"Feb\" / \"Mar\" / \"Apr\" / \"May\" / \"Jun\" /\n",
    "        \"Jul\" / \"Aug\" / \"Sep\" / \"Oct\" / \"Nov\" / \"Dec\"\n",
    "max-age-av = \"Max-Age=\" [ \"-\" ] 1*DIGIT\n",
    "domain-av = \"Domain=\" domain-value\n",
    "domain-value = [ \".\" ] label *( \".\" label )\n",
    "label = 1*( ALPHA / DIGIT / \"-\" )\n",
    "path-av = \"Path=\" av-octets\n",
    "secure-av = \"Secure\"\n",
    "httponly-av = \"HttpOnly\"\n",
    "extension-av = av-octets\n",
    "av-octets = *av-octet\n",
    "av-octet = %x20-3A / %x3C-7E\n",
    "cookie-string = cookie-pair *( \";\" SP cookie-pair )\n",
);

/// Parses [`RFC6265_ABNF`] into a closed grammar.
pub fn rfc6265_grammar() -> Grammar {
    let rules = parser::parse_rulelist(RFC6265_ABNF).expect("rfc6265 abnf parses");
    Grammar::from_rules("rfc6265", rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_abnf::matcher;

    #[test]
    fn grammar_is_closed() {
        let g = rfc6265_grammar();
        assert!(g.undefined_references().is_empty(), "{:?}", g.undefined_references());
        assert!(g.get("set-cookie-string").is_some());
        assert!(g.get("cookie-string").is_some());
    }

    #[test]
    fn matches_canonical_set_cookie_strings() {
        let g = rfc6265_grammar();
        for ok in [
            "SID=31d4d96e407aad42",
            "SID=31d4d96e407aad42; Path=/; Secure; HttpOnly",
            "SID=31d4d96e407aad42; Domain=.example.com",
            "lang=en-US; Expires=Wed, 09 Jun 2021 10:18:14 GMT",
            "lang=en-US; Max-Age=3600",
            "token=\"quoted\"; Path=/",
        ] {
            assert!(matcher::matches(&g, "set-cookie-string", ok.as_bytes()).is_match(), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_set_cookie_strings() {
        let g = rfc6265_grammar();
        for bad in [
            "",             // no cookie-pair
            "=value",       // empty cookie-name
            "a=b;; Secure", // empty av + missing SP
            "a=b; Secure;", // trailing separator
            "a=sp ace",     // SP is not a cookie-octet
            "a=semi;colon", // bare av without the "; " separator
        ] {
            assert!(!matcher::matches(&g, "set-cookie-string", bad.as_bytes()).is_match(), "{bad}");
        }
    }

    #[test]
    fn matches_cookie_strings() {
        let g = rfc6265_grammar();
        assert!(
            matcher::matches(&g, "cookie-string", b"SID=31d4d96e407aad42; lang=en-US").is_match()
        );
        assert!(matcher::matches(&g, "cookie-string", b"$Version=1; sid=a").is_match());
        assert!(!matcher::matches(&g, "cookie-string", b"SID=31d4;lang=en").is_match());
    }
}
