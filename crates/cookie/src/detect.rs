//! Cookie-gap detection models.
//!
//! Pairwise over profile views, the same shape as the HTTP detectors:
//! a gap exists when two components in one deployment would disagree
//! about the same cookie bytes. Each divergence gets a stable tag in
//! the finding evidence (`cookie:<tag>: …`) and maps onto the paper's
//! attack classes by consequence:
//!
//! * `shadow-precedence`, `version-legacy`, `quoted-value` → **HoT**
//!   shape: two components bind the same request to different
//!   identities (session fixation / cookie shadowing).
//! * `attr-smuggle` → **HRS** shape: bytes one side treats as data are
//!   control (an attribute or an extra pair) on the other.
//! * `attr-case`, `domain-scope`, `expires-leniency` → **CPDoS** shape:
//!   the components disagree about whether a cookie exists/applies at
//!   all, so a cache or gateway keyed on one view poisons the other.
//!
//! Culprit attribution is policy-derived: for every tag, RFC 6265 picks
//! a side, so the profile whose policy deviates from §5 is the culprit.

use std::collections::BTreeSet;

use hdiff_diff::Finding;
use hdiff_gen::AttackClass;

use crate::parse::CookieView;
use crate::profile::{
    AttrCase, CookieProfile, DollarNames, DomainMatch, Duplicates, ExpiresDates, QuotedValues,
    ValueSplit,
};

/// Every divergence-class tag the cookie models emit.
pub const TAGS: [&str; 7] = [
    "shadow-precedence",
    "attr-smuggle",
    "attr-case",
    "domain-scope",
    "expires-leniency",
    "version-legacy",
    "quoted-value",
];

/// Attack class a tag maps to, `None` for unknown tags.
pub fn class_for_tag(tag: &str) -> Option<AttackClass> {
    match tag {
        "shadow-precedence" | "version-legacy" | "quoted-value" => Some(AttackClass::Hot),
        "attr-smuggle" => Some(AttackClass::Hrs),
        "attr-case" | "domain-scope" | "expires-leniency" => Some(AttackClass::Cpdos),
        _ => None,
    }
}

/// Which of the pair deviates from RFC 6265 for a given tag.
fn culprits_for(tag: &str, a: &CookieProfile, b: &CookieProfile) -> BTreeSet<String> {
    let deviates = |p: &CookieProfile| match tag {
        "shadow-precedence" => p.duplicates == Duplicates::FirstWins,
        "attr-smuggle" => p.split == ValueSplit::QuoteAware,
        "attr-case" => p.attr_case == AttrCase::CanonicalOnly,
        "domain-scope" => p.domain != DomainMatch::Rfc6265,
        "expires-leniency" => p.expires == ExpiresDates::Rfc1123Only,
        "version-legacy" => p.dollar == DollarNames::Rfc2109Meta,
        "quoted-value" => p.quotes == QuotedValues::Strip,
        _ => false,
    };
    [a, b].iter().filter(|p| deviates(p)).map(|p| p.name.to_string()).collect()
}

fn strip_quotes(v: &str) -> &str {
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        &v[1..v.len() - 1]
    } else {
        v
    }
}

/// Non-`$` pair names of an inbound view, in order, deduplicated.
fn inbound_names(view: &CookieView) -> Vec<&str> {
    let mut names = Vec::new();
    for (n, _) in &view.inbound {
        if !n.starts_with('$') && !names.contains(&n.as_str()) {
            names.push(n.as_str());
        }
    }
    names
}

struct PairDetector<'a> {
    uuid: u64,
    origin: &'a str,
    pa: &'a CookieProfile,
    pb: &'a CookieProfile,
    a: &'a CookieView,
    b: &'a CookieView,
    emitted: BTreeSet<&'static str>,
    out: Vec<Finding>,
}

impl<'a> PairDetector<'a> {
    /// At most one finding per tag per pair: the first, strongest
    /// witness wins, matching how the HTTP detectors dedupe.
    fn emit(&mut self, tag: &'static str, detail: String) {
        if !self.emitted.insert(tag) {
            return;
        }
        let Some(class) = class_for_tag(tag) else { return };
        self.out.push(Finding {
            class,
            uuid: self.uuid,
            origin: self.origin.to_string(),
            front: Some(self.a.profile.to_string()),
            back: Some(self.b.profile.to_string()),
            culprits: culprits_for(tag, self.pa, self.pb),
            evidence: format!("cookie:{tag}: {detail}"),
        });
    }

    fn check_set_lines(&mut self) {
        for (k, (oa, ob)) in self.a.sets.iter().zip(self.b.sets.iter()).enumerate() {
            if oa.stored != ob.stored {
                let (kept, dropped, why) = if oa.stored {
                    (self.a.profile, self.b.profile, ob.reason)
                } else {
                    (self.b.profile, self.a.profile, oa.reason)
                };
                match why {
                    Some("expired") => self.emit(
                        "expires-leniency",
                        format!(
                            "set-cookie #{k} `{}`: {dropped} expired it, {kept} kept a live cookie",
                            oa.name
                        ),
                    ),
                    Some("domain-mismatch") => self.emit(
                        "domain-scope",
                        format!(
                            "set-cookie #{k} `{}`: {kept} stored it for this host, {dropped} rejected the Domain",
                            oa.name
                        ),
                    ),
                    _ => {}
                }
                continue;
            }
            if !oa.stored {
                continue;
            }
            if oa.value != ob.value {
                if strip_quotes(&oa.value) == strip_quotes(&ob.value) {
                    self.emit(
                        "quoted-value",
                        format!(
                            "set-cookie #{k} `{}`: stored values differ only by DQUOTE stripping ({:?} vs {:?})",
                            oa.name, oa.value, ob.value
                        ),
                    );
                } else if oa.value.contains(';') != ob.value.contains(';') {
                    self.emit(
                        "attr-smuggle",
                        format!(
                            "set-cookie #{k} `{}`: one side keeps `;`-bytes as value ({:?} vs {:?})",
                            oa.name, oa.value, ob.value
                        ),
                    );
                }
            }
            if oa.attrs != ob.attrs {
                if oa.value.contains(';') || ob.value.contains(';') {
                    self.emit(
                        "attr-smuggle",
                        format!(
                            "set-cookie #{k} `{}`: attribute sets diverge across a quoted `;` ({:?} vs {:?})",
                            oa.name, oa.attrs, ob.attrs
                        ),
                    );
                } else {
                    self.emit(
                        "attr-case",
                        format!(
                            "set-cookie #{k} `{}`: recognized attributes differ ({:?} vs {:?})",
                            oa.name, oa.attrs, ob.attrs
                        ),
                    );
                }
            }
        }
    }

    fn check_jars(&mut self) {
        for (name, va) in &self.a.jar {
            let Some((_, vb)) = self.b.jar.iter().find(|(n, _)| n == name) else { continue };
            if va == vb {
                continue;
            }
            // Only a precedence gap when the per-line parses agreed and
            // the name was written more than once — otherwise the value
            // difference is a quote/split gap reported above.
            let writes: Vec<(&str, &str)> = self
                .a
                .sets
                .iter()
                .zip(self.b.sets.iter())
                .filter(|(oa, _)| oa.name == *name)
                .map(|(oa, ob)| (oa.value.as_str(), ob.value.as_str()))
                .collect();
            if writes.len() >= 2 && writes.iter().all(|(x, y)| x == y) {
                self.emit(
                    "shadow-precedence",
                    format!(
                        "jar `{name}`: duplicate writes resolve differently ({:?} vs {:?})",
                        va, vb
                    ),
                );
            }
        }
    }

    fn check_inbound(&mut self) {
        // RFC 2109 `$` metadata consumed on one side only.
        let dollar_a: Vec<&String> =
            self.a.inbound.iter().map(|(n, _)| n).filter(|n| n.starts_with('$')).collect();
        let dollar_b: Vec<&String> =
            self.b.inbound.iter().map(|(n, _)| n).filter(|n| n.starts_with('$')).collect();
        if dollar_a != dollar_b && (!self.a.meta.is_empty() || !self.b.meta.is_empty()) {
            self.emit(
                "version-legacy",
                format!(
                    "cookie header: `$` names are cookies on one side, metadata on the other ({dollar_a:?} vs {dollar_b:?})"
                ),
            );
        }
        // A pair minted (or swallowed) by quote-unaware splitting.
        let names_a = inbound_names(self.a);
        let names_b = inbound_names(self.b);
        if names_a != names_b {
            self.emit(
                "attr-smuggle",
                format!("cookie header: pair names diverge ({names_a:?} vs {names_b:?})"),
            );
        }
        // Same pair, different forwarded bytes.
        for (name, va) in &self.a.inbound {
            let Some((_, vb)) = self.b.inbound.iter().find(|(n, _)| n == name) else { continue };
            if va == vb {
                continue;
            }
            if strip_quotes(va) == strip_quotes(vb) {
                self.emit(
                    "quoted-value",
                    format!(
                        "cookie header `{name}`: forwarded values differ only by DQUOTE stripping ({va:?} vs {vb:?})"
                    ),
                );
            } else {
                self.emit(
                    "attr-smuggle",
                    format!(
                        "cookie header `{name}`: forwarded values diverge at a quoted `;` ({va:?} vs {vb:?})"
                    ),
                );
            }
        }
    }
}

/// Diffs every profile pair's views of one case.
///
/// `profiles` and `views` are parallel (one view per profile, same
/// order); findings come out in pair order `(i, j)` with `i < j`, so
/// the result is deterministic for a given case.
pub fn detect_cookie_case(
    uuid: u64,
    origin: &str,
    profiles: &[CookieProfile],
    views: &[CookieView],
) -> Vec<Finding> {
    assert_eq!(profiles.len(), views.len(), "one view per profile");
    let mut out = Vec::new();
    for i in 0..views.len() {
        for j in i + 1..views.len() {
            let mut d = PairDetector {
                uuid,
                origin,
                pa: &profiles[i],
                pb: &profiles[j],
                a: &views[i],
                b: &views[j],
                emitted: BTreeSet::new(),
                out: Vec::new(),
            };
            d.check_set_lines();
            d.check_jars();
            d.check_inbound();
            out.extend(d.out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::seed_vectors;
    use crate::parse::interpret;
    use crate::profile::profiles;

    fn run(id: &str) -> Vec<Finding> {
        let seed = seed_vectors().into_iter().find(|s| s.id == id).unwrap();
        let ps = profiles();
        let views: Vec<CookieView> = ps.iter().map(|p| interpret(p, &seed.case)).collect();
        detect_cookie_case(1, &format!("cookie:{id}"), &ps, &views)
    }

    fn tags(findings: &[Finding]) -> BTreeSet<String> {
        findings
            .iter()
            .filter_map(|f| {
                let rest = f.evidence.strip_prefix("cookie:")?;
                Some(rest[..rest.find(':')?].to_string())
            })
            .collect()
    }

    #[test]
    fn control_seed_is_clean() {
        assert!(run("plain-session").is_empty());
    }

    #[test]
    fn each_targeted_seed_hits_its_tag() {
        for (id, tag) in [
            ("duplicate-name", "shadow-precedence"),
            ("quoted-semicolon-value", "attr-smuggle"),
            ("uppercase-attrs", "attr-case"),
            ("legacy-expires", "expires-leniency"),
            ("dotted-domain", "domain-scope"),
            ("version-meta", "version-legacy"),
            ("quoted-cookie", "quoted-value"),
            ("inbound-smuggle", "attr-smuggle"),
        ] {
            assert!(
                tags(&run(id)).contains(tag),
                "{id} should produce {tag}: {:?}",
                tags(&run(id))
            );
        }
    }

    #[test]
    fn findings_carry_pair_shape_and_policy_culprits() {
        let findings = run("duplicate-name");
        assert!(!findings.is_empty());
        for f in &findings {
            assert!(f.is_pair());
            assert!(f.evidence.starts_with("cookie:shadow-precedence:"), "{}", f.evidence);
            // RFC 6265 mandates last-wins, so the first-wins side is at fault.
            for c in &f.culprits {
                assert!(
                    ["servlet-jar", "proxy-gateway", "rfc2109-agent"].contains(&c.as_str()),
                    "{c}"
                );
            }
            assert_eq!(f.class, AttackClass::Hot);
        }
    }

    #[test]
    fn classes_map_by_consequence() {
        assert_eq!(class_for_tag("attr-smuggle"), Some(AttackClass::Hrs));
        assert_eq!(class_for_tag("domain-scope"), Some(AttackClass::Cpdos));
        assert_eq!(class_for_tag("shadow-precedence"), Some(AttackClass::Hot));
        assert_eq!(class_for_tag("nonsense"), None);
        for tag in TAGS {
            assert!(class_for_tag(tag).is_some(), "{tag}");
        }
    }
}
