//! [`CookieProtocol`] — the cookie workload behind [`Protocol`].
//!
//! This is the proof that the campaign core is protocol-generic: no
//! HTTP machinery anywhere, yet `run_protocol_campaign` drives the seed
//! corpus through the profile matrix, merges findings deterministically,
//! and promotes minimized protocol-keyed replay bundles that
//! [`hdiff_diff::ReplayBundle::replay_protocol`] re-verifies.

use hdiff_diff::{Finding, Fnv, ProtoCase, ProtoExecution, ProtoView, Protocol};

use crate::cases::{seed_vectors, CookieCase};
use crate::detect::detect_cookie_case;
use crate::parse::{interpret, CookieView};
use crate::profile::{profiles, CookieProfile};

/// Uuid base for cookie campaign cases, distinct from every HTTP
/// corpus (h1 catalog 9000s, h2 0xd2…, fuzz 0xfa…, h1-protocol 0x48…).
pub const COOKIE_UUID_BASE: u64 = 0xc001_0000_0000_0000;

/// RFC 6265 cookies as a differential workload over the profile matrix.
#[derive(Debug)]
pub struct CookieProtocol {
    profiles: Vec<CookieProfile>,
    grammar: hdiff_abnf::Grammar,
}

impl CookieProtocol {
    /// The standard eight-profile matrix with the RFC 6265 grammar.
    pub fn standard() -> CookieProtocol {
        CookieProtocol { profiles: profiles(), grammar: crate::grammar::rfc6265_grammar() }
    }

    /// The profile matrix behind this instance.
    pub fn profiles(&self) -> &[CookieProfile] {
        &self.profiles
    }

    fn views(&self, case: &CookieCase) -> Vec<CookieView> {
        self.profiles.iter().map(|p| interpret(p, case)).collect()
    }
}

/// FNV-1a digest of everything observable in one profile's view.
fn digest_view(v: &CookieView) -> u64 {
    let mut h = Fnv::new();
    for o in &v.sets {
        h.write(o.name.as_bytes());
        h.write(o.value.as_bytes());
        for a in &o.attrs {
            h.write(a.as_bytes());
        }
        h.write_u64(u64::from(o.stored));
        h.write(o.reason.unwrap_or("").as_bytes());
    }
    h.write(v.header.as_bytes());
    for (n, val) in v.inbound.iter().chain(v.meta.iter()) {
        h.write(n.as_bytes());
        h.write(val.as_bytes());
    }
    h.0
}

/// Splits a case line into owned `(prefix, value)` when it is a
/// header-value line the minimizer may rewrite.
fn split_header_line(line: &str) -> Option<(String, String)> {
    let (prefix, value) = line.split_once(':')?;
    matches!(prefix, "set" | "cookie").then(|| (prefix.to_string(), value.to_string()))
}

/// The divergence tag of a cookie finding (`cookie:<tag>: …` evidence).
fn evidence_tag(f: &Finding) -> Option<String> {
    let rest = f.evidence.strip_prefix("cookie:")?;
    Some(rest[..rest.find(':')?].to_string())
}

impl Protocol for CookieProtocol {
    fn name(&self) -> &'static str {
        "cookie"
    }

    fn uuid_base(&self) -> u64 {
        COOKIE_UUID_BASE
    }

    fn grammars(&self) -> Vec<(String, hdiff_abnf::Grammar)> {
        vec![("rfc6265".to_string(), self.grammar.clone())]
    }

    fn seed_cases(&self) -> Vec<ProtoCase> {
        seed_vectors()
            .into_iter()
            .map(|s| ProtoCase {
                id: s.id.to_string(),
                description: s.description.to_string(),
                bytes: s.case.to_bytes(),
            })
            .collect()
    }

    fn execute(&self, uuid: u64, origin: &str, bytes: &[u8]) -> ProtoExecution {
        let case = CookieCase::parse(bytes);
        let views = self.views(&case);
        let findings = detect_cookie_case(uuid, origin, &self.profiles, &views);
        let digests =
            views.iter().map(|v| (format!("cookie:{}", v.profile), digest_view(v))).collect();
        let proto_views = views
            .iter()
            .map(|v| ProtoView {
                view: v.profile.to_string(),
                accepted: v.sets.iter().all(|o| o.stored),
                status: 0,
                metrics: vec![
                    ("jar".to_string(), v.header.clone()),
                    ("stored".to_string(), v.jar.len().to_string()),
                    (
                        "inbound".to_string(),
                        v.inbound
                            .iter()
                            .map(|(n, val)| format!("{n}={val}"))
                            .collect::<Vec<_>>()
                            .join("; "),
                    ),
                    ("meta".to_string(), v.meta.len().to_string()),
                ],
            })
            .collect();
        hdiff_obs::count("cookie.exec.cases", 1);
        ProtoExecution { views: proto_views, findings, digests }
    }

    fn finding_tag(&self, f: &Finding) -> Option<String> {
        evidence_tag(f)
    }

    fn minimize(&self, bytes: &[u8], target: &Finding) -> Vec<u8> {
        let Some(tag) = evidence_tag(target) else { return bytes.to_vec() };
        let reproduces = |cand: &[u8]| {
            self.execute(target.uuid, &target.origin, cand).findings.iter().any(|f| {
                f.class == target.class
                    && f.front == target.front
                    && f.back == target.back
                    && evidence_tag(f).as_deref() == Some(tag.as_str())
            })
        };
        if !reproduces(bytes) {
            return bytes.to_vec();
        }

        let mut lines: Vec<String> =
            String::from_utf8_lossy(bytes).lines().map(|l| l.to_string()).collect();
        let encode = |ls: &[String]| {
            let mut s = ls.join("\n");
            s.push('\n');
            s.into_bytes()
        };

        let mut budget = 512usize;
        loop {
            let mut improved = false;

            // Pass 1: drop whole lines.
            let mut i = 0;
            while i < lines.len() && budget > 0 {
                let mut cand = lines.clone();
                cand.remove(i);
                budget -= 1;
                if reproduces(&encode(&cand)) {
                    lines = cand;
                    improved = true;
                } else {
                    i += 1;
                }
            }

            // Pass 2: drop `;`-segments inside header-value lines.
            for i in 0..lines.len() {
                let Some((prefix, value)) = split_header_line(&lines[i]) else { continue };
                let mut segs: Vec<String> = value.split(';').map(|s| s.to_string()).collect();
                let mut j = 0;
                while segs.len() > 1 && j < segs.len() && budget > 0 {
                    let mut cand_segs = segs.clone();
                    cand_segs.remove(j);
                    let mut cand = lines.clone();
                    cand[i] = format!("{prefix}:{}", cand_segs.join(";"));
                    budget -= 1;
                    if reproduces(&encode(&cand)) {
                        segs = cand_segs;
                        lines = cand;
                        improved = true;
                    } else {
                        j += 1;
                    }
                }
            }

            // Pass 3: halve pair values inside segments (one shrink
            // per line per fixpoint round).
            for i in 0..lines.len() {
                let Some((prefix, value)) = split_header_line(&lines[i]) else { continue };
                let segs: Vec<String> = value.split(';').map(|s| s.to_string()).collect();
                for (j, seg) in segs.iter().enumerate() {
                    let Some((n, v)) = seg.split_once('=') else { continue };
                    if v.len() <= 1 || budget == 0 {
                        continue;
                    }
                    let half = &v[..v.len() / 2];
                    let mut cand_segs = segs.clone();
                    cand_segs[j] = format!("{n}={half}");
                    let mut cand = lines.clone();
                    cand[i] = format!("{prefix}:{}", cand_segs.join(";"));
                    budget -= 1;
                    if reproduces(&encode(&cand)) {
                        lines = cand;
                        improved = true;
                        break;
                    }
                }
            }

            if !improved || budget == 0 {
                break;
            }
        }
        encode(&lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_diff::{run_protocol_campaign, ProtocolCampaignOptions, ReplayBundle};

    #[test]
    fn campaign_finds_every_divergence_class() {
        let p = CookieProtocol::standard();
        let summary =
            run_protocol_campaign(&p, &ProtocolCampaignOptions::default()).expect("campaign");
        assert_eq!(summary.protocol, "cookie");
        assert_eq!(summary.cases, seed_vectors().len());
        for tag in crate::detect::TAGS {
            assert!(summary.classes.contains(&tag.to_string()), "{tag}: {:?}", summary.classes);
        }
        // ≥3 distinct attack classes among the findings.
        let classes: std::collections::BTreeSet<_> =
            summary.findings.iter().map(|f| f.class).collect();
        assert!(classes.len() >= 3, "{classes:?}");
    }

    #[test]
    fn campaign_is_thread_invariant() {
        let p = CookieProtocol::standard();
        let base =
            run_protocol_campaign(&p, &ProtocolCampaignOptions::default()).expect("campaign");
        for threads in [2, 8] {
            let t = run_protocol_campaign(
                &p,
                &ProtocolCampaignOptions { threads, ..ProtocolCampaignOptions::default() },
            )
            .expect("campaign");
            assert_eq!(base.findings, t.findings, "threads={threads}");
            assert_eq!(base.classes, t.classes, "threads={threads}");
        }
    }

    #[test]
    fn promoted_bundles_are_protocol_keyed_and_replay() {
        let dir = std::env::temp_dir().join(format!("hdiff-cookie-promote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = CookieProtocol::standard();
        let summary = run_protocol_campaign(
            &p,
            &ProtocolCampaignOptions { threads: 0, promote_dir: Some(dir.clone()) },
        )
        .expect("campaign");
        assert_eq!(summary.promoted.len(), crate::detect::TAGS.len());
        for path in &summary.promoted {
            let bundle = ReplayBundle::load(path).expect("load");
            assert_eq!(bundle.protocol.as_deref(), Some("cookie"));
            let report = bundle.replay_protocol(&p);
            assert!(report.passed(), "{}: {}", path.display(), report.summary());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn minimizer_shrinks_the_kitchen_sink() {
        let p = CookieProtocol::standard();
        let seed = seed_vectors().into_iter().find(|s| s.id == "kitchen-sink").unwrap();
        let bytes = seed.case.to_bytes();
        let exec = p.execute(42, "cookie:kitchen-sink", &bytes);
        let target = exec
            .findings
            .iter()
            .find(|f| f.evidence.starts_with("cookie:shadow-precedence:"))
            .expect("kitchen-sink produces a precedence finding")
            .clone();
        let minimized = p.minimize(&bytes, &target);
        assert!(minimized.len() < bytes.len(), "{}", String::from_utf8_lossy(&minimized));
        // The target finding survives on the minimized bytes.
        let again = p.execute(42, "cookie:kitchen-sink", &minimized);
        assert!(again.findings.iter().any(|f| f.class == target.class
            && f.front == target.front
            && f.back == target.back
            && f.evidence.starts_with("cookie:shadow-precedence:")));
        // The unrelated lang cookie and $Version line are gone.
        let text = String::from_utf8_lossy(&minimized);
        assert!(!text.contains("lang="), "{text}");
        assert!(!text.contains("$Version"), "{text}");
    }

    #[test]
    fn grammar_rides_along() {
        let p = CookieProtocol::standard();
        let gs = p.grammars();
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].0, "rfc6265");
    }
}
