//! Behavioral cookie-parse profiles.
//!
//! Same idiom as `hdiff-servers`' `ParserProfile`: every divergence axis
//! the detection models exploit is an explicit policy enum, and a
//! profile is a named bundle of policies modeling a real implementation
//! family. The axes are exactly the gaps RFC 6265 §5 papers over: the
//! spec's parsing algorithm is deliberately more lenient than its §4
//! grammar, and pre-6265 implementations (Netscape spec, RFC 2109)
//! never converged on either.

/// How attribute names (`Secure`, `Path`, …) are recognized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrCase {
    /// Case-insensitive match, per RFC 6265 §5.2.
    Insensitive,
    /// Only the canonical capitalized spellings are recognized; `SECURE`
    /// or `path` fall through to extension-av and are ignored.
    CanonicalOnly,
}

/// Which write wins when the same cookie name is set twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Duplicates {
    /// Later Set-Cookie replaces the stored value (RFC 6265 §5.3 step 11).
    LastWins,
    /// The first store is kept; later writes to the name are dropped
    /// (nginx's `$cookie_name`, several proxy-side jars).
    FirstWins,
}

/// How `$`-prefixed names in a `Cookie:` header are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DollarNames {
    /// Ordinary cookies — `$Version` is just a cookie named `$Version`
    /// (RFC 6265 §5.4 killed the special casing).
    Ordinary,
    /// RFC 2109 metadata: `$Version`/`$Path`/`$Domain` are attributes of
    /// the surrounding cookies, not cookies themselves.
    Rfc2109Meta,
}

/// Whether a DQUOTE-wrapped cookie value keeps its quotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotedValues {
    /// Quotes are part of the value (modern browsers).
    Verbatim,
    /// Surrounding quotes are stripped before storing/forwarding
    /// (RFC 2109 lineage: Java servlets, many frameworks).
    Strip,
}

/// How far `Expires=` date parsing bends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpiresDates {
    /// The RFC 6265 §5.1.1 algorithm: scan delimiter-separated tokens
    /// for time/day/month/year in any order, accept 2-digit years and
    /// RFC 850 dashes.
    Lenient,
    /// Only the fixed `Day, DD Mon YYYY HH:MM:SS GMT` RFC 1123 form;
    /// anything else leaves the cookie a session cookie.
    Rfc1123Only,
}

/// How a `Domain=` attribute is matched against the request host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainMatch {
    /// RFC 6265 §5.1.3: ignore a leading dot, then require equality or a
    /// dot-boundary suffix match.
    Rfc6265,
    /// The domain must equal the request host byte-for-byte (a leading
    /// dot therefore never matches) — host-locked proxy jars.
    ExactHost,
    /// Raw `ends_with` without dot normalization: `.example.com` fails
    /// on `example.com` itself, while `le.com` matches it — the classic
    /// Netscape tail-match bug.
    NaiveSuffix,
}

/// How a header is split into `;`-separated segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSplit {
    /// Split at every `;` (RFC 6265 §5.2 step 1 — quotes are not
    /// special at split time).
    Naive,
    /// `;` inside a double-quoted value does not split (RFC 2109
    /// quoted-string lineage: Java's legacy cookie parser).
    QuoteAware,
}

/// One cookie implementation family as a bundle of policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CookieProfile {
    /// Stable profile name, used as the view label and digest key.
    pub name: &'static str,
    pub attr_case: AttrCase,
    pub duplicates: Duplicates,
    pub dollar: DollarNames,
    pub quotes: QuotedValues,
    pub expires: ExpiresDates,
    pub domain: DomainMatch,
    pub split: ValueSplit,
}

/// The standard profile matrix: eight families, every policy axis
/// diverging between at least two of them.
pub fn profiles() -> Vec<CookieProfile> {
    vec![
        // Modern browser per RFC 6265: the conformance baseline.
        CookieProfile {
            name: "rfc6265-ua",
            attr_case: AttrCase::Insensitive,
            duplicates: Duplicates::LastWins,
            dollar: DollarNames::Ordinary,
            quotes: QuotedValues::Verbatim,
            expires: ExpiresDates::Lenient,
            domain: DomainMatch::Rfc6265,
            split: ValueSplit::Naive,
        },
        // Original Netscape-spec lineage: tail-matched domains, quotes
        // stripped.
        CookieProfile {
            name: "legacy-netscape",
            attr_case: AttrCase::Insensitive,
            duplicates: Duplicates::LastWins,
            dollar: DollarNames::Ordinary,
            quotes: QuotedValues::Strip,
            expires: ExpiresDates::Lenient,
            domain: DomainMatch::NaiveSuffix,
            split: ValueSplit::Naive,
        },
        // Java-servlet legacy parser: RFC 2109 metadata, quoted strings
        // honored across `;`, strict dates.
        CookieProfile {
            name: "servlet-jar",
            attr_case: AttrCase::CanonicalOnly,
            duplicates: Duplicates::FirstWins,
            dollar: DollarNames::Rfc2109Meta,
            quotes: QuotedValues::Strip,
            expires: ExpiresDates::Rfc1123Only,
            domain: DomainMatch::ExactHost,
            split: ValueSplit::QuoteAware,
        },
        // Proxy-side jar (nginx-shaped): first match wins, minimal
        // attribute handling, host-locked.
        CookieProfile {
            name: "proxy-gateway",
            attr_case: AttrCase::CanonicalOnly,
            duplicates: Duplicates::FirstWins,
            dollar: DollarNames::Ordinary,
            quotes: QuotedValues::Verbatim,
            expires: ExpiresDates::Rfc1123Only,
            domain: DomainMatch::ExactHost,
            split: ValueSplit::Naive,
        },
        // Scripting-framework jar (PHP-shaped): forgiving names, strict
        // dates, quotes stripped.
        CookieProfile {
            name: "script-framework",
            attr_case: AttrCase::Insensitive,
            duplicates: Duplicates::LastWins,
            dollar: DollarNames::Ordinary,
            quotes: QuotedValues::Strip,
            expires: ExpiresDates::Rfc1123Only,
            domain: DomainMatch::Rfc6265,
            split: ValueSplit::Naive,
        },
        // An RFC 2109 user agent: `$Version` metadata, quote-aware
        // splitting, first-wins precedence.
        CookieProfile {
            name: "rfc2109-agent",
            attr_case: AttrCase::Insensitive,
            duplicates: Duplicates::FirstWins,
            dollar: DollarNames::Rfc2109Meta,
            quotes: QuotedValues::Strip,
            expires: ExpiresDates::Rfc1123Only,
            domain: DomainMatch::Rfc6265,
            split: ValueSplit::QuoteAware,
        },
        // Non-browser HTTP client (curl-shaped): lenient dates, Netscape
        // tail-match domain file format.
        CookieProfile {
            name: "fetch-client",
            attr_case: AttrCase::Insensitive,
            duplicates: Duplicates::LastWins,
            dollar: DollarNames::Ordinary,
            quotes: QuotedValues::Verbatim,
            expires: ExpiresDates::Lenient,
            domain: DomainMatch::NaiveSuffix,
            split: ValueSplit::Naive,
        },
        // Pedantic validator: canonical spellings and RFC 1123 dates
        // only, otherwise RFC 6265 semantics.
        CookieProfile {
            name: "strict-validator",
            attr_case: AttrCase::CanonicalOnly,
            duplicates: Duplicates::LastWins,
            dollar: DollarNames::Ordinary,
            quotes: QuotedValues::Verbatim,
            expires: ExpiresDates::Rfc1123Only,
            domain: DomainMatch::Rfc6265,
            split: ValueSplit::Naive,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_eight_distinct_profiles_and_every_axis_diverges() {
        let ps = profiles();
        assert_eq!(ps.len(), 8);
        for (i, a) in ps.iter().enumerate() {
            for b in &ps[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
        assert!(ps.iter().any(|p| p.attr_case != ps[0].attr_case));
        assert!(ps.iter().any(|p| p.duplicates != ps[0].duplicates));
        assert!(ps.iter().any(|p| p.dollar != ps[0].dollar));
        assert!(ps.iter().any(|p| p.quotes != ps[0].quotes));
        assert!(ps.iter().any(|p| p.expires != ps[0].expires));
        assert!(ps.iter().any(|p| p.domain != ps[0].domain));
        assert!(ps.iter().any(|p| p.split != ps[0].split));
    }
}
