//! Per-profile cookie interpretation.
//!
//! [`interpret`] runs one [`CookieCase`] through one [`CookieProfile`]
//! and reduces the outcome to a [`CookieView`]: per-`Set-Cookie`-line
//! store decisions, the resulting jar and the `Cookie` header it would
//! emit for the case's host/path, and the pairs parsed out of raw
//! inbound `Cookie` headers. Views are what the detection models diff.
//!
//! Everything here is pure and allocation-ordered — no clocks, no maps
//! with nondeterministic iteration — because view equality across
//! thread counts is what makes the campaign driver deterministic. The
//! one place cookies genuinely need a clock (`Expires`) uses a frozen
//! "now" ([`FROZEN_NOW_YEAR`]) so the same case always expires the same
//! way.

use crate::cases::CookieCase;
use crate::profile::{
    AttrCase, CookieProfile, DollarNames, DomainMatch, Duplicates, ExpiresDates, QuotedValues,
    ValueSplit,
};

/// The frozen campaign clock: an `Expires` date strictly before this
/// year is "in the past". Keeping it a constant (rather than the wall
/// clock) keeps executions replayable years later.
pub const FROZEN_NOW_YEAR: i32 = 2024;

/// What one profile did with one `Set-Cookie` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetOutcome {
    /// Cookie name (empty when the line had no name-value pair).
    pub name: String,
    /// Cookie value after the profile's quote policy.
    pub value: String,
    /// Recognized attribute names, lowercased, in line order.
    pub attrs: Vec<String>,
    /// Whether the cookie made it into the jar.
    pub stored: bool,
    /// Why not, when it didn't: `no-pair`, `domain-mismatch`, `expired`.
    pub reason: Option<&'static str>,
}

/// One profile's complete observable view of a case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CookieView {
    /// The profile that produced this view.
    pub profile: &'static str,
    /// Per-`Set-Cookie`-line outcomes, in response order.
    pub sets: Vec<SetOutcome>,
    /// The final jar as `(name, value)` pairs, in storage order.
    pub jar: Vec<(String, String)>,
    /// The `Cookie` header serialization of the jar.
    pub header: String,
    /// Pairs parsed from raw inbound `Cookie` headers.
    pub inbound: Vec<(String, String)>,
    /// RFC 2109 `$` metadata consumed from inbound headers (empty for
    /// profiles that treat `$` names as ordinary cookies).
    pub meta: Vec<(String, String)>,
}

/// Splits on `;`, optionally treating `;` inside double quotes as data.
fn split_segments(s: &str, split: ValueSplit) -> Vec<&str> {
    match split {
        ValueSplit::Naive => s.split(';').collect(),
        ValueSplit::QuoteAware => {
            let mut out = Vec::new();
            let mut start = 0;
            let mut in_quotes = false;
            for (i, b) in s.bytes().enumerate() {
                match b {
                    b'"' => in_quotes = !in_quotes,
                    b';' if !in_quotes => {
                        out.push(&s[start..i]);
                        start = i + 1;
                    }
                    _ => {}
                }
            }
            out.push(&s[start..]);
            out
        }
    }
}

/// Applies a profile's quote policy to a value.
fn apply_quotes(value: &str, quotes: QuotedValues) -> String {
    match quotes {
        QuotedValues::Verbatim => value.to_string(),
        QuotedValues::Strip => {
            if value.len() >= 2 && value.starts_with('"') && value.ends_with('"') {
                value[1..value.len() - 1].to_string()
            } else {
                value.to_string()
            }
        }
    }
}

/// Canonical attribute spellings, matched per the profile's case policy.
const CANONICAL_ATTRS: [&str; 7] =
    ["Domain", "Path", "Expires", "Max-Age", "Secure", "HttpOnly", "SameSite"];

fn recognize_attr(name: &str, case: AttrCase) -> Option<String> {
    let hit = match case {
        AttrCase::Insensitive => CANONICAL_ATTRS.iter().find(|c| c.eq_ignore_ascii_case(name)),
        AttrCase::CanonicalOnly => CANONICAL_ATTRS.iter().find(|c| **c == name),
    };
    hit.map(|c| c.to_ascii_lowercase())
}

/// RFC 6265 §5.1.3 domain-match after §5.2.3 leading-dot removal.
fn domain_matches(policy: DomainMatch, host: &str, domain: &str) -> bool {
    let host = host.to_ascii_lowercase();
    let domain = domain.to_ascii_lowercase();
    match policy {
        DomainMatch::Rfc6265 => {
            let d = domain.strip_prefix('.').unwrap_or(&domain);
            !d.is_empty() && (host == d || host.ends_with(&format!(".{d}")))
        }
        DomainMatch::ExactHost => host == domain,
        DomainMatch::NaiveSuffix => !domain.is_empty() && host.ends_with(&domain),
    }
}

/// The RFC 6265 §5.1.1 lenient date scan, reduced to the year (the only
/// component the frozen clock compares). Returns `None` when the scan
/// fails to find a complete, in-range date.
fn parse_lenient_year(s: &str) -> Option<i32> {
    let mut time: Option<(u32, u32, u32)> = None;
    let mut day: Option<u32> = None;
    let mut month = false;
    let mut year: Option<i32> = None;
    const MONTHS: [&str; 12] =
        ["jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec"];
    // Delimiters are everything outside alphanumerics and ':'.
    for token in s.split(|c: char| !(c.is_ascii_alphanumeric() || c == ':')) {
        if token.is_empty() {
            continue;
        }
        if time.is_none() {
            let parts: Vec<&str> = token.split(':').collect();
            if parts.len() == 3 && parts.iter().all(|p| !p.is_empty() && p.len() <= 2) {
                if let (Ok(h), Ok(m), Ok(sec)) =
                    (parts[0].parse::<u32>(), parts[1].parse::<u32>(), parts[2].parse::<u32>())
                {
                    if h <= 23 && m <= 59 && sec <= 59 {
                        time = Some((h, m, sec));
                        continue;
                    }
                }
            }
        }
        let digits: String = token.chars().take_while(|c| c.is_ascii_digit()).collect();
        if day.is_none() && (1..=2).contains(&digits.len()) && digits.len() == token.len() {
            if let Ok(d) = digits.parse::<u32>() {
                if (1..=31).contains(&d) {
                    day = Some(d);
                    continue;
                }
            }
        }
        if !month && token.len() >= 3 {
            let prefix = token[..3].to_ascii_lowercase();
            if MONTHS.contains(&prefix.as_str()) {
                month = true;
                continue;
            }
        }
        if year.is_none() && (2..=4).contains(&digits.len()) && digits.len() == token.len() {
            if let Ok(mut y) = digits.parse::<i32>() {
                if digits.len() == 2 {
                    y += if y >= 70 { 1900 } else { 2000 };
                }
                if y >= 1601 {
                    year = Some(y);
                    continue;
                }
            }
        }
    }
    if time.is_some() && day.is_some() && month {
        year
    } else {
        None
    }
}

/// Strict RFC 1123 `Day, DD Mon YYYY HH:MM:SS GMT` — the only form the
/// `Rfc1123Only` policy accepts. Returns the year.
fn parse_rfc1123_year(s: &str) -> Option<i32> {
    const DAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
    const MONTHS: [&str; 12] =
        ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];
    let rest = DAYS.iter().find_map(|d| s.strip_prefix(d))?;
    let rest = rest.strip_prefix(", ")?;
    let (dd, rest) = rest.split_at_checked(2)?;
    if !dd.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let rest = rest.strip_prefix(' ')?;
    let rest = MONTHS.iter().find_map(|m| rest.strip_prefix(m))?;
    let rest = rest.strip_prefix(' ')?;
    let (yyyy, rest) = rest.split_at_checked(4)?;
    if !yyyy.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let rest = rest.strip_prefix(' ')?;
    let (hh, rest) = rest.split_at_checked(2)?;
    let rest = rest.strip_prefix(':')?;
    let (mm, rest) = rest.split_at_checked(2)?;
    let rest = rest.strip_prefix(':')?;
    let (ss, rest) = rest.split_at_checked(2)?;
    for part in [hh, mm, ss] {
        if !part.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
    }
    if rest != " GMT" {
        return None;
    }
    yyyy.parse().ok()
}

/// Whether an `Expires` value names a past date under the profile's
/// date policy and the frozen clock. Unparseable dates are ignored (the
/// cookie stays a session cookie) — that asymmetry between lenient and
/// strict parsers is precisely the `expires-leniency` gap.
fn expires_in_past(policy: ExpiresDates, value: &str) -> bool {
    let year = match policy {
        ExpiresDates::Lenient => parse_lenient_year(value),
        ExpiresDates::Rfc1123Only => parse_rfc1123_year(value),
    };
    year.is_some_and(|y| y < FROZEN_NOW_YEAR)
}

/// Interprets one `Set-Cookie` line under a profile.
fn interpret_set(profile: &CookieProfile, host: &str, raw: &str) -> SetOutcome {
    let segments = split_segments(raw, profile.split);
    let pair = segments.first().copied().unwrap_or("");
    let Some(eq) = pair.find('=') else {
        return SetOutcome {
            name: String::new(),
            value: String::new(),
            attrs: Vec::new(),
            stored: false,
            reason: Some("no-pair"),
        };
    };
    let name = pair[..eq].trim().to_string();
    let value = apply_quotes(pair[eq + 1..].trim(), profile.quotes);
    if name.is_empty() {
        return SetOutcome {
            name,
            value,
            attrs: Vec::new(),
            stored: false,
            reason: Some("no-pair"),
        };
    }

    let mut attrs = Vec::new();
    let mut reason: Option<&'static str> = None;
    for seg in &segments[1..] {
        let (attr_name, attr_value) = match seg.find('=') {
            Some(i) => (seg[..i].trim(), seg[i + 1..].trim()),
            None => (seg.trim(), ""),
        };
        let Some(canonical) = recognize_attr(attr_name, profile.attr_case) else {
            continue; // extension-av: unrecognized attributes are ignored
        };
        match canonical.as_str() {
            "domain" if !domain_matches(profile.domain, host, attr_value) => {
                reason = reason.or(Some("domain-mismatch"));
            }
            "expires" if expires_in_past(profile.expires, attr_value) => {
                reason = reason.or(Some("expired"));
            }
            "max-age" => {
                // Max-Age wins over Expires in every lineage; a
                // non-positive delta expires the cookie immediately.
                if let Ok(delta) = attr_value.parse::<i64>() {
                    if delta <= 0 {
                        reason = reason.or(Some("expired"));
                    }
                }
            }
            _ => {}
        }
        attrs.push(canonical);
    }

    SetOutcome { name, value, attrs, stored: reason.is_none(), reason }
}

/// Parses one raw inbound `Cookie` header value into `(pairs, meta)`.
fn interpret_cookie_line(
    profile: &CookieProfile,
    raw: &str,
    pairs: &mut Vec<(String, String)>,
    meta: &mut Vec<(String, String)>,
) {
    for seg in split_segments(raw, profile.split) {
        let seg = seg.trim();
        if seg.is_empty() {
            continue;
        }
        let (name, value) = match seg.find('=') {
            Some(i) => {
                (seg[..i].trim().to_string(), apply_quotes(seg[i + 1..].trim(), profile.quotes))
            }
            None => (seg.to_string(), String::new()),
        };
        if profile.dollar == DollarNames::Rfc2109Meta && name.starts_with('$') {
            meta.push((name, value));
        } else {
            pairs.push((name, value));
        }
    }
}

/// Runs a whole case through one profile.
pub fn interpret(profile: &CookieProfile, case: &CookieCase) -> CookieView {
    let sets: Vec<SetOutcome> =
        case.sets.iter().map(|raw| interpret_set(profile, &case.host, raw)).collect();

    let mut jar: Vec<(String, String)> = Vec::new();
    for outcome in sets.iter().filter(|o| o.stored) {
        match jar.iter_mut().find(|(n, _)| *n == outcome.name) {
            Some(slot) => {
                if profile.duplicates == Duplicates::LastWins {
                    slot.1 = outcome.value.clone();
                }
            }
            None => jar.push((outcome.name.clone(), outcome.value.clone())),
        }
    }
    let header = jar.iter().map(|(n, v)| format!("{n}={v}")).collect::<Vec<_>>().join("; ");

    let mut inbound = Vec::new();
    let mut meta = Vec::new();
    for raw in &case.cookies {
        interpret_cookie_line(profile, raw, &mut inbound, &mut meta);
    }

    CookieView { profile: profile.name, sets, jar, header, inbound, meta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profiles;

    fn by_name(name: &str) -> CookieProfile {
        profiles().into_iter().find(|p| p.name == name).unwrap()
    }

    fn one_set(host: &str, line: &str) -> CookieCase {
        CookieCase { host: host.to_string(), sets: vec![line.to_string()], ..CookieCase::default() }
    }

    #[test]
    fn quote_aware_split_keeps_semicolons_inside_quotes() {
        assert_eq!(
            split_segments("a=\"b;c\"; Secure", ValueSplit::QuoteAware),
            vec!["a=\"b;c\"", " Secure"]
        );
        assert_eq!(
            split_segments("a=\"b;c\"; Secure", ValueSplit::Naive),
            vec!["a=\"b", "c\"", " Secure"]
        );
    }

    #[test]
    fn duplicate_precedence_diverges() {
        let case = CookieCase {
            sets: vec!["sid=first".to_string(), "sid=second".to_string()],
            ..CookieCase::default()
        };
        let last = interpret(&by_name("rfc6265-ua"), &case);
        let first = interpret(&by_name("proxy-gateway"), &case);
        assert_eq!(last.header, "sid=second");
        assert_eq!(first.header, "sid=first");
    }

    #[test]
    fn domain_policies_disagree_on_the_classic_shapes() {
        // Leading dot on the exact host: 6265 accepts, tail-match and
        // host-locked reject.
        let dotted = one_set("example.com", "sid=x; Domain=.example.com");
        assert!(interpret(&by_name("rfc6265-ua"), &dotted).sets[0].stored);
        assert!(!interpret(&by_name("legacy-netscape"), &dotted).sets[0].stored);
        assert!(!interpret(&by_name("proxy-gateway"), &dotted).sets[0].stored);
        // Foreign suffix: only the naive tail-match accepts.
        let suffix = one_set("example.com", "sid=x; Domain=le.com");
        assert!(!interpret(&by_name("rfc6265-ua"), &suffix).sets[0].stored);
        assert!(interpret(&by_name("legacy-netscape"), &suffix).sets[0].stored);
    }

    #[test]
    fn expires_policies_disagree_on_legacy_dates() {
        let legacy = one_set("example.com", "sid=x; Expires=Sun, 06-Nov-1994 08:49:37 GMT");
        let lenient = interpret(&by_name("rfc6265-ua"), &legacy);
        let strict = interpret(&by_name("proxy-gateway"), &legacy);
        assert_eq!(lenient.sets[0].reason, Some("expired"));
        assert!(strict.sets[0].stored, "strict parser ignores the malformed date");
        // Both agree on a well-formed past RFC 1123 date.
        let canonical = one_set("example.com", "sid=x; Expires=Sun, 06 Nov 1994 08:49:37 GMT");
        assert!(!interpret(&by_name("rfc6265-ua"), &canonical).sets[0].stored);
        assert!(!interpret(&by_name("proxy-gateway"), &canonical).sets[0].stored);
        // And on a future date being kept.
        let future = one_set("example.com", "sid=x; Expires=Wed, 09 Jun 2100 10:18:14 GMT");
        assert!(interpret(&by_name("rfc6265-ua"), &future).sets[0].stored);
        assert!(interpret(&by_name("proxy-gateway"), &future).sets[0].stored);
    }

    #[test]
    fn attr_case_policies_disagree_on_caps() {
        let caps = one_set("example.com", "sid=x; SECURE; HTTPONLY");
        let insensitive = interpret(&by_name("rfc6265-ua"), &caps);
        let canonical = interpret(&by_name("strict-validator"), &caps);
        assert_eq!(insensitive.sets[0].attrs, vec!["secure", "httponly"]);
        assert!(canonical.sets[0].attrs.is_empty());
    }

    #[test]
    fn rfc2109_metadata_is_consumed_not_forwarded() {
        let case = CookieCase {
            cookies: vec!["$Version=1; sid=alpha; $Path=/".to_string()],
            ..CookieCase::default()
        };
        let modern = interpret(&by_name("rfc6265-ua"), &case);
        let legacy = interpret(&by_name("rfc2109-agent"), &case);
        assert_eq!(modern.inbound.len(), 3);
        assert!(modern.meta.is_empty());
        assert_eq!(legacy.inbound, vec![("sid".to_string(), "alpha".to_string())]);
        assert_eq!(legacy.meta.len(), 2);
    }

    #[test]
    fn lenient_date_scan_accepts_what_rfc1123_rejects() {
        assert_eq!(parse_lenient_year("Sun, 06-Nov-1994 08:49:37 GMT"), Some(1994));
        assert_eq!(parse_lenient_year("1 Jan 1970 00:00:01"), Some(1970));
        assert_eq!(parse_lenient_year("08:49:37 6 nov 94"), Some(1994));
        assert_eq!(parse_lenient_year("Wed, 09 Jun 2100 10:18:14 GMT"), Some(2100));
        assert_eq!(parse_lenient_year("no date here"), None);
        assert_eq!(parse_rfc1123_year("Sun, 06 Nov 1994 08:49:37 GMT"), Some(1994));
        assert_eq!(parse_rfc1123_year("Sun, 06-Nov-1994 08:49:37 GMT"), None);
        assert_eq!(parse_rfc1123_year("1 Jan 1970 00:00:01"), None);
    }
}
