//! The `HMetrics` vector (§III-D, *Semantic Metrics*).
//!
//! > "we define an n-dimension vector HMetrics for the server behavior of
//! > each request: HMetrics = ⟨uuid, status_code, host, data, …⟩"
//!
//! One vector summarizes one implementation's observable behavior on one
//! request; detection rules are predicates over sets of vectors.

use hdiff_servers::{FramingChoice, Interpretation};
use hdiff_wire::ascii;

/// The behavior vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HMetrics {
    /// Test-case id.
    pub uuid: u64,
    /// Implementation name.
    pub implementation: String,
    /// Response status code (200 when accepted).
    pub status_code: u16,
    /// Whether the message was accepted.
    pub accepted: bool,
    /// The host identity the implementation acted on.
    pub host: Option<Vec<u8>>,
    /// The body payload as understood.
    pub data: Vec<u8>,
    /// The framing decision, when accepted.
    pub framing: Option<FramingChoice>,
    /// Bytes consumed from the stream.
    pub consumed: usize,
    /// Whether message repair fired (chunk rewrites etc.).
    pub repaired: bool,
    /// Diagnostic notes (log lines).
    pub notes: Vec<String>,
}

impl HMetrics {
    /// Builds a vector from an interpretation.
    pub fn from_interpretation(uuid: u64, implementation: &str, i: &Interpretation) -> HMetrics {
        HMetrics {
            uuid,
            implementation: implementation.to_string(),
            status_code: i.outcome.status(),
            accepted: i.outcome.is_accept(),
            host: i.host.clone(),
            data: i.body.clone(),
            framing: i.outcome.is_accept().then_some(i.framing),
            consumed: i.consumed,
            repaired: i.repaired_chunked,
            notes: i.notes.clone(),
        }
    }

    /// Whether two vectors disagree on message framing while both
    /// accepting — the core smuggling signal.
    pub fn framing_disagrees(&self, other: &HMetrics) -> bool {
        self.accepted
            && other.accepted
            && (self.framing != other.framing
                || self.consumed != other.consumed
                || self.data != other.data)
    }

    /// Whether two vectors disagree on the host identity while both
    /// accepting — the HoT signal.
    pub fn host_disagrees(&self, other: &HMetrics) -> bool {
        self.accepted && other.accepted && self.host != other.host
    }

    /// One-line rendering for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: status={} host={} framing={:?} consumed={} data={}B{}",
            self.implementation,
            self.status_code,
            self.host.as_deref().map(ascii::escape_bytes).unwrap_or_else(|| "-".into()),
            self.framing,
            self.consumed,
            self.data.len(),
            if self.repaired { " repaired" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_servers::{interpret, ParserProfile};

    fn metrics(profile: &ParserProfile, bytes: &[u8]) -> HMetrics {
        HMetrics::from_interpretation(1, &profile.name, &interpret(profile, bytes))
    }

    #[test]
    fn from_interpretation_maps_fields() {
        let p = ParserProfile::strict("base");
        let m = metrics(&p, b"POST / HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 3\r\n\r\nabc");
        assert!(m.accepted);
        assert_eq!(m.status_code, 200);
        assert_eq!(m.host.as_deref(), Some(&b"h1.com"[..]));
        assert_eq!(m.data, b"abc");
        assert_eq!(m.framing, Some(FramingChoice::ContentLength(3)));
    }

    #[test]
    fn framing_disagreement_signal() {
        let strict = ParserProfile::strict("a");
        let mut lenient = ParserProfile::strict("b");
        lenient.duplicate_cl = hdiff_servers::profile::DuplicateClPolicy::First;
        let mut lenient2 = ParserProfile::strict("c");
        lenient2.duplicate_cl = hdiff_servers::profile::DuplicateClPolicy::Last;
        let msg =
            b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\nContent-Length: 0\r\n\r\nabc";
        let m1 = metrics(&lenient, msg);
        let m2 = metrics(&lenient2, msg);
        let m0 = metrics(&strict, msg);
        assert!(m1.framing_disagrees(&m2));
        assert!(!m0.accepted, "strict rejects; no both-accept signal");
        assert!(!m0.framing_disagrees(&m1));
    }

    #[test]
    fn host_disagreement_signal() {
        let mut first = ParserProfile::strict("f");
        first.multi_host = hdiff_servers::profile::MultiHostPolicy::First;
        let mut last = ParserProfile::strict("l");
        last.multi_host = hdiff_servers::profile::MultiHostPolicy::Last;
        let msg = b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n";
        let m1 = metrics(&first, msg);
        let m2 = metrics(&last, msg);
        assert!(m1.host_disagrees(&m2));
        assert!(!m1.host_disagrees(&m1.clone()));
    }

    #[test]
    fn summary_is_readable() {
        let p = ParserProfile::strict("base");
        let m = metrics(&p, b"GET / HTTP/1.1\r\nHost: h\r\n\r\n");
        assert!(m.summary().contains("status=200"));
        assert!(m.summary().starts_with("base:"));
    }
}
