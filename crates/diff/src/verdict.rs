//! Aggregation of findings into Table I verdicts and Fig. 7 pair sets.

use std::collections::{BTreeMap, BTreeSet};

use hdiff_gen::AttackClass;
use hdiff_servers::ParserProfile;

use crate::findings::Finding;

/// The proxy×back-end pair sets per attack class (Figure 7).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairMatrix {
    pairs: BTreeMap<AttackClass, BTreeSet<(String, String)>>,
}

impl PairMatrix {
    /// Builds the matrix from findings.
    pub fn from_findings(findings: &[Finding]) -> PairMatrix {
        let mut m = PairMatrix::default();
        for f in findings {
            if let Some((front, back)) = f.pair() {
                m.pairs.entry(f.class).or_default().insert((front.to_string(), back.to_string()));
            }
        }
        m
    }

    /// Pairs for one class.
    pub fn pairs(&self, class: AttackClass) -> Vec<(String, String)> {
        self.pairs.get(&class).map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }

    /// Number of pairs for one class.
    pub fn count(&self, class: AttackClass) -> usize {
        self.pairs.get(&class).map_or(0, BTreeSet::len)
    }

    /// Whether a specific pair is affected by a class.
    pub fn contains(&self, class: AttackClass, front: &str, back: &str) -> bool {
        self.pairs.get(&class).is_some_and(|s| s.contains(&(front.to_string(), back.to_string())))
    }

    /// Distinct front-ends affected per class.
    pub fn fronts(&self, class: AttackClass) -> BTreeSet<String> {
        self.pairs
            .get(&class)
            .map(|s| s.iter().map(|(f, _)| f.clone()).collect())
            .unwrap_or_default()
    }
}

/// Per-product vulnerability verdicts (the check-marks of Table I).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Verdicts {
    table: BTreeMap<String, BTreeSet<AttackClass>>,
}

impl Verdicts {
    /// Builds verdicts from findings, applying the Table I attribution
    /// rules:
    ///
    /// * **HRS** — products named as culprits of HRS findings (lenient
    ///   framing deviants, repairers, desync parties).
    /// * **HoT** — culprits of HoT findings plus both parties of HoT
    ///   pairs.
    /// * **CPDoS** — proxies only: fronts of CPDoS findings and proxy
    ///   culprits of CPDoS-class deviations (the paper does not consider
    ///   CPDoS for products in pure server mode).
    pub fn from_findings(findings: &[Finding], profiles: &[ParserProfile]) -> Verdicts {
        let is_proxy = |name: &str| profiles.iter().any(|p| p.name == name && p.is_proxy());
        let mut table: BTreeMap<String, BTreeSet<AttackClass>> = BTreeMap::new();
        for p in profiles {
            table.entry(p.name.clone()).or_default();
        }
        for f in findings {
            match f.class {
                AttackClass::Hrs => {
                    for c in &f.culprits {
                        table.entry(c.clone()).or_default().insert(AttackClass::Hrs);
                    }
                }
                AttackClass::Hot => {
                    // HoT is inherently pairwise: a lone lenient host
                    // resolution is only a vulnerability when some other
                    // implementation resolves differently, so only pair
                    // findings mark products.
                    if let Some((front, back)) = f.pair() {
                        table.entry(front.to_string()).or_default().insert(AttackClass::Hot);
                        table.entry(back.to_string()).or_default().insert(AttackClass::Hot);
                    }
                }
                AttackClass::Cpdos => {
                    if let Some(front) = &f.front {
                        if is_proxy(front) {
                            table.entry(front.clone()).or_default().insert(AttackClass::Cpdos);
                        }
                    }
                    for c in &f.culprits {
                        if is_proxy(c) {
                            table.entry(c.clone()).or_default().insert(AttackClass::Cpdos);
                        }
                    }
                }
            }
        }
        Verdicts { table }
    }

    /// Whether a product is marked vulnerable to a class.
    pub fn is_vulnerable(&self, product: &str, class: AttackClass) -> bool {
        self.table.get(product).is_some_and(|s| s.contains(&class))
    }

    /// The classes a product is vulnerable to.
    pub fn classes(&self, product: &str) -> Vec<AttackClass> {
        self.table.get(product).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// All products in the table.
    pub fn products(&self) -> Vec<&str> {
        self.table.keys().map(String::as_str).collect()
    }

    /// Total number of (product, class) marks.
    pub fn total_marks(&self) -> usize {
        self.table.values().map(BTreeSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet as Set;

    fn finding(
        class: AttackClass,
        front: Option<&str>,
        back: Option<&str>,
        culprits: &[&str],
    ) -> Finding {
        Finding {
            class,
            uuid: 1,
            origin: "test".into(),
            front: front.map(String::from),
            back: back.map(String::from),
            culprits: culprits.iter().map(|s| s.to_string()).collect::<Set<_>>(),
            evidence: "e".into(),
        }
    }

    #[test]
    fn pair_matrix_collects_pairs() {
        let fs = vec![
            finding(AttackClass::Hot, Some("varnish"), Some("iis"), &[]),
            finding(AttackClass::Hot, Some("varnish"), Some("iis"), &[]),
            finding(AttackClass::Cpdos, Some("nginx"), Some("apache"), &["nginx"]),
        ];
        let m = PairMatrix::from_findings(&fs);
        assert_eq!(m.count(AttackClass::Hot), 1);
        assert!(m.contains(AttackClass::Hot, "varnish", "iis"));
        assert_eq!(m.fronts(AttackClass::Cpdos), ["nginx".to_string()].into_iter().collect());
        assert_eq!(m.count(AttackClass::Hrs), 0);
    }

    #[test]
    fn verdict_rules() {
        let profiles = hdiff_servers::products();
        let fs = vec![
            finding(AttackClass::Hrs, None, None, &["iis"]),
            finding(AttackClass::Hot, Some("varnish"), Some("tomcat"), &["varnish"]),
            // CPDoS attribution ignores server-mode-only products.
            finding(AttackClass::Cpdos, Some("nginx"), Some("weblogic"), &["weblogic"]),
        ];
        let v = Verdicts::from_findings(&fs, &profiles);
        assert!(v.is_vulnerable("iis", AttackClass::Hrs));
        assert!(v.is_vulnerable("varnish", AttackClass::Hot));
        assert!(v.is_vulnerable("tomcat", AttackClass::Hot));
        assert!(v.is_vulnerable("nginx", AttackClass::Cpdos));
        assert!(!v.is_vulnerable("weblogic", AttackClass::Cpdos), "servers get '-' for CPDoS");
        assert_eq!(v.total_marks(), 4);
        assert_eq!(v.products().len(), 10);
    }
}
