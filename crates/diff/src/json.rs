//! Minimal hand-rolled JSON value, parser, and string writer.
//!
//! Shared by the checkpoint codec ([`crate::checkpoint`]) and the replay
//! bundle codec ([`crate::replay`]); only the subset those formats need
//! (no floats, no negative numbers). Keeping the codec hand-rolled keeps
//! the on-disk formats free of any serialization dependency and fully
//! under this crate's control.

use std::io;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Parser<'a> {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("JSON parse error at byte {}: {msg}", self.pos),
        )
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> io::Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", char::from(b))))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> io::Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    pub(crate) fn value(&mut self) -> io::Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> io::Result<Json> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        s.parse::<u64>().map(Json::Num).map_err(|_| self.err("number out of range"))
    }

    pub(crate) fn string(&mut self) -> io::Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("empty string tail"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> io::Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> io::Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes, controls as
/// `\uXXXX`).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON string or `null`.
pub(crate) fn push_opt_str(out: &mut String, v: Option<&str>) {
    match v {
        Some(s) => push_json_str(out, s),
        None => out.push_str("null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicode_and_escapes_survive() {
        let mut out = String::new();
        push_json_str(&mut out, "héllo \"w\\orld\"\n\u{7}");
        let mut p = Parser::new(out.as_bytes());
        assert_eq!(p.string().unwrap(), "héllo \"w\\orld\"\n\u{7}");
    }

    #[test]
    fn values_parse() {
        let mut p = Parser::new(b" {\"a\": [1, true, null, \"x\"], \"b\": {}} ");
        let v = p.value().unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_bool(), Some(true));
        assert!(v.get("b").is_some());
    }

    #[test]
    fn garbage_is_an_error() {
        for garbage in ["", "{", "[1,2", "\"unterminated", "{\"k\" 1}"] {
            assert!(Parser::new(garbage.as_bytes()).value().is_err(), "{garbage}");
        }
    }
}
