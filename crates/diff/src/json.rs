//! Minimal hand-rolled JSON value, parser, and string writer.
//!
//! Shared by the checkpoint codec ([`crate::checkpoint`]) and the replay
//! bundle codec ([`crate::replay`]). Values are the subset those formats
//! need: numbers are `u64` integers. The parser still accepts the full
//! JSON number grammar (sign, fraction, exponent) so a hand-edited
//! bundle gets a precise "that number doesn't fit here" error instead of
//! a misleading "expected a value"; tokens whose exact value is a `u64`
//! integer (e.g. `1e3`, `-0`) decode, everything else is rejected naming
//! the token and its offset. Keeping the codec hand-rolled keeps the
//! on-disk formats free of any serialization dependency and fully under
//! this crate's control.

use std::io;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub fn new(bytes: &'a [u8]) -> Parser<'a> {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: &str) -> io::Error {
        self.err_at(self.pos, msg)
    }

    fn err_at(&self, pos: usize, msg: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, format!("JSON parse error at byte {pos}: {msg}"))
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> io::Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", char::from(b))))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> io::Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    pub fn value(&mut self) -> io::Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') => self.number(),
            Some(b) if b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    /// Scans a full JSON number token (`-?(0|[1-9][0-9]*)(\.[0-9]+)?`
    /// `([eE][+-]?[0-9]+)?`) and decodes it only when its exact value is
    /// an integer in `u64` range; everything else is rejected naming the
    /// token and its offset.
    fn number(&mut self) -> io::Result<Json> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }

        let int_start = self.pos;
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err_at(start, "expected digits in number")),
        }
        if self.bytes[int_start] == b'0' && self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(self.err_at(start, "leading zero in number"));
        }
        let int_end = self.pos;

        let mut frac = int_end..int_end;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err_at(start, "expected digits after '.' in number"));
            }
            frac = frac_start..self.pos;
        }

        let mut exp: i64 = 0;
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            let exp_neg = match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    false
                }
                Some(b'-') => {
                    self.pos += 1;
                    true
                }
                _ => false,
            };
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err_at(start, "expected digits in number exponent"));
            }
            for &b in &self.bytes[exp_start..self.pos] {
                exp = exp.saturating_mul(10).saturating_add(i64::from(b - b'0'));
            }
            if exp_neg {
                exp = -exp;
            }
        }

        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        let reject = |parser: &Parser<'_>, why: &str| {
            parser.err_at(start, &format!("number {token} {why} (this format stores u64 integers)"))
        };

        // Normalize to `digits * 10^exp10`, dropping the zeros that make
        // tokens like `1.50e2` or `100e-2` exactly integral.
        let mut digits: Vec<u8> =
            self.bytes[int_start..int_end].iter().chain(&self.bytes[frac]).copied().collect();
        let mut exp10 = exp.saturating_sub(digits.len() as i64 - (int_end - int_start) as i64);
        while digits.len() > 1 && digits[0] == b'0' {
            digits.remove(0);
        }
        if digits == [b'0'] {
            // Zero however spelled (-0, 0.000, 0e99) is exactly 0.
            return Ok(Json::Num(0));
        }
        while digits.last() == Some(&b'0') {
            digits.pop();
            exp10 += 1;
        }
        if neg {
            return Err(reject(self, "is negative"));
        }
        if exp10 < 0 {
            return Err(reject(self, "is not an integer"));
        }
        let mut value: u128 = 0;
        for &d in &digits {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u128::from(d - b'0')))
                .filter(|v| *v <= u128::from(u64::MAX))
                .ok_or_else(|| reject(self, "does not fit in u64"))?;
        }
        for _ in 0..exp10 {
            value = value
                .checked_mul(10)
                .filter(|v| *v <= u128::from(u64::MAX))
                .ok_or_else(|| reject(self, "does not fit in u64"))?;
        }
        Ok(Json::Num(value as u64))
    }

    /// Reads the 4 hex digits of a `\uXXXX` escape at the cursor.
    fn hex4(&mut self) -> io::Result<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        if !hex.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.err("bad \\u escape"));
        }
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    pub fn string(&mut self) -> io::Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let esc_start = self.pos - 2;
                            let code = self.hex4()?;
                            let ch = match code {
                                0xD800..=0xDBFF => {
                                    // A high surrogate is only valid as the
                                    // first half of a \uXXXX\uXXXX pair
                                    // encoding one supplementary-plane char.
                                    if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                        return Err(self.err_at(
                                            esc_start,
                                            &format!("lone high surrogate \\u{code:04x}"),
                                        ));
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err_at(
                                            esc_start,
                                            &format!(
                                                "high surrogate \\u{code:04x} must be followed \
                                                 by a low surrogate, got \\u{low:04x}"
                                            ),
                                        ));
                                    }
                                    let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(scalar)
                                        .expect("surrogate pairs decode to valid scalars")
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err_at(
                                        esc_start,
                                        &format!("lone low surrogate \\u{code:04x}"),
                                    ));
                                }
                                _ => char::from_u32(code)
                                    .expect("non-surrogate BMP codes are valid scalars"),
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Copy the maximal run up to the next quote or escape
                    // verbatim, validating UTF-8 once per run (per-scalar
                    // validation of the remaining input is quadratic).
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err_at(start, "invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn array(&mut self) -> io::Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> io::Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes, controls as
/// `\uXXXX`).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON string or `null`.
pub fn push_opt_str(out: &mut String, v: Option<&str>) {
    match v {
        Some(s) => push_json_str(out, s),
        None => out.push_str("null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicode_and_escapes_survive() {
        let mut out = String::new();
        push_json_str(&mut out, "héllo \"w\\orld\"\n\u{7}");
        let mut p = Parser::new(out.as_bytes());
        assert_eq!(p.string().unwrap(), "héllo \"w\\orld\"\n\u{7}");
    }

    #[test]
    fn values_parse() {
        let mut p = Parser::new(b" {\"a\": [1, true, null, \"x\"], \"b\": {}} ");
        let v = p.value().unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_bool(), Some(true));
        assert!(v.get("b").is_some());
    }

    #[test]
    fn garbage_is_an_error() {
        for garbage in ["", "{", "[1,2", "\"unterminated", "{\"k\" 1}"] {
            assert!(Parser::new(garbage.as_bytes()).value().is_err(), "{garbage}");
        }
    }

    fn decode_num(text: &str) -> io::Result<Json> {
        Parser::new(text.as_bytes()).value()
    }

    #[test]
    fn integral_number_spellings_decode_exactly() {
        for (text, expect) in [
            ("0", 0),
            ("-0", 0),
            ("0.000", 0),
            ("1e3", 1000),
            ("1.25e2", 125),
            ("100e-2", 1),
            ("1.50e2", 150),
            ("18446744073709551615", u64::MAX),
            ("1844674407370955161.5e1", u64::MAX),
        ] {
            assert_eq!(decode_num(text).unwrap(), Json::Num(expect), "{text}");
        }
    }

    #[test]
    fn non_u64_numbers_are_rejected_naming_the_token_and_offset() {
        for (text, why) in [
            ("-1", "is negative"),
            ("1.5", "is not an integer"),
            ("2e-1", "is not an integer"),
            ("18446744073709551616", "does not fit in u64"),
            ("2e100", "does not fit in u64"),
        ] {
            let err = decode_num(text).unwrap_err().to_string();
            assert!(err.contains(text), "error must name the token {text:?}: {err}");
            assert!(err.contains(why), "error for {text:?} must say it {why}: {err}");
            assert!(err.contains("at byte 0"), "error must carry the offset: {err}");
        }
        // Offsets point at the token, not the failure position.
        let err = Parser::new(b"[7, -1]").value().unwrap_err().to_string();
        assert!(err.contains("at byte 4"), "{err}");
    }

    #[test]
    fn malformed_number_tokens_are_rejected() {
        for text in ["-", "01", "1.", "1.e3", "1e", "1e+", "-.5"] {
            assert!(decode_num(text).is_err(), "{text} must not parse as a number");
        }
    }

    #[test]
    fn surrogate_pairs_combine_and_lone_surrogates_are_precise_errors() {
        let mut p = Parser::new(br#""\ud83d\ude00!""#);
        assert_eq!(p.string().unwrap(), "\u{1F600}!");

        let lone_high = Parser::new(br#""\ud800""#).string().unwrap_err().to_string();
        assert!(lone_high.contains("lone high surrogate \\ud800"), "{lone_high}");
        let lone_low = Parser::new(br#""\udc00""#).string().unwrap_err().to_string();
        assert!(lone_low.contains("lone low surrogate \\udc00"), "{lone_low}");
        let bad_pair = Parser::new(br#""\ud83d\u0041""#).string().unwrap_err().to_string();
        assert!(bad_pair.contains("must be followed by a low surrogate"), "{bad_pair}");
        // A literal char after a high surrogate is a lone surrogate too.
        let high_then_literal = Parser::new(br#""\ud83dA""#).string().unwrap_err().to_string();
        assert!(high_then_literal.contains("lone high surrogate"), "{high_then_literal}");
        // A high surrogate at end-of-input must error, not panic.
        assert!(Parser::new(br#""\ud83d"#).string().is_err());
    }

    fn roundtrip(s: &str) -> String {
        let mut out = String::new();
        push_json_str(&mut out, s);
        Parser::new(out.as_bytes()).string().unwrap_or_else(|e| panic!("{s:?} -> {out}: {e}"))
    }

    #[test]
    fn encoder_output_roundtrips_for_hostile_strings() {
        for s in
            ["", "\u{0}\u{1f}\u{7f}", "a\"b\\c/d", "\n\r\t", "héllo", "\u{1F600}\u{10FFFF}", " "]
        {
            assert_eq!(roundtrip(s), s);
        }
    }

    proptest::proptest! {
        #[test]
        fn decode_encode_roundtrips_arbitrary_strings(
            codes in proptest::collection::vec(0u32..0x110000u32, 0..64)
        ) {
            let s: String = codes.into_iter().filter_map(char::from_u32).collect();
            proptest::prop_assert_eq!(roundtrip(&s), s);
        }
    }
}
