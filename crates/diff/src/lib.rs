//! Differential testing engine — the right half of Fig. 3.
//!
//! * [`hmetrics`] — the paper's `HMetrics` vector summarizing one
//!   implementation's behavior on one request.
//! * [`baseline`] — the RFC-strict oracle and *deviation* computation:
//!   unlike plain differential testing, HDiff can tell which side of a
//!   discrepancy violates the specification (and can test a single
//!   implementation against SR assertions).
//! * [`workflow`] — the three-step test workflow of Fig. 6: client →
//!   proxy → echo, replay of forwarded bytes to back-ends (with the
//!   replay-reduction heuristics), and direct client → back-end runs.
//! * [`detect`] — the three detection models (HRS, HoT, CPDoS) expressed
//!   as predicates over `HMetrics`/chain outcomes.
//! * [`downgrade`] — the h2→h1 downgrade-desync model: each front end's
//!   reconstructed HTTP/1.1 stream diffed against every back end's
//!   interpretation of it, with its own seed corpus, request-level
//!   minimizer, campaign driver, and replay-bundle integration.
//! * [`protocol`] — the protocol-generic campaign core: the [`Protocol`]
//!   trait (grammars + seed corpus + execution + detection + minimize)
//!   and the shared deterministic campaign driver every workload runs
//!   through. [`http1`] puts HTTP/1.1 behind the trait; [`downgrade`]'s
//!   `DowngradeProtocol` does the same for the h2 surface; the cookie
//!   workload (`hdiff-cookie`) is the first non-HTTP instance.
//! * [`srcheck`] — single-implementation SR-assertion checking.
//! * [`syntax`] — the grammar-conformance oracle over the compiled ABNF
//!   matcher, annotating findings with per-view validity verdicts.
//! * [`verdict`] — aggregation into Table I verdicts and Fig. 7 pair
//!   matrices.
//! * [`schedule`] — the work-stealing fan-out used by the runner.
//! * [`runner`] — drives a whole test-case corpus through everything.
//! * [`shard`] — deterministic case-space sharding for the multi-process
//!   campaign fabric (`crates/fleet`).

pub mod baseline;
pub mod checkpoint;
pub mod detect;
pub mod downgrade;
pub mod findings;
pub mod hmetrics;
pub mod http1;
pub mod json;
pub mod minimize;
pub mod protocol;
pub mod replay;
pub mod runner;
pub mod schedule;
pub mod shard;
pub mod srcheck;
pub mod syntax;
pub mod telemetry_codec;
pub mod transport;
pub mod verdict;
pub mod verify;
pub mod workflow;

pub use baseline::{deviations, Deviation, DeviationKind};
pub use detect::{detect_case, detect_case_with_oracle, detect_degradation, DegradationFinding};
pub use downgrade::{
    detect_downgrade, downgrade_digests, finding_tag, minimize_h2_case, regen_h2_golden,
    run_downgrade_campaign, run_downgrade_case_tcp, seed_vectors, DowngradeCampaignOptions,
    DowngradeCaseOutcome, DowngradeChain, DowngradeProtocol, DowngradeSummary, DowngradeWorkflow,
    Frontend, H2Minimized, SeedVector, H2_UUID_BASE,
};
pub use findings::Finding;
pub use hmetrics::HMetrics;
pub use http1::{Http1Protocol, H1_UUID_BASE};
pub use minimize::{
    ddmin_items, minimize, FindingContext, MinimizeOptions, MinimizeStats, Minimized,
};
pub use protocol::{
    run_protocol_campaign, ProtoCase, ProtoExecution, ProtoView, Protocol, ProtocolCampaignOptions,
    ProtocolSummary,
};
pub use replay::{Fnv, ReplayBundle, ReplayReport};
pub use runner::{
    CaseError, CaseRecord, ChunkProgress, DiffEngine, ProgressHook, RunSummary, RunTelemetry,
};
pub use shard::{shard_ranges, ShardError, ShardErrorKind, ShardSpec, ShardStat, ShardTopology};
pub use srcheck::{check_assertions, check_host_conformance, SrViolation};
pub use syntax::SyntaxOracle;
pub use telemetry_codec::{
    load_report, summary_to_json, trace_to_jsonl, write_summary, write_trace,
};
pub use transport::{
    consistency_findings, consistency_findings_async, pipelined_desync_findings, run_bytes_tcp,
    run_bytes_tcp_async, run_case_tcp, run_case_tcp_async, segmented_probe, try_run_bytes_tcp,
    try_run_bytes_tcp_async, try_run_case_tcp, try_run_case_tcp_async, Transport,
};
pub use verdict::{PairMatrix, Verdicts};
pub use verify::{verify_all, verify_finding, VerifiedFinding};
pub use workflow::{CaseOutcome, ChainRun, FaultReaction, ReplayRun, Workflow};
