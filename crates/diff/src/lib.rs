//! Differential testing engine — the right half of Fig. 3.
//!
//! * [`hmetrics`] — the paper's `HMetrics` vector summarizing one
//!   implementation's behavior on one request.
//! * [`baseline`] — the RFC-strict oracle and *deviation* computation:
//!   unlike plain differential testing, HDiff can tell which side of a
//!   discrepancy violates the specification (and can test a single
//!   implementation against SR assertions).
//! * [`workflow`] — the three-step test workflow of Fig. 6: client →
//!   proxy → echo, replay of forwarded bytes to back-ends (with the
//!   replay-reduction heuristics), and direct client → back-end runs.
//! * [`detect`] — the three detection models (HRS, HoT, CPDoS) expressed
//!   as predicates over `HMetrics`/chain outcomes.
//! * [`srcheck`] — single-implementation SR-assertion checking.
//! * [`verdict`] — aggregation into Table I verdicts and Fig. 7 pair
//!   matrices.
//! * [`runner`] — drives a whole test-case corpus through everything.

pub mod baseline;
pub mod checkpoint;
pub mod detect;
pub mod findings;
pub mod hmetrics;
pub mod runner;
pub mod srcheck;
pub mod verdict;
pub mod verify;
pub mod workflow;

pub use baseline::{deviations, Deviation, DeviationKind};
pub use detect::{detect_case, detect_degradation, DegradationFinding};
pub use findings::Finding;
pub use hmetrics::HMetrics;
pub use runner::{CaseError, CaseRecord, DiffEngine, RunSummary};
pub use srcheck::{check_assertions, SrViolation};
pub use verdict::{PairMatrix, Verdicts};
pub use verify::{verify_all, verify_finding, VerifiedFinding};
pub use workflow::{CaseOutcome, ChainRun, FaultReaction, ReplayRun, Workflow};
