//! The three-step test workflow of Fig. 6.
//!
//! * **Step 1** — the client sends each test case to every proxy, which
//!   forwards to the echo server; proxy logs and forwarded bytes are
//!   recorded.
//! * **Step 2** — forwarded bytes are replayed against every back-end
//!   (replay reduction: only proxy-accepted, ambiguous messages are
//!   replayed), simulating all proxy×back-end chains without deploying
//!   them pairwise.
//! * **Step 3** — the client also sends each case directly to every
//!   back-end to learn its own interpretation.
//!
//! After step 2 the proxy's cache is fed with the back-end response so the
//! CPDoS model can check storability.

use hdiff_gen::TestCase;
use hdiff_servers::cache::{CacheKey, StoreDecision};
use hdiff_servers::fault::{FaultEvent, FaultKind, FaultSession, FaultStage};
use hdiff_servers::response_path::{relay_response, RelayAction};
use hdiff_servers::{
    EchoServer, ParserProfile, Proxy, ProxyResult, Server, ServerReply, ORIGIN_HOP,
};

/// One back-end's replies to a byte stream.
#[derive(Debug, Clone)]
pub struct ReplayRun {
    /// Back-end product name.
    pub backend: String,
    /// Replies, one per message the back-end parsed.
    pub replies: Vec<ServerReply>,
    /// Cache storage decision for the first reply (using the proxy's view
    /// as the key), plus whether the stored response was an error.
    pub cache_stored_error: bool,
}

/// How one proxy reacted to canonically damaged upstream bytes (the relay
/// probe run when an origin-side fault was injected). Two proxies given
/// the *same* damage that disagree here — one replaces with its own 502,
/// the other relays the damaged payload — degrade differently, which is
/// what the degradation detection pass compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReaction {
    /// The injected origin fault the probe models.
    pub fault: FaultKind,
    /// Whether the proxy discarded the upstream message and substituted
    /// its own response (RFC 7230 §3.2.4 style).
    pub replaced: bool,
    /// Status of the response the client would see, when parseable.
    pub status: Option<u16>,
    /// Total length of the bytes sent downstream.
    pub body_len: usize,
}

/// One proxy's processing of a test case.
#[derive(Debug, Clone)]
pub struct ChainRun {
    /// Proxy product name.
    pub proxy: String,
    /// Per-message proxy results (interpretation + action).
    pub proxy_results: Vec<ProxyResult>,
    /// Concatenated forwarded bytes (what travels downstream).
    pub forwarded: Vec<u8>,
    /// Number of messages the proxy forwarded.
    pub forwarded_count: usize,
    /// Length of each forwarded message (for desync comparison).
    pub forwarded_lens: Vec<usize>,
    /// Step-2 replays (empty when reduction skipped them).
    pub replays: Vec<ReplayRun>,
    /// Relay-probe reaction to the case's injected origin fault (`None`
    /// when no origin fault fired for this case).
    pub relay_reaction: Option<FaultReaction>,
}

/// The complete outcome of one test case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Test-case id.
    pub uuid: u64,
    /// Origin string (sr:…/abnf/catalog:…).
    pub origin: String,
    /// The client bytes sent.
    pub bytes: Vec<u8>,
    /// Step-1 (+2) chain runs, one per proxy.
    pub chains: Vec<ChainRun>,
    /// Step-3 direct back-end runs.
    pub direct: Vec<(String, Vec<ServerReply>)>,
    /// Every fault the session injected while this case ran.
    pub fault_events: Vec<FaultEvent>,
    /// Whether the per-case step budget ran out mid-case.
    pub budget_exhausted: bool,
}

/// The workflow driver.
#[derive(Debug)]
pub struct Workflow {
    proxies: Vec<ParserProfile>,
    backends: Vec<ParserProfile>,
    /// Replay-reduction switch (on by default, like the paper).
    pub replay_reduction: bool,
}

impl Workflow {
    /// Builds a workflow over proxy and back-end profiles.
    pub fn new(proxies: Vec<ParserProfile>, backends: Vec<ParserProfile>) -> Workflow {
        Workflow { proxies, backends, replay_reduction: true }
    }

    /// The standard Fig. 6 environment: six proxies, six back-ends.
    pub fn standard() -> Workflow {
        Workflow::new(hdiff_servers::proxies(), hdiff_servers::backends())
    }

    /// The proxies under test.
    pub fn proxies(&self) -> &[ParserProfile] {
        &self.proxies
    }

    /// The back-ends under test.
    pub fn backends(&self) -> &[ParserProfile] {
        &self.backends
    }

    /// Runs all three steps for one test case.
    pub fn run_case(&self, case: &TestCase) -> CaseOutcome {
        self.run_case_faulted(case, None)
    }

    /// [`Workflow::run_case`] with a fault session threaded through every
    /// hop. The origin-side fault is decided once (under [`ORIGIN_HOP`]),
    /// so all back-ends and all proxy chains of the case experience the
    /// *same* damage; each proxy additionally runs a relay probe against
    /// the canonical damaged bytes for that fault so the degradation pass
    /// can compare their reactions.
    pub fn run_case_faulted(
        &self,
        case: &TestCase,
        faults: Option<&FaultSession<'_>>,
    ) -> CaseOutcome {
        self.run_bytes_faulted(
            case.uuid,
            &case.origin.to_string(),
            &case.request.to_bytes(),
            faults,
        )
    }

    /// The raw-bytes workflow entry: runs all three steps over an exact
    /// client byte stream, bypassing [`hdiff_wire::Request`] re-rendering.
    /// This is what the minimizer and replay bundles drive — a shrunk or
    /// recorded case is just bytes, with no structured request behind it.
    pub fn run_bytes_faulted(
        &self,
        uuid: u64,
        origin: &str,
        bytes: &[u8],
        faults: Option<&FaultSession<'_>>,
    ) -> CaseOutcome {
        let bytes = bytes.to_vec();
        let origin_fault =
            faults.and_then(|s| s.decide(ORIGIN_HOP, FaultStage::OriginRespond)).map(|d| d.kind);
        let probe_bytes = origin_fault.and_then(damaged_upstream_bytes);

        // Step 3: direct back-end interpretation.
        let direct: Vec<(String, Vec<ServerReply>)> = self
            .backends
            .iter()
            .map(|b| (b.name.clone(), Server::new(b.clone()).handle_stream_faulted(&bytes, faults)))
            .collect();

        // Steps 1 and 2 per proxy.
        let mut chains = Vec::new();
        for proxy_profile in &self.proxies {
            let proxy = Proxy::new(proxy_profile.clone());
            let mut echo = EchoServer::new();
            let proxy_results = proxy.forward_stream_faulted(&bytes, faults);
            let mut forwarded = Vec::new();
            let mut forwarded_count = 0usize;
            let mut forwarded_lens = Vec::new();
            for r in &proxy_results {
                if let Some(f) = r.action.forwarded() {
                    echo.receive(f);
                    forwarded.extend_from_slice(f);
                    forwarded_lens.push(f.len());
                    forwarded_count += 1;
                }
            }

            let any_accepted = proxy_results.iter().any(|r| r.interpretation.outcome.is_accept());
            let should_replay = forwarded_count > 0
                && any_accepted
                && (!self.replay_reduction || is_ambiguous(&bytes));

            let mut replays = Vec::new();
            if should_replay {
                for backend_profile in &self.backends {
                    let backend = Server::new(backend_profile.clone());
                    let replies = backend.handle_stream_faulted(&forwarded, faults);
                    // Feed the proxy cache with the first backend response
                    // under the proxy's own view of the request.
                    let cache_stored_error = simulate_cache(&proxy, &proxy_results, &replies);
                    replays.push(ReplayRun {
                        backend: backend_profile.name.clone(),
                        replies,
                        cache_stored_error,
                    });
                }
            }

            let relay_reaction = match (&origin_fault, &probe_bytes) {
                (Some(kind), Some(probe)) => Some(probe_relay(proxy_profile, *kind, probe)),
                _ => None,
            };

            chains.push(ChainRun {
                proxy: proxy_profile.name.clone(),
                proxy_results,
                forwarded,
                forwarded_count,
                forwarded_lens,
                replays,
                relay_reaction,
            });
        }

        CaseOutcome {
            uuid,
            origin: origin.to_string(),
            bytes,
            chains,
            direct,
            fault_events: faults.map(|s| s.events()).unwrap_or_default(),
            budget_exhausted: faults.is_some_and(FaultSession::exhausted),
        }
    }
}

/// Canonical damaged upstream bytes for an origin-side fault — what a
/// proxy's response parser sees when the origin connection misbehaves
/// that way. Each payload is chosen to sit on a policy knob on which real
/// products diverge, so identical damage can draw divergent reactions:
///
/// * `ConnReset` — the tail of a folded header survives the reset
///   ([`hdiff_servers::profile::ObsFoldPolicy`]: 502 vs merge-and-relay).
/// * `TruncateResponse` — final chunk promises more bytes than arrived
///   (`truncate_short_final_chunk`: 502 vs relay-the-short-body).
/// * `GarbleForward` — a bit-flipped octet in a header name
///   ([`hdiff_servers::profile::NamePolicy`]: 502 / forward raw / strip).
/// * `Transient5xx` — a well-formed 503; every conformant proxy relays it
///   untouched (the uniform-reaction control).
/// * `StallRead` — no bytes ever arrive; nothing to probe with.
pub(crate) fn damaged_upstream_bytes(kind: FaultKind) -> Option<Vec<u8>> {
    match kind {
        FaultKind::ConnReset => Some(
            b"HTTP/1.1 200 OK\r\nX-Upstream-State: aborted\r\n retrying\r\nContent-Length: 4\r\n\r\nlost"
                .to_vec(),
        ),
        FaultKind::TruncateResponse => Some(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n20\r\nonly-half-arrived\r\n"
                .to_vec(),
        ),
        FaultKind::GarbleForward => {
            Some(b"HTTP/1.1 200 OK\r\nX-Ga\x02ble: hit\r\nContent-Length: 2\r\n\r\nok".to_vec())
        }
        FaultKind::Transient5xx => Some(
            b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 8\r\n\r\nupstream".to_vec(),
        ),
        FaultKind::StallRead => None,
    }
}

/// Runs the relay probe: `profile` relays the damaged bytes and the
/// reaction is summarized for pairwise comparison.
pub(crate) fn probe_relay(
    profile: &ParserProfile,
    fault: FaultKind,
    damaged: &[u8],
) -> FaultReaction {
    match relay_response(profile, damaged) {
        RelayAction::Relayed(bytes) => FaultReaction {
            fault,
            replaced: false,
            status: hdiff_wire::parse_response(&bytes).ok().map(|r| r.status.as_u16()),
            body_len: bytes.len(),
        },
        RelayAction::Replaced(r) => FaultReaction {
            fault,
            replaced: true,
            status: Some(r.status.as_u16()),
            body_len: r.to_bytes().len(),
        },
    }
}

/// Simulates the proxy caching the back-end's first response; returns
/// whether an *error* response was stored (the CPDoS precondition).
pub(crate) fn simulate_cache(
    proxy: &Proxy,
    proxy_results: &[ProxyResult],
    replies: &[ServerReply],
) -> bool {
    let (Some(first_proxy), Some(first_reply)) = (proxy_results.first(), replies.first()) else {
        return false;
    };
    if !first_proxy.interpretation.outcome.is_accept() {
        return false;
    }
    let mut cache = proxy.cache.clone();
    let key = CacheKey::new(
        first_proxy.interpretation.host.clone().unwrap_or_default(),
        first_proxy.interpretation.target.clone(),
    );
    let decision = cache.store(
        key,
        &first_proxy.interpretation.method,
        &first_proxy.interpretation.version,
        &first_reply.response,
    );
    decision == StoreDecision::Stored && first_reply.response.status.is_error()
}

/// The replay-reduction ambiguity heuristic (§IV-A step 2): a request is
/// worth replaying when it carries any marker of semantic ambiguity.
pub fn is_ambiguous(bytes: &[u8]) -> bool {
    let lower = bytes.to_ascii_lowercase();
    let count = |needle: &[u8]| lower.windows(needle.len()).filter(|w| *w == needle).count();
    let has = |needle: &[u8]| count(needle) > 0;

    // Duplicated or conflicting framing / host fields.
    if count(b"content-length") >= 2 || count(b"transfer-encoding") >= 2 || count(b"host:") >= 2 {
        return true;
    }
    if has(b"content-length") && has(b"transfer-encoding") {
        return true;
    }
    if has(b"transfer-encoding") || has(b"chunked") {
        return true;
    }
    // Special characters in the header section.
    let header_end = lower.windows(4).position(|w| w == b"\r\n\r\n").unwrap_or(lower.len());
    if lower[..header_end].iter().any(|&b| {
        b == 0 || b == 0x0b || (b < 0x20 && b != b'\r' && b != b'\n' && b != b'\t') || b >= 0x80
    }) {
        return true;
    }
    // Request-line anomalies.
    let line_end = lower.windows(2).position(|w| w == b"\r\n").unwrap_or(lower.len());
    let line = &lower[..line_end];
    if !line.ends_with(b"http/1.1") || line.iter().filter(|&&b| b == b' ').count() != 2 {
        return true;
    }
    if has(b"http://") || has(b"://") {
        return true;
    }
    // Ambiguous Host spellings (userinfo, lists, path junk, spaces).
    if let Some(hpos) = lower.windows(5).position(|w| w == b"host:") {
        let rest = &lower[hpos + 5..];
        let vend = rest.windows(2).position(|w| w == b"\r\n").unwrap_or(rest.len());
        let value: &[u8] = &rest[..vend];
        let trimmed: Vec<u8> = value.iter().copied().filter(|&b| b != b' ').collect();
        if value.iter().any(|&b| matches!(b, b',' | b'@' | b'/')) || trimmed.len() + 1 < value.len()
        {
            return true;
        }
    }
    // Expect / Connection manipulation / obs-fold / body-on-GET.
    if has(b"expect") || has(b"connection:") {
        return true;
    }
    if lower[..header_end].windows(3).any(|w| w == b"\r\n " || w == b"\r\n\t") {
        return true;
    }
    if lower.starts_with(b"get") && header_end + 4 < lower.len() {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_gen::TestCase;
    use hdiff_wire::Request;

    fn case(req: Request) -> TestCase {
        TestCase::generated(1, req, "test")
    }

    #[test]
    fn plain_request_flows_through_every_chain() {
        let w = Workflow::standard();
        let outcome = w.run_case(&case(Request::get("example.com")));
        assert_eq!(outcome.chains.len(), 6);
        assert_eq!(outcome.direct.len(), 6);
        for chain in &outcome.chains {
            assert_eq!(chain.forwarded_count, 1, "{}", chain.proxy);
            // Plain request is unambiguous: replay reduction skips it.
            assert!(chain.replays.is_empty(), "{}", chain.proxy);
        }
    }

    #[test]
    fn ambiguity_heuristic() {
        assert!(!is_ambiguous(b"GET / HTTP/1.1\r\nHost: h1.com\r\n\r\n"));
        assert!(is_ambiguous(b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n"));
        assert!(is_ambiguous(
            b"POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"
        ));
        assert!(is_ambiguous(b"GET / HTTP/1.0\r\nHost: h\r\n\r\n"));
        assert!(is_ambiguous(b"GET http://h2.com/ HTTP/1.1\r\nHost: h1.com\r\n\r\n"));
        assert!(is_ambiguous(b"GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n"));
        assert!(is_ambiguous(b"GET / HTTP/1.1\r\n\x0bHost: h\r\n\r\n"));
    }

    #[test]
    fn ambiguous_case_gets_replayed() {
        let w = Workflow::standard();
        let mut b = Request::builder();
        b.header("Host", "h1.com").header("Host", "h2.com");
        let outcome = w.run_case(&case(b.build()));
        // Varnish (multi-host First + transparent) forwards; its chain must
        // carry replays against all six backends.
        let varnish = outcome.chains.iter().find(|c| c.proxy == "varnish").unwrap();
        assert_eq!(varnish.replays.len(), 6);
        // Apache (strict) rejects at the proxy: no replay.
        let apache = outcome.chains.iter().find(|c| c.proxy == "apache").unwrap();
        assert!(apache.replays.is_empty());
    }

    #[test]
    fn exhaustive_mode_replays_everything_forwarded() {
        let mut w = Workflow::standard();
        w.replay_reduction = false;
        // A plain (unambiguous) request is still replayed when reduction
        // is off — quantifying what the heuristic saves.
        let outcome = w.run_case(&case(Request::get("example.com")));
        for chain in &outcome.chains {
            assert_eq!(chain.replays.len(), 6, "{}", chain.proxy);
        }
    }

    #[test]
    fn forwarded_lens_sum_to_forwarded_bytes() {
        let w = Workflow::standard();
        let mut b = Request::builder();
        b.header("Host", "h1.com").header("Host", "h2.com");
        let outcome = w.run_case(&case(b.build()));
        for chain in &outcome.chains {
            let total: usize = chain.forwarded_lens.iter().sum();
            assert_eq!(total, chain.forwarded.len(), "{}", chain.proxy);
            assert_eq!(chain.forwarded_lens.len(), chain.forwarded_count);
        }
    }

    #[test]
    fn cache_simulation_records_error_storage() {
        let w = Workflow::standard();
        // Nginx repairs the version, backends reject the repaired line,
        // nginx caches the error: CPDoS.
        let mut req = Request::get("h1.com");
        req.set_version(b"1.1/HTTP");
        let outcome = w.run_case(&case(req));
        let nginx = outcome.chains.iter().find(|c| c.proxy == "nginx").unwrap();
        assert!(!nginx.replays.is_empty());
        assert!(
            nginx.replays.iter().any(|r| r.cache_stored_error),
            "{:?}",
            nginx.replays.iter().map(|r| (&r.backend, r.cache_stored_error)).collect::<Vec<_>>()
        );
    }
}
