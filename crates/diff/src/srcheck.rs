//! Single-implementation SR-assertion checking.
//!
//! "HDiff can test a single implementation by checking whether HMetrics
//! matches the assertion from SRs" (§VII) — no second implementation
//! needed. A test case translated from an SR carries assertions; this
//! module evaluates them against one product's behavior.

use hdiff_gen::{Assertion, TestCase};
use hdiff_servers::{interpret, ParserProfile, Proxy};
use hdiff_sr::{Modality, Role};

use crate::syntax::SyntaxOracle;

/// One observed violation of an SR assertion.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SrViolation {
    /// The implementation that violated the assertion.
    pub implementation: String,
    /// The SR id.
    pub sr_id: String,
    /// Requirement strength (SHOULD violations are advisory).
    pub modality: Modality,
    /// What the SR expected.
    pub expected: String,
    /// What was observed.
    pub observed: String,
    /// True when the implementation rejected the message but with a
    /// different error code than the SR names (414 vs 431, …) — a
    /// code-level nit rather than a semantic violation.
    pub code_mismatch_only: bool,
}

impl SrViolation {
    /// Whether this violates a MUST-level requirement semantically
    /// (wrong-error-code-only mismatches are advisory).
    pub fn is_mandatory(&self) -> bool {
        self.modality.is_mandatory() && !self.code_mismatch_only
    }
}

/// The roles a profile plays in the testbed.
fn roles_of(profile: &ParserProfile) -> Vec<Role> {
    let mut roles = vec![Role::Sender, Role::Recipient];
    if profile.server_mode {
        roles.push(Role::Server);
        roles.push(Role::OriginServer);
    }
    if profile.is_proxy() {
        roles.push(Role::Proxy);
        roles.push(Role::Intermediary);
        roles.push(Role::Cache);
    }
    roles
}

fn assertion_binds(assertion: &Assertion, profile: &ParserProfile) -> bool {
    roles_of(profile).into_iter().any(|r| assertion.role.applies_to(r))
}

/// Checks one test case's assertions against one implementation.
pub fn check_assertions(profile: &ParserProfile, case: &TestCase) -> Vec<SrViolation> {
    let bytes = case.request.to_bytes();
    let mut out = Vec::new();
    for assertion in &case.assertions {
        if !assertion_binds(assertion, profile) {
            continue;
        }
        let i = interpret(profile, &bytes);
        let status = i.outcome.status();

        // Status expectation.
        if !assertion.expect.allowed_status.is_empty()
            && !assertion.expect.allowed_status.contains(&status)
        {
            let expected_error = assertion.expect.allowed_status.iter().all(|c| *c >= 400);
            let code_mismatch_only = expected_error && status >= 400;
            out.push(SrViolation {
                implementation: profile.name.clone(),
                sr_id: assertion.sr_id.clone(),
                modality: assertion.modality,
                expected: format!("status in {:?}", assertion.expect.allowed_status),
                observed: format!("status {status}"),
                code_mismatch_only,
            });
        }

        // Forwarding expectation (proxies only).
        if assertion.expect.must_not_forward && profile.is_proxy() {
            let proxy = Proxy::new(profile.clone());
            let r = proxy.forward(&bytes);
            if r.action.forwarded().is_some() {
                out.push(SrViolation {
                    implementation: profile.name.clone(),
                    sr_id: assertion.sr_id.clone(),
                    modality: assertion.modality,
                    expected: "message not forwarded".to_string(),
                    observed: "message was forwarded".to_string(),
                    code_mismatch_only: false,
                });
            }
        }

        // Cache expectation (proxies only): the profile must not be
        // *willing* to store error responses for this request shape.
        if assertion.expect.must_not_cache && profile.is_proxy() {
            if let Some(b) = &profile.proxy {
                if b.cache.enabled && b.cache.store_errors {
                    out.push(SrViolation {
                        implementation: profile.name.clone(),
                        sr_id: assertion.sr_id.clone(),
                        modality: assertion.modality,
                        expected: "error responses not cached".to_string(),
                        observed: "cache stores error responses".to_string(),
                        code_mismatch_only: false,
                    });
                }
            }
        }
    }
    out
}

/// Grammar-conformance checking against the adapted `Host` production.
///
/// RFC 7230 §5.4: a server MUST respond 400 to a request whose Host
/// field-value is invalid. The oracle's compiled matcher supplies the
/// "invalid" verdict; any implementation that *accepts* such a request
/// violates the requirement. Requests without a Host header, with a
/// syntactically valid one, or where the oracle has no verdict produce
/// nothing.
pub fn check_host_conformance(
    oracle: &SyntaxOracle,
    profiles: &[ParserProfile],
    cases: &[TestCase],
) -> Vec<SrViolation> {
    let mut out = Vec::new();
    for case in cases {
        let Some(host) = case.request.host() else { continue };
        if oracle.conforms("Host", host) != Some(false) {
            continue;
        }
        let bytes = case.request.to_bytes();
        for profile in profiles {
            let i = interpret(profile, &bytes);
            if !i.outcome.is_accept() {
                continue;
            }
            out.push(SrViolation {
                implementation: profile.name.clone(),
                sr_id: "rfc7230:host-abnf".to_string(),
                modality: Modality::Must,
                expected: "400 for a Host field-value outside the Host production".to_string(),
                observed: format!(
                    "accepted ({}) despite invalid host {:?}",
                    i.outcome.status(),
                    String::from_utf8_lossy(host)
                ),
                code_mismatch_only: false,
            });
        }
    }
    out
}

/// Checks a batch of cases against a batch of implementations, returning
/// all violations (mandatory and advisory).
pub fn check_all(profiles: &[ParserProfile], cases: &[TestCase]) -> Vec<SrViolation> {
    let mut out = Vec::new();
    for case in cases {
        if case.assertions.is_empty() {
            continue;
        }
        for p in profiles {
            out.extend(check_assertions(p, case));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_gen::{Assertion, Origin, TestCase};
    use hdiff_servers::{product, ProductId};
    use hdiff_sr::{RoleAction, SemanticDefinitions};
    use hdiff_wire::Request;

    fn sr_case(request: Request, role: Role, action: RoleAction) -> TestCase {
        let defs = SemanticDefinitions::new();
        TestCase {
            uuid: 9,
            request,
            assertions: vec![Assertion {
                role,
                modality: Modality::Must,
                expect: defs.expectation(&action),
                sr_id: "rfc7230:sr000".into(),
            }],
            origin: Origin::Sr("rfc7230:sr000".into()),
            note: "test".into(),
        }
    }

    #[test]
    fn ws_colon_assertion_catches_iis_but_not_apache() {
        // SR: server MUST respond 400 to whitespace-before-colon.
        let mut b = Request::builder();
        b.header("Host", "h1.com").header_raw(b"X-Test : 1".to_vec());
        let case = sr_case(b.build(), Role::Server, RoleAction::Respond(400));

        let iis = check_assertions(&product(ProductId::Iis), &case);
        assert_eq!(iis.len(), 1, "{iis:?}");
        assert!(iis[0].is_mandatory());
        assert!(iis[0].observed.contains("200"));

        let apache = check_assertions(&product(ProductId::Apache), &case);
        assert!(apache.is_empty(), "{apache:?}");
    }

    #[test]
    fn role_binding_filters_servers_vs_proxies() {
        let case = sr_case(Request::get("h1.com"), Role::Cache, RoleAction::Respond(400));
        // A cache-role assertion does not bind a pure server.
        assert!(check_assertions(&product(ProductId::Iis), &case).is_empty());
        // It binds a proxy (which plays the cache role) — and the plain
        // request gets 200, violating the (artificial) 400 expectation.
        assert_eq!(check_assertions(&product(ProductId::Varnish), &case).len(), 1);
    }

    #[test]
    fn not_cache_expectation_flags_error_caching_proxies() {
        let case = sr_case(Request::get("h1.com"), Role::Cache, RoleAction::NotCache);
        let v = check_assertions(&product(ProductId::Varnish), &case);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].observed.contains("stores error"));
    }

    #[test]
    fn host_conformance_flags_accepting_implementations_only() {
        let grammar = hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze(&hdiff_corpus::core_documents())
            .grammar;
        let oracle = crate::syntax::SyntaxOracle::new(&grammar);
        let products = hdiff_servers::products();

        let mut b = Request::builder();
        b.header("Host", "h1.com, h2.com");
        let invalid = TestCase::generated(1, b.build(), "comma-joined hosts");
        let violations = check_host_conformance(&oracle, &products, &[invalid]);
        assert!(!violations.is_empty(), "some product accepts the comma-joined host");
        assert!(violations.iter().all(|v| v.is_mandatory()));
        assert!(violations.iter().all(|v| v.sr_id == "rfc7230:host-abnf"));

        let clean = TestCase::generated(2, Request::get("example.com"), "clean host");
        assert!(check_host_conformance(&oracle, &products, &[clean]).is_empty());
    }

    #[test]
    fn check_all_over_real_translated_srs_finds_violations() {
        let out = hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze(&hdiff_corpus::core_documents());
        let gen =
            hdiff_gen::AbnfGenerator::new(out.grammar.clone(), hdiff_gen::GenOptions::default());
        let mut tr = hdiff_gen::SrTranslator::new(gen);
        let cases = tr.translate_all(&out.requirements);
        let violations = check_all(&hdiff_servers::products(), &cases);
        assert!(
            violations.iter().any(|v| v.is_mandatory()),
            "expected at least one MUST violation across products"
        );
        // The strict baseline itself must not violate mandatory SRs about
        // message rejection.
        let apache: Vec<_> = violations
            .iter()
            .filter(|v| v.implementation == "apache" && v.is_mandatory())
            .collect();
        assert!(
            apache.len() < violations.iter().filter(|v| v.is_mandatory()).count(),
            "apache should be among the most conformant"
        );
    }
}
