//! Drives a test-case corpus through workflow, detection and aggregation.

use crossbeam::thread;
use hdiff_gen::TestCase;
use hdiff_servers::ParserProfile;

use crate::detect::detect_case;
use crate::findings::Finding;
use crate::srcheck::{check_all, SrViolation};
use crate::verdict::{PairMatrix, Verdicts};
use crate::workflow::Workflow;

/// Summary of one differential-testing run.
#[derive(Debug)]
pub struct RunSummary {
    /// Test cases executed.
    pub cases: usize,
    /// Cases that were replayed to back-ends (survived reduction).
    pub replayed_cases: usize,
    /// All findings.
    pub findings: Vec<Finding>,
    /// SR-assertion violations (single-implementation checking).
    pub sr_violations: Vec<SrViolation>,
    /// Fig. 7 pair matrix.
    pub pairs: PairMatrix,
    /// Table I verdicts.
    pub verdicts: Verdicts,
}

impl RunSummary {
    /// Findings of one class.
    pub fn findings_of(&self, class: hdiff_gen::AttackClass) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.class == class).collect()
    }
}

/// The differential-testing engine.
#[derive(Debug)]
pub struct DiffEngine {
    workflow: Workflow,
    profiles: Vec<ParserProfile>,
    /// Worker threads for case execution.
    pub threads: usize,
}

impl DiffEngine {
    /// Builds an engine over the standard Fig. 6 environment.
    pub fn standard() -> DiffEngine {
        DiffEngine {
            workflow: Workflow::standard(),
            profiles: hdiff_servers::products(),
            threads: 4,
        }
    }

    /// Builds an engine over custom profiles (proxies, backends).
    pub fn new(proxies: Vec<ParserProfile>, backends: Vec<ParserProfile>) -> DiffEngine {
        let mut profiles = proxies.clone();
        for b in &backends {
            if !profiles.iter().any(|p| p.name == b.name) {
                profiles.push(b.clone());
            }
        }
        DiffEngine { workflow: Workflow::new(proxies, backends), profiles, threads: 4 }
    }

    /// The workflow in use.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// Runs the full analysis over a batch of test cases.
    pub fn run(&self, cases: &[TestCase]) -> RunSummary {
        let mut findings: Vec<Finding> = Vec::new();
        let mut replayed_cases = 0usize;

        let chunk = cases.len().div_ceil(self.threads.max(1)).max(1);
        let results: Vec<(Vec<Finding>, usize)> = thread::scope(|s| {
            let mut handles = Vec::new();
            for batch in cases.chunks(chunk) {
                let workflow = &self.workflow;
                let profiles = &self.profiles;
                handles.push(s.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut replayed = 0usize;
                    for case in batch {
                        let outcome = workflow.run_case(case);
                        if outcome.chains.iter().any(|c| !c.replays.is_empty()) {
                            replayed += 1;
                        }
                        local.extend(detect_case(profiles, &outcome));
                    }
                    (local, replayed)
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
        .expect("thread scope");

        for (local, replayed) in results {
            findings.extend(local);
            replayed_cases += replayed;
        }

        let sr_violations = check_all(&self.profiles, cases);
        let pairs = PairMatrix::from_findings(&findings);
        let verdicts = Verdicts::from_findings(&findings, &self.profiles);

        RunSummary {
            cases: cases.len(),
            replayed_cases,
            findings,
            sr_violations,
            pairs,
            verdicts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_gen::{catalog, AttackClass, Origin, TestCase};

    fn catalog_cases() -> Vec<TestCase> {
        let mut out = Vec::new();
        let mut uuid = 1u64;
        for entry in catalog::catalog() {
            for (req, note) in &entry.requests {
                out.push(TestCase {
                    uuid,
                    request: req.clone(),
                    assertions: Vec::new(),
                    origin: Origin::Catalog(entry.id.to_string()),
                    note: note.clone(),
                });
                uuid += 1;
            }
        }
        out
    }

    #[test]
    fn catalog_run_produces_findings_of_all_three_classes() {
        let engine = DiffEngine::standard();
        let summary = engine.run(&catalog_cases());
        assert!(summary.cases >= 14);
        for class in AttackClass::ALL {
            assert!(
                !summary.findings_of(class).is_empty(),
                "no findings for {class}"
            );
        }
        assert!(summary.replayed_cases > 0);
    }

    #[test]
    fn catalog_run_reproduces_key_pairs() {
        let engine = DiffEngine::standard();
        let summary = engine.run(&catalog_cases());
        // The two pairs the paper names for HoT.
        assert!(summary.pairs.contains(AttackClass::Hot, "varnish", "iis"), "{:?}", summary.pairs.pairs(AttackClass::Hot));
        assert!(summary.pairs.contains(AttackClass::Hot, "nginx", "weblogic"), "{:?}", summary.pairs.pairs(AttackClass::Hot));
        // All six proxies must be CPDoS-affected.
        assert_eq!(summary.pairs.fronts(AttackClass::Cpdos).len(), 6, "{:?}", summary.pairs.fronts(AttackClass::Cpdos));
    }

    #[test]
    fn single_thread_and_multi_thread_agree() {
        let cases = catalog_cases();
        let mut e1 = DiffEngine::standard();
        e1.threads = 1;
        let mut e4 = DiffEngine::standard();
        e4.threads = 4;
        let s1 = e1.run(&cases);
        let s4 = e4.run(&cases);
        assert_eq!(s1.findings.len(), s4.findings.len());
        assert_eq!(s1.verdicts.total_marks(), s4.verdicts.total_marks());
    }
}
