//! Drives a test-case corpus through workflow, detection and aggregation —
//! resiliently.
//!
//! Long differential campaigns meet hostile inputs: a case can panic the
//! harness, loop past any reasonable step budget, or (under fault
//! injection) hit transient upstream failures. The runner therefore
//! executes every case under [`std::panic::catch_unwind`] with a logical
//! step budget, retries transient faults with bounded (recorded, not
//! slept) exponential backoff, quarantines panicking cases instead of
//! dying, and checkpoints progress so an interrupted campaign resumes and
//! converges to the identical [`RunSummary`].

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;

use hdiff_gen::TestCase;
use hdiff_servers::fault::{FaultInjector, FaultKind, FaultPlan, FaultSession};
use hdiff_servers::ParserProfile;

use crate::checkpoint;
use crate::detect::{detect_case_with_oracle, detect_degradation, DegradationFinding};
use crate::findings::Finding;
use crate::schedule;
use crate::shard::{ShardError, ShardTopology};
use crate::srcheck::{check_all, check_host_conformance, SrViolation};
use crate::syntax::SyntaxOracle;
use crate::transport::{try_run_case_tcp, try_run_case_tcp_async, Transport};
use crate::verdict::{PairMatrix, Verdicts};
use crate::workflow::Workflow;

/// Why a case failed — the runner's typed error taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseError {
    /// The case panicked the harness; the uuid is quarantined and never
    /// re-attempted.
    Panic(String),
    /// The logical step budget ran out (stalled read or runaway case).
    Budget(String),
    /// A transient injected fault persisted through every retry.
    Fault(String),
    /// The (simulated) connection kept dying through every retry.
    Io(String),
}

impl CaseError {
    /// Stable lowercase tag (used by the checkpoint format and reports).
    pub fn kind(&self) -> &'static str {
        match self {
            CaseError::Panic(_) => "panic",
            CaseError::Budget(_) => "budget",
            CaseError::Fault(_) => "fault",
            CaseError::Io(_) => "io",
        }
    }

    /// Human-readable detail.
    pub fn detail(&self) -> &str {
        match self {
            CaseError::Panic(d) | CaseError::Budget(d) | CaseError::Fault(d) | CaseError::Io(d) => {
                d
            }
        }
    }
}

/// Everything recorded about one executed case — the unit the checkpoint
/// persists and the summary aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseRecord {
    /// Test-case id.
    pub uuid: u64,
    /// Whether any chain replayed to back-ends.
    pub replayed: bool,
    /// Retries spent on transient faults.
    pub retries: u32,
    /// Logical backoff units accumulated across retries (recorded instead
    /// of slept, so replays are instant and deterministic).
    pub backoff_units: u64,
    /// Whether the case panicked and is quarantined.
    pub quarantined: bool,
    /// Terminal error, if the case did not complete cleanly.
    pub error: Option<CaseError>,
    /// Findings from the final attempt.
    pub findings: Vec<Finding>,
    /// Degradation divergences from the final attempt.
    pub degradations: Vec<DegradationFinding>,
    /// Everything the case recorded through `hdiff_obs` while it ran
    /// (spans, counters, histograms — and trace events when tracing).
    /// Travels with the record through checkpoints, so a resumed
    /// campaign merges partial telemetry without double-counting.
    /// Equality is `Telemetry`'s shape-only equality.
    pub telemetry: hdiff_obs::Telemetry,
}

/// Summary of one differential-testing run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Test cases executed.
    pub cases: usize,
    /// Cases that were replayed to back-ends (survived reduction).
    pub replayed_cases: usize,
    /// All findings.
    pub findings: Vec<Finding>,
    /// Degradation divergences (fault-injection campaigns only).
    pub degradations: Vec<DegradationFinding>,
    /// SR-assertion violations (single-implementation checking).
    pub sr_violations: Vec<SrViolation>,
    /// Fig. 7 pair matrix.
    pub pairs: PairMatrix,
    /// Table I verdicts.
    pub verdicts: Verdicts,
    /// Cases that ended with a terminal [`CaseError`].
    pub errors: usize,
    /// Total retries spent on transient faults.
    pub retries: usize,
    /// Total logical backoff units accumulated across those retries
    /// (recorded, not slept; each retry `k` of a case charges `2^k`).
    pub backoff_units: u64,
    /// Quarantined (panicking) case uuids, ascending.
    pub quarantined: Vec<u64>,
    /// Grammar coverage reached by the generation phase that produced the
    /// corpus, when the campaign tracked it (see
    /// [`DiffEngine::grammar_coverage`]).
    pub coverage: Option<hdiff_gen::GrammarCoverage>,
    /// Transport the campaign executed over.
    pub transport: Transport,
    /// Campaign telemetry: merged spans/counters/histograms plus the
    /// slowest cases (see [`RunTelemetry`]).
    pub telemetry: RunTelemetry,
    /// Shards that exhausted their respawn budget and were quarantined
    /// by the fleet supervisor (always empty for in-process runs).
    pub shard_errors: Vec<ShardError>,
    /// How the campaign was executed across processes. Operational
    /// metadata: its `PartialEq` compares nothing, so a sharded run's
    /// summary stays equal to the single-process one.
    pub topology: ShardTopology,
}

/// Campaign telemetry carried by a [`RunSummary`].
///
/// `PartialEq` compares only [`RunTelemetry::merged`] (itself the
/// deterministic shape: span counts, counter totals, histogram
/// populations); the slowest-case list is wall-clock ordering and two
/// equal runs will rank it differently.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Telemetry merged across the generation stages and every case, in
    /// input-corpus order.
    pub merged: hdiff_obs::Telemetry,
    /// `(case uuid, case wall time ns)`, slowest first; capped at
    /// [`RunTelemetry::SLOWEST_KEPT`].
    pub slowest: Vec<(u64, u64)>,
}

impl RunTelemetry {
    /// How many slowest cases a summary keeps.
    pub const SLOWEST_KEPT: usize = 16;
}

impl PartialEq for RunTelemetry {
    fn eq(&self, other: &RunTelemetry) -> bool {
        self.merged == other.merged
    }
}

impl RunSummary {
    /// Findings of one class.
    pub fn findings_of(&self, class: hdiff_gen::AttackClass) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.class == class).collect()
    }
}

/// What [`ProgressHook`] reports after every completed chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkProgress {
    /// Completed cases so far, including any resumed from a checkpoint.
    pub completed: usize,
    /// Checkpoint generation just written (unchanged when the run has no
    /// checkpoint path).
    pub generation: u64,
}

/// A per-chunk progress callback — how a shard worker streams heartbeats
/// to its supervisor without the engine knowing what a supervisor is.
pub struct ProgressHook(Box<dyn Fn(ChunkProgress) + Send + Sync>);

impl ProgressHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(ChunkProgress) + Send + Sync + 'static) -> ProgressHook {
        ProgressHook(Box::new(f))
    }

    /// Invokes the callback.
    pub fn report(&self, progress: ChunkProgress) {
        (self.0)(progress);
    }
}

impl fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// The differential-testing engine.
#[derive(Debug)]
pub struct DiffEngine {
    workflow: Workflow,
    profiles: Vec<ParserProfile>,
    /// Worker threads for case execution; `0` means one per available
    /// core ([`std::thread::available_parallelism`]).
    pub threads: usize,
    /// Fault-injection plan (disabled by default: rate 0).
    pub fault_plan: FaultPlan,
    /// Maximum retries per case on transient faults.
    pub max_retries: u32,
    /// Logical step budget per case attempt.
    pub step_budget: u64,
    /// Cases per checkpoint interval for [`DiffEngine::run_with_checkpoint`].
    pub checkpoint_every: usize,
    /// Stop after this many checkpoint intervals — simulates a campaign
    /// killed mid-run (tests and operational drills).
    pub stop_after_chunks: Option<usize>,
    /// Optional grammar-conformance oracle. When set, HoT findings carry
    /// per-view `Host` validity verdicts and the summary includes
    /// [`check_host_conformance`] violations.
    pub syntax_oracle: Option<SyntaxOracle>,
    /// Grammar coverage reached while generating the corpus, carried into
    /// every [`RunSummary`] this engine produces. The engine itself never
    /// mutates it, so summaries stay identical across thread counts.
    pub grammar_coverage: Option<hdiff_gen::GrammarCoverage>,
    /// How cases execute: in-process simulation (default) or real
    /// loopback TCP (see [`crate::transport`]).
    pub transport: Transport,
    /// Telemetry recorded before the campaign (the generation stages the
    /// pipeline runs) — merged into every [`RunSummary`] this engine
    /// produces, never mutated by the engine itself.
    pub base_telemetry: hdiff_obs::Telemetry,
    /// Called after every chunk (post-save when checkpointing) — the
    /// shard worker's heartbeat source.
    pub progress: Option<ProgressHook>,
    /// The multiplexed-transport testbed, spawned on first use and shared
    /// by every worker thread for the engine's lifetime (the reactor
    /// multiplexes all of their cases over one event loop).
    async_testbed: std::sync::OnceLock<Result<hdiff_net::AsyncTestbed, hdiff_net::NetError>>,
}

impl DiffEngine {
    /// Builds an engine over the standard Fig. 6 environment.
    pub fn standard() -> DiffEngine {
        DiffEngine::with_workflow(Workflow::standard(), hdiff_servers::products())
    }

    /// Builds an engine over custom profiles (proxies, backends).
    pub fn new(proxies: Vec<ParserProfile>, backends: Vec<ParserProfile>) -> DiffEngine {
        let mut profiles = proxies.clone();
        for b in &backends {
            if !profiles.iter().any(|p| p.name == b.name) {
                profiles.push(b.clone());
            }
        }
        DiffEngine::with_workflow(Workflow::new(proxies, backends), profiles)
    }

    fn with_workflow(workflow: Workflow, profiles: Vec<ParserProfile>) -> DiffEngine {
        DiffEngine {
            workflow,
            profiles,
            threads: 0,
            fault_plan: FaultPlan::disabled(),
            max_retries: 2,
            step_budget: 4096,
            checkpoint_every: 64,
            stop_after_chunks: None,
            syntax_oracle: None,
            grammar_coverage: None,
            transport: Transport::Sim,
            base_telemetry: hdiff_obs::Telemetry::default(),
            progress: None,
            async_testbed: std::sync::OnceLock::new(),
        }
    }

    /// The shared multiplexed-transport testbed, spawning it on first
    /// use. A spawn failure (unsupported platform, exhausted fds) is
    /// cached and surfaces as a per-case net error, same as a blocking
    /// testbed failure.
    fn async_testbed(&self) -> Result<&hdiff_net::AsyncTestbed, hdiff_net::NetError> {
        self.async_testbed
            .get_or_init(|| {
                hdiff_net::AsyncTestbed::new(self.workflow.backends(), self.workflow.proxies())
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The workflow in use.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// The thread count actually used.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// Runs the full analysis over a batch of test cases.
    pub fn run(&self, cases: &[TestCase]) -> RunSummary {
        let mut completed = BTreeMap::new();
        self.execute(cases, &mut completed, None, 0)
            .expect("no I/O happens without a checkpoint path");
        self.summarize(cases, &completed)
    }

    /// Like [`DiffEngine::run`], but checkpoints progress to `path` every
    /// [`DiffEngine::checkpoint_every`] cases. If `path` already holds a
    /// checkpoint from an interrupted campaign, its completed cases are
    /// loaded and skipped; the resumed run converges to the identical
    /// summary an uninterrupted run produces.
    pub fn run_with_checkpoint(&self, cases: &[TestCase], path: &Path) -> io::Result<RunSummary> {
        let (mut completed, generation) = if path.exists() {
            checkpoint::load_with_generation(path)?
        } else {
            (BTreeMap::new(), 0)
        };
        self.execute(cases, &mut completed, Some(path), generation)?;
        Ok(self.summarize(cases, &completed))
    }

    /// The shard-worker entry point: like
    /// [`DiffEngine::run_with_checkpoint`], but starts from a
    /// pre-loaded, tolerant [`checkpoint::ResumeState`] (see
    /// [`checkpoint::resume_state`]) instead of erroring on a corrupt or
    /// stale file, and always writes a final checkpoint — even when the
    /// resume already covered every case — so the supervisor can merge
    /// the shard from its file alone.
    pub fn run_resuming(
        &self,
        cases: &[TestCase],
        resume: checkpoint::ResumeState,
        path: &Path,
    ) -> io::Result<RunSummary> {
        let checkpoint::ResumeState { mut completed, generation, .. } = resume;
        let generation = self.execute(cases, &mut completed, Some(path), generation)?;
        checkpoint::save_with_generation(path, &completed, generation + 1)?;
        if let Some(hook) = &self.progress {
            hook.report(ChunkProgress { completed: completed.len(), generation: generation + 1 });
        }
        Ok(self.summarize(cases, &completed))
    }

    /// Assembles a [`RunSummary`] from records produced elsewhere (the
    /// fleet supervisor merging per-shard checkpoints). Same corpus-order
    /// reassembly as every in-process run, so the result is identical to
    /// running `cases` directly.
    pub fn summarize_records(
        &self,
        cases: &[TestCase],
        completed: &BTreeMap<u64, CaseRecord>,
    ) -> RunSummary {
        self.summarize(cases, completed)
    }

    /// Executes every not-yet-completed case, chunk by chunk, saving a
    /// checkpoint (when a path is given) at each chunk boundary with a
    /// generation counter continuing from `generation`. Returns the last
    /// generation written.
    fn execute(
        &self,
        cases: &[TestCase],
        completed: &mut BTreeMap<u64, CaseRecord>,
        ckpt: Option<&Path>,
        mut generation: u64,
    ) -> io::Result<u64> {
        let pending: Vec<&TestCase> =
            cases.iter().filter(|c| !completed.contains_key(&c.uuid)).collect();
        // Resolve the thread count once per run; `available_parallelism`
        // is a syscall and the answer cannot change between chunks.
        let threads = self.effective_threads();
        for (i, chunk) in pending.chunks(self.checkpoint_every.max(1)).enumerate() {
            if self.stop_after_chunks.is_some_and(|n| i >= n) {
                break;
            }
            for record in self.run_chunk(chunk, threads) {
                completed.insert(record.uuid, record);
            }
            if let Some(path) = ckpt {
                generation += 1;
                checkpoint::save_with_generation(path, completed, generation)?;
            }
            if let Some(hook) = &self.progress {
                hook.report(ChunkProgress { completed: completed.len(), generation });
            }
        }
        Ok(generation)
    }

    /// Runs one chunk's cases across the worker threads. Workers steal
    /// cases from a shared cursor (see [`schedule::run_stealing`]), so a
    /// stalled-read straggler occupies one thread while the rest drain
    /// the chunk, and a chunk smaller than the thread count spawns only
    /// as many workers as it has cases.
    fn run_chunk(&self, chunk: &[&TestCase], threads: usize) -> Vec<CaseRecord> {
        schedule::run_stealing(chunk, threads, |case| self.run_case_resilient(case))
    }

    /// Runs one case under `catch_unwind` with a fresh fault session per
    /// attempt, retrying transient faults up to [`DiffEngine::max_retries`]
    /// times. A panic quarantines the case (recorded, skipped, never
    /// fatal); a transient fault that survives every retry maps to its
    /// [`CaseError`]; truncation/garbling faults are behavioral (no error)
    /// and surface through degradation findings instead.
    fn run_case_resilient(&self, case: &TestCase) -> CaseRecord {
        let (mut record, telemetry) = hdiff_obs::with_case(case.uuid, || {
            let _case = hdiff_obs::span("case");
            self.run_case_attempts(case)
        });
        record.telemetry = telemetry;
        record
    }

    /// The attempt loop of [`DiffEngine::run_case_resilient`], running
    /// inside the case's telemetry scope.
    fn run_case_attempts(&self, case: &TestCase) -> CaseRecord {
        let injector = FaultInjector::new(self.fault_plan.clone());
        let mut retries = 0u32;
        let mut backoff_units = 0u64;
        loop {
            let session = FaultSession::new(&injector, case.uuid, retries, self.step_budget);
            let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
                let outcome = {
                    let _execute = hdiff_obs::span("stage.chain-execute");
                    let started = std::time::Instant::now();
                    let outcome = match self.transport {
                        Transport::Sim => Ok(self.workflow.run_case_faulted(case, Some(&session))),
                        Transport::Tcp => try_run_case_tcp(&self.workflow, case, Some(&session)),
                        Transport::TcpAsync => self.async_testbed().and_then(|testbed| {
                            try_run_case_tcp_async(&self.workflow, case, Some(&session), testbed)
                        }),
                    };
                    let rtt = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    match self.transport {
                        Transport::Sim => hdiff_obs::observe("transport.rtt.sim", rtt),
                        Transport::Tcp => hdiff_obs::observe("transport.rtt.tcp", rtt),
                        Transport::TcpAsync => hdiff_obs::observe("transport.rtt.tcp-async", rtt),
                    }
                    match outcome {
                        Ok(o) => o,
                        Err(net) => return Err(net),
                    }
                };
                let _detect = hdiff_obs::span("stage.detect");
                let replayed = outcome.chains.iter().any(|c| !c.replays.is_empty());
                let findings =
                    detect_case_with_oracle(&self.profiles, &outcome, self.syntax_oracle.as_ref());
                let degradations = detect_degradation(&outcome);
                Ok((
                    outcome.fault_events,
                    outcome.budget_exhausted,
                    replayed,
                    findings,
                    degradations,
                ))
            }));
            let (events, budget_exhausted, replayed, findings, degradations) = match attempt {
                Err(payload) => {
                    hdiff_obs::count("case.quarantined", 1);
                    return CaseRecord {
                        uuid: case.uuid,
                        replayed: false,
                        retries,
                        backoff_units,
                        quarantined: true,
                        error: Some(CaseError::Panic(panic_message(&payload))),
                        findings: Vec::new(),
                        degradations: Vec::new(),
                        telemetry: hdiff_obs::Telemetry::default(),
                    };
                }
                // The loopback testbed itself failed (bind/accept/spawn):
                // a recorded, non-quarantining outcome — the case may
                // succeed on a respawned worker or a later campaign.
                Ok(Err(net)) => {
                    hdiff_obs::count("case.net-error", 1);
                    return CaseRecord {
                        uuid: case.uuid,
                        replayed: false,
                        retries,
                        backoff_units,
                        quarantined: false,
                        error: Some(CaseError::Io(net.to_string())),
                        findings: Vec::new(),
                        degradations: Vec::new(),
                        telemetry: hdiff_obs::Telemetry::default(),
                    };
                }
                Ok(Ok(r)) => r,
            };
            hdiff_obs::count("fault.events", events.len() as u64);

            let transient = events.iter().map(|e| e.kind).find(|k| k.is_transient());
            if let Some(kind) = transient {
                if retries < self.max_retries {
                    retries += 1;
                    backoff_units += 1u64 << retries.min(16);
                    hdiff_obs::count("case.retry", 1);
                    continue;
                }
                let error = match kind {
                    FaultKind::Transient5xx => {
                        CaseError::Fault(format!("transient 5xx persisted after {retries} retries"))
                    }
                    FaultKind::ConnReset => {
                        CaseError::Io(format!("connection reset persisted after {retries} retries"))
                    }
                    _ => CaseError::Budget(format!(
                        "stalled read exhausted the step budget after {retries} retries"
                    )),
                };
                return CaseRecord {
                    uuid: case.uuid,
                    replayed,
                    retries,
                    backoff_units,
                    quarantined: false,
                    error: Some(error),
                    findings,
                    degradations,
                    telemetry: hdiff_obs::Telemetry::default(),
                };
            }

            let error =
                budget_exhausted.then(|| CaseError::Budget("step budget exhausted".to_string()));
            return CaseRecord {
                uuid: case.uuid,
                replayed,
                retries,
                backoff_units,
                quarantined: false,
                error,
                findings,
                degradations,
                telemetry: hdiff_obs::Telemetry::default(),
            };
        }
    }

    /// Assembles the summary from completed records, iterating the input
    /// corpus in order so the result is identical however (and across how
    /// many interruptions) the records were produced.
    fn summarize(&self, cases: &[TestCase], completed: &BTreeMap<u64, CaseRecord>) -> RunSummary {
        let mut findings = Vec::new();
        let mut degradations = Vec::new();
        let mut replayed_cases = 0usize;
        let mut errors = 0usize;
        let mut retries = 0usize;
        let mut backoff_units = 0u64;
        let mut quarantined = Vec::new();
        let mut executed = 0usize;
        // Same reassembly discipline as case results: merge per-case
        // telemetry in input-corpus order, so the merged view is
        // identical however many threads (or interruptions) produced the
        // records.
        let mut merged = self.base_telemetry.clone();
        let mut slowest: Vec<(u64, u64)> = Vec::new();
        for case in cases {
            let Some(r) = completed.get(&case.uuid) else { continue };
            executed += 1;
            findings.extend(r.findings.iter().cloned());
            degradations.extend(r.degradations.iter().cloned());
            replayed_cases += usize::from(r.replayed);
            errors += usize::from(r.error.is_some());
            retries += r.retries as usize;
            backoff_units += r.backoff_units;
            if r.quarantined {
                quarantined.push(r.uuid);
            }
            merged.merge(&r.telemetry);
            if let Some(span) = r.telemetry.spans.get("case") {
                slowest.push((r.uuid, span.total_ns));
            }
        }
        quarantined.sort_unstable();
        // Ties break toward the lower uuid so the ranking is stable.
        slowest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        slowest.truncate(RunTelemetry::SLOWEST_KEPT);

        let mut sr_violations = check_all(&self.profiles, cases);
        if let Some(oracle) = &self.syntax_oracle {
            sr_violations.extend(check_host_conformance(oracle, &self.profiles, cases));
        }
        let pairs = PairMatrix::from_findings(&findings);
        let verdicts = Verdicts::from_findings(&findings, &self.profiles);

        RunSummary {
            cases: executed,
            replayed_cases,
            findings,
            degradations,
            sr_violations,
            pairs,
            verdicts,
            errors,
            retries,
            backoff_units,
            quarantined,
            coverage: self.grammar_coverage,
            transport: self.transport,
            telemetry: RunTelemetry { merged, slowest },
            shard_errors: Vec::new(),
            topology: ShardTopology::in_process(),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_gen::{catalog, AttackClass, Origin, TestCase};

    fn catalog_cases() -> Vec<TestCase> {
        let mut out = Vec::new();
        let mut uuid = 1u64;
        for entry in catalog::catalog() {
            for (req, note) in &entry.requests {
                out.push(TestCase {
                    uuid,
                    request: req.clone(),
                    assertions: Vec::new(),
                    origin: Origin::Catalog(entry.id.to_string()),
                    note: note.clone(),
                });
                uuid += 1;
            }
        }
        out
    }

    #[test]
    fn catalog_run_produces_findings_of_all_three_classes() {
        let engine = DiffEngine::standard();
        let summary = engine.run(&catalog_cases());
        assert!(summary.cases >= 14);
        for class in AttackClass::ALL {
            assert!(!summary.findings_of(class).is_empty(), "no findings for {class}");
        }
        assert!(summary.replayed_cases > 0);
        // No faults injected: the resilience counters stay clean.
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.retries, 0);
        assert!(summary.quarantined.is_empty());
        assert!(summary.degradations.is_empty());
    }

    #[test]
    fn catalog_run_reproduces_key_pairs() {
        let engine = DiffEngine::standard();
        let summary = engine.run(&catalog_cases());
        // The two pairs the paper names for HoT.
        assert!(
            summary.pairs.contains(AttackClass::Hot, "varnish", "iis"),
            "{:?}",
            summary.pairs.pairs(AttackClass::Hot)
        );
        assert!(
            summary.pairs.contains(AttackClass::Hot, "nginx", "weblogic"),
            "{:?}",
            summary.pairs.pairs(AttackClass::Hot)
        );
        // All six proxies must be CPDoS-affected.
        assert_eq!(
            summary.pairs.fronts(AttackClass::Cpdos).len(),
            6,
            "{:?}",
            summary.pairs.fronts(AttackClass::Cpdos)
        );
    }

    #[test]
    fn tcp_async_campaign_matches_the_sim_findings() {
        let cases = catalog_cases();
        let sim = DiffEngine::standard().run(&cases);
        let mut engine = DiffEngine::standard();
        engine.transport = Transport::TcpAsync;
        engine.threads = 2;
        let wire = engine.run(&cases);
        assert_eq!(sim.findings, wire.findings);
        assert_eq!(sim.pairs, wire.pairs);
        assert_eq!(sim.verdicts, wire.verdicts);
        assert_eq!(wire.transport, Transport::TcpAsync);
        assert_eq!(wire.errors, 0);
    }

    #[test]
    fn single_thread_and_multi_thread_agree() {
        let cases = catalog_cases();
        let mut e1 = DiffEngine::standard();
        e1.threads = 1;
        let mut e4 = DiffEngine::standard();
        e4.threads = 4;
        let s1 = e1.run(&cases);
        let s4 = e4.run(&cases);
        assert_eq!(s1, s4);
    }

    #[test]
    fn faulted_runs_are_deterministic_per_seed() {
        let cases = catalog_cases();
        let mut a = DiffEngine::standard();
        a.fault_plan = FaultPlan::new(42, 35);
        let mut b = DiffEngine::standard();
        b.fault_plan = FaultPlan::new(42, 35);
        b.threads = 2;
        assert_eq!(a.run(&cases), b.run(&cases));

        let mut c = DiffEngine::standard();
        c.fault_plan = FaultPlan::new(43, 35);
        assert_ne!(a.run(&cases), c.run(&cases), "a different seed reschedules faults");
    }

    #[test]
    fn stall_read_stragglers_do_not_change_the_summary() {
        // A stall-read-only fault plan makes some cases burn their whole
        // step budget (slow) while others finish instantly — the skew the
        // work-stealing scheduler exists for. The multi-threaded run must
        // complete and agree byte-for-byte with the single-threaded one.
        let cases = catalog_cases();
        let plan = FaultPlan::new(11, 70).with_kinds(&[FaultKind::StallRead]);
        let mut one = DiffEngine::standard();
        one.fault_plan = plan.clone();
        one.threads = 1;
        let mut many = DiffEngine::standard();
        many.fault_plan = plan;
        many.threads = 3;
        let s1 = one.run(&cases);
        let s3 = many.run(&cases);
        assert_eq!(s1, s3);
        assert!(s1.errors > 0, "a 70% stall-read rate must exhaust some step budgets: {s1:?}");
    }

    #[test]
    fn syntax_oracle_annotates_hot_findings_and_audits_hosts() {
        let grammar = hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze(&hdiff_corpus::core_documents())
            .grammar;
        let cases = catalog_cases();
        let mut engine = DiffEngine::standard();
        engine.syntax_oracle = Some(crate::syntax::SyntaxOracle::new(&grammar));
        let summary = engine.run(&cases);
        // Pair findings (Model HoT proper) carry per-view verdicts;
        // Model-0 single-implementation deviations have no pair of views.
        let hot: Vec<_> = summary
            .findings_of(AttackClass::Hot)
            .into_iter()
            .filter(|f| f.pair().is_some())
            .collect();
        assert!(!hot.is_empty());
        assert!(
            hot.iter().all(|f| f.evidence.contains("Host ABNF")),
            "oracle-run HoT pair findings must carry conformance verdicts: {hot:?}"
        );
        assert!(
            hot.iter().any(|f| f.evidence.contains("proxy view invalid")),
            "the invalid-host catalog entries must be called out: {hot:?}"
        );
        assert!(
            summary.sr_violations.iter().any(|v| v.sr_id == "rfc7230:host-abnf"),
            "catalog contains invalid-host cases some product accepts"
        );

        // Without the oracle the same run carries no annotations.
        let plain = DiffEngine::standard().run(&cases);
        assert!(plain
            .findings_of(AttackClass::Hot)
            .iter()
            .all(|f| !f.evidence.contains("Host ABNF")));
        assert!(!plain.sr_violations.iter().any(|v| v.sr_id == "rfc7230:host-abnf"));
    }

    #[test]
    fn fault_campaign_surfaces_degradations_and_counters() {
        let cases = catalog_cases();
        let mut engine = DiffEngine::standard();
        engine.fault_plan = FaultPlan::new(7, 60);
        let summary = engine.run(&cases);
        assert!(
            !summary.degradations.is_empty(),
            "a 60% fault rate over the catalog must catch divergent proxy reactions"
        );
        assert!(summary.retries > 0, "transient faults must be retried");
        for d in &summary.degradations {
            assert!(d.front_a < d.front_b, "pairs are ordered: {d:?}");
        }
    }
}
