//! Telemetry persistence: the JSON shape checkpoints and summary files
//! use for [`hdiff_obs::Telemetry`], the campaign summary file
//! `--summary-out` writes, and the JSONL trace `--trace-out` writes —
//! everything `hdiff report` reads back.
//!
//! All of it rides the same hand-rolled [`crate::json`] codec the
//! checkpoint and replay formats use. Trace events are *not* persisted
//! in checkpoints (they are a profiling artifact, not campaign state);
//! histograms are stored sparsely as `[bucket, population]` pairs.

use std::io;
use std::path::Path;

use hdiff_obs::{EventKind, Histogram, ReportInput, SpanStat, Telemetry, TraceEvent, HIST_BUCKETS};

use crate::checkpoint::data_err;
use crate::json::{push_json_str, Json, Parser};
use crate::runner::{RunSummary, RunTelemetry};

// ---------------------------------------------------------------------------
// Telemetry value <-> JSON
// ---------------------------------------------------------------------------

pub(crate) fn write_telemetry(out: &mut String, t: &Telemetry) {
    out.push_str("{\"spans\":[");
    for (i, (name, s)) in t.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(out, name);
        out.push_str(&format!(
            ",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            s.count, s.total_ns, s.min_ns, s.max_ns
        ));
    }
    out.push_str("],\"counters\":[");
    for (i, (name, total)) in t.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_json_str(out, name);
        out.push_str(&format!(",{total}]"));
    }
    out.push_str("],\"hists\":[");
    for (i, (name, h)) in t.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(out, name);
        out.push_str(&format!(",\"count\":{},\"total_ns\":{},\"buckets\":[", h.count, h.total_ns));
        let mut first = true;
        for (bucket, &population) in h.buckets.iter().enumerate() {
            if population == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{bucket},{population}]"));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

pub(crate) fn read_telemetry(v: &Json) -> io::Result<Telemetry> {
    let mut t = Telemetry::default();
    for s in v.get("spans").and_then(Json::as_arr).unwrap_or_default() {
        let name = s
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| data_err("telemetry span without a name"))?;
        let field = |key: &str| {
            s.get(key).and_then(Json::as_u64).ok_or_else(|| data_err(format!("span {key}")))
        };
        t.spans.insert(
            name.to_string(),
            SpanStat {
                count: field("count")?,
                total_ns: field("total_ns")?,
                min_ns: field("min_ns")?,
                max_ns: field("max_ns")?,
            },
        );
    }
    for c in v.get("counters").and_then(Json::as_arr).unwrap_or_default() {
        let pair = c.as_arr().ok_or_else(|| data_err("telemetry counter shape"))?;
        let (name, total) = match pair {
            [Json::Str(name), total] => {
                (name, total.as_u64().ok_or_else(|| data_err("counter total"))?)
            }
            _ => return Err(data_err("telemetry counter shape")),
        };
        t.counters.insert(name.clone(), total);
    }
    for h in v.get("hists").and_then(Json::as_arr).unwrap_or_default() {
        let name = h
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| data_err("telemetry hist without a name"))?;
        let mut hist = Histogram {
            count: h.get("count").and_then(Json::as_u64).ok_or_else(|| data_err("hist count"))?,
            total_ns: h
                .get("total_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| data_err("hist total_ns"))?,
            ..Histogram::default()
        };
        for b in h.get("buckets").and_then(Json::as_arr).unwrap_or_default() {
            let pair = b.as_arr().ok_or_else(|| data_err("hist bucket shape"))?;
            let (bucket, population) = match pair {
                [i, p] => (
                    i.as_u64().ok_or_else(|| data_err("hist bucket index"))? as usize,
                    p.as_u64().ok_or_else(|| data_err("hist bucket population"))?,
                ),
                _ => return Err(data_err("hist bucket shape")),
            };
            if bucket >= HIST_BUCKETS {
                return Err(data_err(format!("hist bucket {bucket} out of range")));
            }
            hist.buckets[bucket] = population;
        }
        t.hists.insert(name.to_string(), hist);
    }
    Ok(t)
}

// ---------------------------------------------------------------------------
// Campaign summary file (`--summary-out`, read by `hdiff report`)
// ---------------------------------------------------------------------------

/// Marker distinguishing a summary file from any other JSON document.
const SUMMARY_KIND: &str = "hdiff-summary";

/// Serializes a campaign summary's telemetry view to a JSON string.
pub fn summary_to_json(summary: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str("{\"kind\":");
    push_json_str(&mut out, SUMMARY_KIND);
    out.push_str(&format!(
        ",\"transport\":\"{}\",\"cases\":{},\"findings\":{},\"errors\":{},\"retries\":{},\"backoff_units\":{}",
        summary.transport,
        summary.cases,
        summary.findings.len(),
        summary.errors,
        summary.retries,
        summary.backoff_units
    ));
    out.push_str(&format!(
        ",\"shards\":{},\"shard_respawns\":{},\"shard_errors\":{}",
        summary.topology.shards,
        summary.topology.total_respawns(),
        summary.shard_errors.len()
    ));
    out.push_str(",\"slowest\":[");
    for (i, (uuid, ns)) in summary.telemetry.slowest.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{uuid},{ns}]"));
    }
    out.push_str("],\"telemetry\":");
    write_telemetry(&mut out, &summary.telemetry.merged);
    out.push_str("}\n");
    out
}

/// Writes [`summary_to_json`] to `path`.
pub fn write_summary(path: &Path, summary: &RunSummary) -> io::Result<()> {
    std::fs::write(path, summary_to_json(summary).as_bytes())
}

// ---------------------------------------------------------------------------
// JSONL trace (`--trace-out`, read by `hdiff report`)
// ---------------------------------------------------------------------------

/// Serializes the trace events as JSONL, one event per line, in the
/// replay-stable `(case, seq)` order.
pub fn trace_to_jsonl(t: &Telemetry) -> String {
    let mut out = String::new();
    for e in t.sorted_events() {
        out.push_str(&format!(
            "{{\"case\":{},\"seq\":{},\"kind\":\"{}\",\"name\":",
            e.case,
            e.seq,
            e.kind.as_str()
        ));
        push_json_str(&mut out, &e.name);
        out.push_str(&format!(",\"value\":{}}}\n", e.value));
    }
    out
}

/// Writes [`trace_to_jsonl`] to `path`.
pub fn write_trace(path: &Path, t: &Telemetry) -> io::Result<()> {
    std::fs::write(path, trace_to_jsonl(t).as_bytes())
}

// ---------------------------------------------------------------------------
// `hdiff report` input loading
// ---------------------------------------------------------------------------

fn parse_trace_line(line: &[u8]) -> io::Result<TraceEvent> {
    let v = Parser::new(line).value()?;
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .and_then(EventKind::parse)
        .ok_or_else(|| data_err("trace event without a valid kind"))?;
    let field = |key: &str| {
        v.get(key).and_then(Json::as_u64).ok_or_else(|| data_err(format!("trace event {key}")))
    };
    Ok(TraceEvent {
        case: field("case")?,
        seq: field("seq")?,
        kind,
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| data_err("trace event name"))?
            .to_string(),
        value: field("value")?,
    })
}

/// Rebuilds a merged [`Telemetry`] from trace events (spans and
/// histograms re-aggregate; per-case wall time reassembles from each
/// case's `case` span events).
fn telemetry_from_events(events: &[TraceEvent]) -> (Telemetry, Vec<(u64, u64)>) {
    let mut t = Telemetry::default();
    let mut case_ns: Vec<(u64, u64)> = Vec::new();
    for e in events {
        match e.kind {
            EventKind::Span => {
                t.record_span(&e.name, e.value);
                if e.name == "case" {
                    case_ns.push((e.case, e.value));
                }
            }
            EventKind::Counter => t.record_count(&e.name, e.value),
            EventKind::Hist => t.record_hist(&e.name, e.value),
        }
    }
    case_ns.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    case_ns.truncate(RunTelemetry::SLOWEST_KEPT);
    (t, case_ns)
}

/// Loads either artifact `hdiff report` accepts — a summary file written
/// by [`write_summary`] or a JSONL trace written by [`write_trace`] —
/// and produces the renderer's input. The two are distinguished by
/// content (`"kind":"hdiff-summary"`), not extension.
pub fn load_report(path: &Path) -> io::Result<ReportInput> {
    let bytes = std::fs::read(path)?;
    if let Ok(v) = Parser::new(&bytes).value() {
        if v.get("kind").and_then(Json::as_str) == Some(SUMMARY_KIND) {
            let telemetry = read_telemetry(
                v.get("telemetry").ok_or_else(|| data_err("summary without telemetry"))?,
            )?;
            let slowest = v
                .get("slowest")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(|pair| match pair.as_arr() {
                    Some([uuid, ns]) => Ok((
                        uuid.as_u64().ok_or_else(|| data_err("slowest uuid"))?,
                        ns.as_u64().ok_or_else(|| data_err("slowest ns"))?,
                    )),
                    _ => Err(data_err("slowest pair shape")),
                })
                .collect::<io::Result<Vec<_>>>()?;
            return Ok(ReportInput {
                title: format!("campaign summary: {}", path.display()),
                telemetry,
                slowest,
                top_n: RunTelemetry::SLOWEST_KEPT,
            });
        }
    }
    // Not a summary document: treat as a JSONL trace.
    let mut events = Vec::new();
    for (lineno, line) in bytes.split(|b| *b == b'\n').enumerate() {
        if line.iter().all(u8::is_ascii_whitespace) {
            continue;
        }
        let event = parse_trace_line(line)
            .map_err(|e| data_err(format!("trace line {}: {e}", lineno + 1)))?;
        events.push(event);
    }
    if events.is_empty() {
        return Err(data_err("not a summary file and no trace events found"));
    }
    let (telemetry, slowest) = telemetry_from_events(&events);
    Ok(ReportInput {
        title: format!("campaign trace: {}", path.display()),
        telemetry,
        slowest,
        top_n: RunTelemetry::SLOWEST_KEPT,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_telemetry() -> Telemetry {
        let mut t = Telemetry::default();
        t.record_span("case", 5_000);
        t.record_span("stage.detect", 2_000);
        t.record_span("stage.detect", 3_000);
        t.record_count("memo.hit", 41);
        t.record_count("fault.events", 3);
        t.record_hist("transport.rtt.sim", 900);
        t.record_hist("transport.rtt.sim", 70_000);
        t
    }

    #[test]
    fn telemetry_roundtrips_through_the_codec() {
        let t = sample_telemetry();
        let mut out = String::new();
        write_telemetry(&mut out, &t);
        let parsed = Parser::new(out.as_bytes()).value().unwrap();
        let back = read_telemetry(&parsed).unwrap();
        assert_eq!(t, back);
        // The codec is exact beyond shape equality: durations survive.
        assert_eq!(back.spans["stage.detect"].total_ns, 5_000);
        assert_eq!(back.spans["stage.detect"].min_ns, 2_000);
        assert_eq!(back.hists["transport.rtt.sim"].total_ns, 70_900);
    }

    #[test]
    fn empty_telemetry_roundtrips() {
        let mut out = String::new();
        write_telemetry(&mut out, &Telemetry::default());
        let parsed = Parser::new(out.as_bytes()).value().unwrap();
        assert!(read_telemetry(&parsed).unwrap().is_empty());
    }

    #[test]
    fn trace_jsonl_roundtrips_into_a_report_input() {
        let mut t = Telemetry::default();
        t.events.push(TraceEvent {
            case: 2,
            seq: 0,
            kind: EventKind::Span,
            name: "case".into(),
            value: 1_000,
        });
        t.events.push(TraceEvent {
            case: 1,
            seq: 0,
            kind: EventKind::Counter,
            name: "memo.hit".into(),
            value: 7,
        });
        let dir = std::env::temp_dir().join("hdiff-trace-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        write_trace(&path, &t).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"case\":1"), "events are sorted by (case, seq): {text}");
        let input = load_report(&path).unwrap();
        assert_eq!(input.telemetry.counters["memo.hit"], 7);
        assert_eq!(input.slowest, vec![(2, 1_000)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unrecognized_files_are_an_error() {
        let dir = std::env::temp_dir().join("hdiff-report-garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.txt");
        std::fs::write(&path, b"not a summary\nnot a trace\n").unwrap();
        assert!(load_report(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
