//! The protocol-generic campaign core.
//!
//! HDiff's methodology — extract grammars and requirements from an RFC
//! family, generate seed cases, fan them out over behavioral profiles,
//! diff the observables, minimize and freeze what diverges — is not
//! HTTP-specific, but the machinery grew up HTTP-hardwired. [`Protocol`]
//! is the seam: one trait bundling everything the campaign driver needs
//! to know about a workload (its grammar set, its seed corpus, how to
//! execute one case into findings + behavior digests, how to classify
//! and minimize a finding, and how to freeze a replay bundle).
//!
//! [`run_protocol_campaign`] is the driver every workload shares. It is
//! the exact shape the h2 downgrade campaign pioneered — deterministic
//! work-stealing fan-out, findings merged in corpus order, first finding
//! of each class tag minimized and promoted — hoisted above the protocol.
//! The h2 downgrade surface itself now runs through it (see
//! [`crate::downgrade::DowngradeProtocol`]), HTTP/1.1 is available
//! behind it as [`crate::http1::Http1Protocol`], and the cookie workload
//! (`hdiff-cookie`) is the first non-HTTP instance.
//!
//! Protocol-keyed [`ReplayBundle`]s carry a `protocol` name so `hdiff
//! replay` can route them back to the instance that recorded them; the
//! key is absent for classic h1/h2 bundles, keeping the golden corpora
//! byte-identical.

use std::collections::BTreeSet;
use std::io;
use std::path::PathBuf;

use crate::findings::Finding;
use crate::replay::{ReplayBundle, ReplayReport};
use crate::schedule;
use crate::transport::Transport;
use crate::Frontend;

/// One seed case of a protocol workload: a stable identifier, a
/// human-readable description (carried into promoted bundles), and the
/// exact client bytes the campaign executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoCase {
    /// Stable identifier; campaign origins are `<protocol>:<id>`.
    pub id: String,
    /// What the case demonstrates.
    pub description: String,
    /// The encoded case (a protocol-specific byte form that
    /// [`Protocol::execute`] parses back).
    pub bytes: Vec<u8>,
}

/// One implementation's observable view of a case, reduced to a metrics
/// vector: the accept/reject verdict plus named observables the
/// detection models compare across views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoView {
    /// Name of the behavioral profile that produced this view.
    pub view: String,
    /// Whether the profile accepted the case.
    pub accepted: bool,
    /// Status code (or protocol-specific equivalent; 0 when none).
    pub status: u16,
    /// Named observables, in a stable order.
    pub metrics: Vec<(String, String)>,
}

/// Everything one executed case produced: per-profile views, the
/// detection model's findings, and behavior digests (the determinism
/// anchor replay bundles freeze).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoExecution {
    /// Per-profile observable views.
    pub views: Vec<ProtoView>,
    /// Findings the workload's detection models flagged.
    pub findings: Vec<Finding>,
    /// Labelled FNV-1a digests of every view's behavior.
    pub digests: Vec<(String, u64)>,
}

/// A differential workload: grammars, seed corpus, execution, detection,
/// minimization, and bundle recording for one protocol family.
///
/// Implementations must be deterministic: same bytes, same
/// [`ProtoExecution`], regardless of thread count or call order — that
/// is what makes [`run_protocol_campaign`] thread-invariant.
pub trait Protocol: Sync {
    /// Stable workload name: the campaign origin prefix, the promoted
    /// bundle name prefix, and the `protocol` key in replay bundles.
    fn name(&self) -> &'static str;

    /// Base for case UUIDs, distinct per workload so merged reports stay
    /// attributable.
    fn uuid_base(&self) -> u64;

    /// The ABNF grammar set behind the workload, as `(rule-set name,
    /// grammar)` pairs. Empty for binary-framed surfaces with no ABNF
    /// grammar (e.g. the h2 downgrade front).
    fn grammars(&self) -> Vec<(String, hdiff_abnf::Grammar)>;

    /// The seed corpus, in canonical (deterministic) order.
    fn seed_cases(&self) -> Vec<ProtoCase>;

    /// Executes one case in-process.
    fn execute(&self, uuid: u64, origin: &str, bytes: &[u8]) -> ProtoExecution;

    /// The divergence-class tag of a finding this workload emitted
    /// (conventionally an evidence prefix `<name>:<tag>: …`), or `None`
    /// for findings from other detectors.
    fn finding_tag(&self, f: &Finding) -> Option<String>;

    /// Structurally minimizes `bytes` while the `target` finding keeps
    /// reproducing (same class, tag, front, back). Must return bytes
    /// that still trigger the finding; returning the input unchanged is
    /// always sound.
    fn minimize(&self, bytes: &[u8], target: &Finding) -> Vec<u8>;

    /// Freezes `bytes` as a replay bundle. The default executes the case
    /// and records a protocol-keyed bundle that [`ReplayBundle::replay_protocol`]
    /// re-verifies; workloads with a richer bespoke format (h1's
    /// fault-aware bundles, h2's frontend-keyed ones) override this.
    fn record_bundle(
        &self,
        name: &str,
        description: &str,
        uuid: u64,
        origin: &str,
        bytes: &[u8],
    ) -> ReplayBundle {
        let exec = self.execute(uuid, origin, bytes);
        ReplayBundle {
            name: name.to_string(),
            description: description.to_string(),
            uuid,
            origin: origin.to_string(),
            request: bytes.to_vec(),
            fault: None,
            findings: exec.findings,
            digests: exec.digests,
            transport: Transport::Sim,
            frontend: Frontend::H1,
            protocol: Some(self.name().to_string()),
        }
    }
}

impl ReplayBundle {
    /// Re-executes a protocol-keyed bundle against `p` and diffs
    /// verdicts and digests, exactly like [`ReplayBundle::replay`] does
    /// for h1/h2 bundles.
    pub fn replay_protocol(&self, p: &dyn Protocol) -> ReplayReport {
        let exec = p.execute(self.uuid, &self.origin, &self.request);
        ReplayReport {
            bundle: self.name.clone(),
            missing: self.findings.iter().filter(|f| !exec.findings.contains(f)).cloned().collect(),
            unexpected: exec
                .findings
                .iter()
                .filter(|f| !self.findings.contains(f))
                .cloned()
                .collect(),
            drifted: crate::replay::diff_digests(&self.digests, &exec.digests),
        }
    }
}

/// Options for [`run_protocol_campaign`].
#[derive(Debug, Clone, Default)]
pub struct ProtocolCampaignOptions {
    /// Worker threads for the case fan-out (`0`/`1` runs inline).
    pub threads: usize,
    /// When set, the first finding of each class tag is minimized and
    /// promoted to a replay bundle in this directory.
    pub promote_dir: Option<PathBuf>,
}

/// What a protocol campaign produced.
#[derive(Debug, Clone)]
pub struct ProtocolSummary {
    /// The workload's [`Protocol::name`].
    pub protocol: String,
    /// Seed cases executed.
    pub cases: usize,
    /// Every finding, in corpus order.
    pub findings: Vec<Finding>,
    /// Sorted distinct class tags observed.
    pub classes: Vec<String>,
    /// Replay bundles written (when `promote_dir` was set).
    pub promoted: Vec<PathBuf>,
}

/// Runs a workload's seed corpus through its differential matrix: the
/// shared campaign driver. Deterministic and invariant in `threads`
/// (cases fan out via [`schedule::run_stealing`], findings merge in
/// corpus order); when promoting, the first finding of each class tag is
/// minimized and frozen as `<protocol>-<tag>.json`.
pub fn run_protocol_campaign(
    p: &dyn Protocol,
    opts: &ProtocolCampaignOptions,
) -> io::Result<ProtocolSummary> {
    let seeds = p.seed_cases();
    let cases: Vec<(u64, ProtoCase)> =
        seeds.into_iter().enumerate().map(|(i, c)| (p.uuid_base() + i as u64, c)).collect();

    let per_case: Vec<Vec<Finding>> =
        schedule::run_stealing(&cases, opts.threads.max(1), |(uuid, case)| {
            let origin = format!("{}:{}", p.name(), case.id);
            p.execute(*uuid, &origin, &case.bytes).findings
        });

    let mut findings = Vec::new();
    for case_findings in &per_case {
        findings.extend(case_findings.iter().cloned());
    }

    let mut classes: BTreeSet<String> = BTreeSet::new();
    for f in &findings {
        if let Some(tag) = p.finding_tag(f) {
            classes.insert(tag);
        }
    }

    let mut promoted = Vec::new();
    if let Some(dir) = &opts.promote_dir {
        std::fs::create_dir_all(dir)?;
        let mut done: BTreeSet<String> = BTreeSet::new();
        for (idx, case_findings) in per_case.iter().enumerate() {
            let (_, case) = &cases[idx];
            for f in case_findings {
                let Some(tag) = p.finding_tag(f) else { continue };
                if !done.insert(tag.clone()) {
                    continue;
                }
                let minimized = p.minimize(&case.bytes, f);
                let name = format!("{}-{tag}", p.name());
                let bundle =
                    p.record_bundle(&name, &case.description, f.uuid, &f.origin, &minimized);
                let path = dir.join(format!("{name}.json"));
                bundle.save(&path)?;
                promoted.push(path);
            }
        }
    }

    hdiff_obs::count(&format!("{}.campaign.cases", p.name()), cases.len() as u64);
    Ok(ProtocolSummary {
        protocol: p.name().to_string(),
        cases: cases.len(),
        findings,
        classes: classes.into_iter().collect(),
        promoted,
    })
}
