//! Self-contained replay bundles for recorded findings.
//!
//! A finding flagged by a campaign is only as good as its reproduction: a
//! [`ReplayBundle`] freezes everything needed to re-execute one case
//! byte-identically — the exact client bytes, the fault-plan parameters
//! (if any), the findings the detectors flagged, and an FNV-1a digest of
//! every implementation's `HMetrics` view. Replaying a bundle re-runs the
//! workflow and diffs both the detector verdicts and the digests, so any
//! behavioral drift in the simulated implementations is caught even when
//! the top-level verdict happens to survive.
//!
//! Bundles serialize to single JSON files via the hand-rolled codec in
//! [`crate::json`] (request bytes hex-encoded so arbitrary octets
//! survive). The checked-in `tests/golden/` corpus — one minimized bundle
//! per Table II catalog vector, built by [`regen_golden`] — is the
//! regression gate: `hdiff replay --all tests/golden` must stay green.

use std::io;
use std::path::{Path, PathBuf};

use hdiff_servers::fault::{FaultInjector, FaultPlan, FaultSession};
use hdiff_servers::ParserProfile;

use crate::checkpoint::{data_err, read_finding, write_finding};
use crate::detect::detect_case_with_oracle;
use crate::downgrade::{detect_downgrade, downgrade_digests, DowngradeWorkflow, Frontend};
use crate::findings::Finding;
use crate::hmetrics::HMetrics;
use crate::json::{push_json_str, Json, Parser};
use crate::minimize::{FindingContext, MinimizeOptions};
use crate::syntax::SyntaxOracle;
use crate::transport::{run_bytes_tcp, Transport};
use crate::workflow::{CaseOutcome, Workflow};

/// On-disk bundle format version; bumped on incompatible changes.
pub const FORMAT_VERSION: u64 = 1;

/// Per-attempt logical step budget used when recording and replaying.
/// Fixed by the format (not a knob): digests recorded under one budget
/// must be reproduced under the same budget.
pub const STEP_BUDGET: u64 = 4096;

/// A frozen, re-executable finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayBundle {
    /// Bundle name (also the suggested file stem).
    pub name: String,
    /// Human-readable description of what the case demonstrates.
    pub description: String,
    /// Test-case id the detectors saw.
    pub uuid: u64,
    /// Origin string (`catalog:…`/`sr:…`/`abnf`).
    pub origin: String,
    /// The exact client bytes.
    pub request: Vec<u8>,
    /// Fault-plan `(seed, rate)` when the case ran under injection;
    /// `None` replays under a disabled plan.
    pub fault: Option<(u64, u8)>,
    /// The findings the detectors flagged at record time.
    pub findings: Vec<Finding>,
    /// FNV-1a 64 digests of every implementation view, labelled
    /// `direct:<backend>` / `proxy:<proxy>`.
    pub digests: Vec<(String, u64)>,
    /// Transport the bundle replays under. Bundles recorded before the
    /// wire transport existed carry no key and default to [`Transport::Sim`],
    /// so the checked-in golden corpus keeps working unchanged; `hdiff
    /// replay --transport tcp` overrides it at replay time.
    pub transport: Transport,
    /// Which protocol the recorded client bytes speak. `H1` bundles
    /// (the default; key absent on disk, so the existing corpus is
    /// untouched) replay through the h1 workflow; `H2` bundles carry a
    /// whole h2 client connection and replay through the downgrade
    /// matrix ([`crate::downgrade::DowngradeWorkflow`]).
    pub frontend: Frontend,
    /// Name of the [`crate::protocol::Protocol`] workload that recorded
    /// the bundle, for non-HTTP workloads (e.g. `"cookie"`). `None` (key
    /// absent on disk — the h1/h2 corpora are untouched) replays through
    /// the HTTP dispatch above; `Some` bundles must be routed to their
    /// workload via [`ReplayBundle::replay_protocol`].
    pub protocol: Option<String>,
}

/// The outcome of replaying one bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Name of the bundle replayed.
    pub bundle: String,
    /// Expected findings that were not re-detected.
    pub missing: Vec<Finding>,
    /// Re-detected findings the bundle did not expect.
    pub unexpected: Vec<Finding>,
    /// Digest labels whose value drifted (or vanished / appeared).
    pub drifted: Vec<String>,
}

impl ReplayReport {
    /// Whether the replay reproduced the record byte-identically.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.unexpected.is_empty() && self.drifted.is_empty()
    }

    /// One-line rendering for CLI output.
    pub fn summary(&self) -> String {
        if self.passed() {
            format!("PASS {}", self.bundle)
        } else {
            format!(
                "FAIL {} (missing {}, unexpected {}, drifted {})",
                self.bundle,
                self.missing.len(),
                self.unexpected.len(),
                self.drifted.join("+"),
            )
        }
    }
}

impl ReplayBundle {
    /// Records a bundle by executing `bytes` through `workflow` and
    /// freezing the detector verdicts and behavior digests.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        name: &str,
        description: &str,
        uuid: u64,
        origin: &str,
        bytes: &[u8],
        fault: Option<(u64, u8)>,
        workflow: &Workflow,
        profiles: &[ParserProfile],
        oracle: Option<&SyntaxOracle>,
    ) -> ReplayBundle {
        let (outcome, findings) =
            execute(workflow, profiles, oracle, uuid, origin, bytes, fault, Transport::Sim);
        ReplayBundle {
            name: name.to_string(),
            description: description.to_string(),
            uuid,
            origin: origin.to_string(),
            request: bytes.to_vec(),
            fault,
            findings,
            digests: digests_of(&outcome),
            transport: Transport::Sim,
            frontend: Frontend::H1,
            protocol: None,
        }
    }

    /// Records an h2 bundle: `bytes` is a whole h2 client connection,
    /// executed through the downgrade matrix and frozen with the
    /// downgrade detector's verdicts and `h2:*` digests.
    pub fn record_h2(
        name: &str,
        description: &str,
        uuid: u64,
        origin: &str,
        bytes: &[u8],
        workflow: &DowngradeWorkflow,
    ) -> ReplayBundle {
        let outcome = workflow.run_bytes(uuid, origin, bytes);
        ReplayBundle {
            name: name.to_string(),
            description: description.to_string(),
            uuid,
            origin: origin.to_string(),
            request: bytes.to_vec(),
            fault: None,
            findings: detect_downgrade(&outcome),
            digests: downgrade_digests(&outcome),
            transport: Transport::Sim,
            frontend: Frontend::H2,
            protocol: None,
        }
    }

    /// Re-executes the bundle and diffs verdicts and digests against the
    /// recorded expectations. H2 bundles dispatch to the downgrade
    /// matrix; the `workflow`/`profiles` arguments (which describe the
    /// h1 pipeline) are not consulted for them.
    pub fn replay(
        &self,
        workflow: &Workflow,
        profiles: &[ParserProfile],
        oracle: Option<&SyntaxOracle>,
    ) -> ReplayReport {
        // Protocol-keyed bundles (cookie, …) cannot be resolved at this
        // layer — the workload crates sit above hdiff-diff. The caller
        // must route them via `replay_protocol`; misrouting here is
        // reported as a failure, never a silent mis-execution.
        if let Some(protocol) = &self.protocol {
            return ReplayReport {
                bundle: self.name.clone(),
                missing: self.findings.clone(),
                unexpected: Vec::new(),
                drifted: vec![format!("protocol:{protocol}:unrouted")],
            };
        }
        let (findings, actual) = match self.frontend {
            Frontend::H1 => {
                let (outcome, findings) = execute(
                    workflow,
                    profiles,
                    oracle,
                    self.uuid,
                    &self.origin,
                    &self.request,
                    self.fault,
                    self.transport,
                );
                (findings, digests_of(&outcome))
            }
            Frontend::H2 => {
                let wf = DowngradeWorkflow::standard();
                let outcome = if self.transport == Transport::Sim {
                    wf.run_bytes(self.uuid, &self.origin, &self.request)
                } else {
                    crate::downgrade::run_downgrade_case_tcp(
                        &wf,
                        self.uuid,
                        &self.origin,
                        &self.request,
                    )
                    .unwrap_or_else(|e| panic!("h2 front testbed unavailable: {e}"))
                };
                (detect_downgrade(&outcome), downgrade_digests(&outcome))
            }
        };
        ReplayReport {
            bundle: self.name.clone(),
            missing: self.findings.iter().filter(|f| !findings.contains(f)).cloned().collect(),
            unexpected: findings.iter().filter(|f| !self.findings.contains(f)).cloned().collect(),
            drifted: diff_digests(&self.digests, &actual),
        }
    }

    /// Serializes the bundle as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"version\":{FORMAT_VERSION},\"name\":"));
        push_json_str(&mut out, &self.name);
        out.push_str(",\"description\":");
        push_json_str(&mut out, &self.description);
        out.push_str(&format!(",\"uuid\":{},\"origin\":", self.uuid));
        push_json_str(&mut out, &self.origin);
        out.push_str(",\"request_hex\":");
        push_json_str(&mut out, &hex_encode(&self.request));
        out.push_str(",\"fault\":");
        match self.fault {
            None => out.push_str("null"),
            Some((seed, rate)) => out.push_str(&format!("{{\"seed\":{seed},\"rate\":{rate}}}")),
        }
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_finding(&mut out, f);
        }
        out.push_str("],\"digests\":[");
        for (i, (label, digest)) in self.digests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            push_json_str(&mut out, label);
            out.push_str(&format!(",\"digest\":{digest}}}"));
        }
        out.push(']');
        // The default (sim) is written as key absence, so sim bundles —
        // the golden corpus included — stay byte-identical to the
        // pre-wire-transport format.
        if self.transport != Transport::Sim {
            out.push_str(",\"transport\":");
            push_json_str(&mut out, self.transport.as_str());
        }
        // Same pattern: h1 (the default) is key absence, so every bundle
        // recorded before the h2 front ends existed parses unchanged.
        if self.frontend != Frontend::H1 {
            out.push_str(",\"frontend\":");
            push_json_str(&mut out, self.frontend.as_str());
        }
        // And again: HTTP bundles carry no protocol key, so the golden
        // corpora predate-and-survive the protocol-generic core.
        if let Some(protocol) = &self.protocol {
            out.push_str(",\"protocol\":");
            push_json_str(&mut out, protocol);
        }
        out.push_str("}\n");
        out
    }

    /// Parses a bundle from JSON bytes.
    pub fn from_json(bytes: &[u8]) -> io::Result<ReplayBundle> {
        let root = Parser::new(bytes).value()?;
        let version = root.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != FORMAT_VERSION {
            return Err(data_err(format!(
                "replay bundle format v{version}, this build reads v{FORMAT_VERSION}"
            )));
        }
        let string = |key: &str| {
            root.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| data_err(format!("bundle {key}")))
        };
        let fault = match root.get("fault") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let seed =
                    v.get("seed").and_then(Json::as_u64).ok_or_else(|| data_err("fault seed"))?;
                let rate =
                    v.get("rate").and_then(Json::as_u64).ok_or_else(|| data_err("fault rate"))?;
                let rate = u8::try_from(rate).map_err(|_| data_err("fault rate range"))?;
                Some((seed, rate))
            }
        };
        let mut digests = Vec::new();
        for d in root.get("digests").and_then(Json::as_arr).unwrap_or_default() {
            let label = d
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| data_err("digest label"))?
                .to_string();
            let digest =
                d.get("digest").and_then(Json::as_u64).ok_or_else(|| data_err("digest value"))?;
            digests.push((label, digest));
        }
        let transport = match root.get("transport") {
            None | Some(Json::Null) => Transport::Sim,
            Some(v) => {
                v.as_str().and_then(Transport::parse).ok_or_else(|| data_err("bundle transport"))?
            }
        };
        let frontend = match root.get("frontend") {
            None | Some(Json::Null) => Frontend::H1,
            Some(v) => {
                v.as_str().and_then(Frontend::parse).ok_or_else(|| data_err("bundle frontend"))?
            }
        };
        let protocol = match root.get("protocol") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str().ok_or_else(|| data_err("bundle protocol must be a string"))?.to_string(),
            ),
        };
        Ok(ReplayBundle {
            name: string("name")?,
            description: string("description")?,
            uuid: root.get("uuid").and_then(Json::as_u64).ok_or_else(|| data_err("bundle uuid"))?,
            origin: string("origin")?,
            request: hex_decode(&string("request_hex")?)?,
            fault,
            findings: root
                .get("findings")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(read_finding)
                .collect::<io::Result<_>>()?,
            digests,
            transport,
            frontend,
            protocol,
        })
    }

    /// Writes the bundle to `path` atomically.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json().as_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a bundle written by [`ReplayBundle::save`].
    pub fn load(path: &Path) -> io::Result<ReplayBundle> {
        ReplayBundle::from_json(&std::fs::read(path)?)
    }
}

/// Labels whose digest drifted between the recorded and replayed views
/// (changed value, vanished, or newly appeared).
pub(crate) fn diff_digests(expected: &[(String, u64)], actual: &[(String, u64)]) -> Vec<String> {
    let mut drifted: Vec<String> = Vec::new();
    for (label, want) in expected {
        match actual.iter().find(|(l, _)| l == label) {
            Some((_, got)) if got == want => {}
            _ => drifted.push(label.clone()),
        }
    }
    for (label, _) in actual {
        if !expected.iter().any(|(l, _)| l == label) {
            drifted.push(label.clone());
        }
    }
    drifted
}

/// Replays every `*.json` bundle in `dir` (sorted by file name, so runs
/// are order-stable) and returns one report per bundle.
pub fn replay_dir(
    dir: &Path,
    workflow: &Workflow,
    profiles: &[ParserProfile],
    oracle: Option<&SyntaxOracle>,
) -> io::Result<Vec<(PathBuf, ReplayReport)>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    let mut reports = Vec::new();
    for path in paths {
        let bundle = ReplayBundle::load(&path)?;
        reports.push((path, bundle.replay(workflow, profiles, oracle)));
    }
    Ok(reports)
}

/// Regenerates the golden corpus: for each Table II catalog vector, finds
/// a payload that trips a detector of the entry's class, pads it with
/// campaign-style noise headers, delta-minimizes it, and records the
/// minimized case as `catalog-<id>.json` in `dir`. Returns the written
/// paths. Entries whose payloads flag nothing in the simulated
/// environment are skipped (reported by absence).
pub fn regen_golden(
    dir: &Path,
    workflow: &Workflow,
    profiles: &[ParserProfile],
) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let ctx = FindingContext::new(workflow, profiles);
    let opts = MinimizeOptions::default();
    let mut written = Vec::new();
    for (idx, entry) in hdiff_gen::catalog::catalog().iter().enumerate() {
        let uuid = 9000 + idx as u64;
        let origin = format!("catalog:{}", entry.id);
        // First payload whose (padded) bytes flag a finding of the
        // entry's class; pair findings preferred as the stronger repro.
        let mut picked: Option<(Vec<u8>, Finding, String)> = None;
        for (request, note) in &entry.requests {
            let padded = pad_with_noise(&request.to_bytes());
            let findings = ctx.findings_for(uuid, &origin, &padded);
            let of_class = |f: &&Finding| entry.classes.contains(&f.class);
            let best = findings
                .iter()
                .filter(of_class)
                .find(|f| f.is_pair())
                .or_else(|| findings.iter().find(of_class));
            if let Some(f) = best {
                picked = Some((padded, f.clone(), note.clone()));
                break;
            }
        }
        let Some((padded, finding, note)) = picked else { continue };
        let minimized = ctx.minimize_finding(&finding, &padded, &opts);
        let name = format!("catalog-{}", entry.id);
        let description = format!("{} — {note}", entry.description);
        let bundle = ReplayBundle::record(
            &name,
            &description,
            uuid,
            &origin,
            &minimized.bytes,
            None,
            workflow,
            profiles,
            ctx.oracle,
        );
        let path = dir.join(format!("{name}.json"));
        bundle.save(&path)?;
        written.push(path);
    }
    Ok(written)
}

/// Runs one case exactly the way record/replay both must: a fresh fault
/// session (disabled plan unless `fault` is set) under [`STEP_BUDGET`],
/// through the chosen transport.
#[allow(clippy::too_many_arguments)]
fn execute(
    workflow: &Workflow,
    profiles: &[ParserProfile],
    oracle: Option<&SyntaxOracle>,
    uuid: u64,
    origin: &str,
    bytes: &[u8],
    fault: Option<(u64, u8)>,
    transport: Transport,
) -> (CaseOutcome, Vec<Finding>) {
    let plan = match fault {
        Some((seed, rate)) => FaultPlan::new(seed, rate),
        None => FaultPlan::disabled(),
    };
    let injector = FaultInjector::new(plan);
    let session = FaultSession::new(&injector, uuid, 0, STEP_BUDGET);
    let outcome = match transport {
        Transport::Sim => workflow.run_bytes_faulted(uuid, origin, bytes, Some(&session)),
        Transport::Tcp => run_bytes_tcp(workflow, uuid, origin, bytes, Some(&session)),
        Transport::TcpAsync => {
            // Replays are one-shot: an ephemeral testbed per execution
            // still exercises the multiplexed code path end to end.
            let testbed = hdiff_net::AsyncTestbed::new(workflow.backends(), workflow.proxies())
                .unwrap_or_else(|e| panic!("loopback testbed unavailable: {e}"));
            crate::transport::run_bytes_tcp_async(
                workflow,
                uuid,
                origin,
                bytes,
                Some(&session),
                &testbed,
            )
        }
    };
    let findings = detect_case_with_oracle(profiles, &outcome, oracle);
    (outcome, findings)
}

// ---------------------------------------------------------------------------
// HMetrics digests
// ---------------------------------------------------------------------------

/// FNV-1a 64 running hash: the one digest primitive every workload's
/// behavior digests build on (h1 `direct:`/`proxy:` views, the h2
/// downgrade chains, the cookie workload's per-profile jars), so digests
/// stay comparable across record/replay no matter which crate computed
/// them.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(pub u64);

impl Fnv {
    /// A fresh hash at the FNV-1a 64 offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Hashes a byte string, length-separated.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Length separator: distinguishes ("ab","c") from ("a","bc").
        self.write_u64(bytes.len() as u64);
    }

    /// Hashes a u64 (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

fn hash_metrics(h: &mut Fnv, m: &HMetrics) {
    h.write(m.implementation.as_bytes());
    h.write_u64(u64::from(m.status_code));
    h.write_u64(u64::from(m.accepted));
    match &m.host {
        None => h.write_u64(0),
        Some(host) => {
            h.write_u64(1);
            h.write(host);
        }
    }
    h.write(&m.data);
    h.write(format!("{:?}", m.framing).as_bytes());
    h.write_u64(m.consumed as u64);
    h.write_u64(u64::from(m.repaired));
    for note in &m.notes {
        h.write(note.as_bytes());
    }
}

/// Canonical behavior digests for one case outcome: one per direct
/// back-end view, one per proxy chain (covering the proxy's own
/// interpretations, the exact forwarded bytes, and every step-2 replay).
/// The cross-transport consistency pass compares these digests between a
/// sim and a TCP execution of the same case.
pub fn behavior_digests(outcome: &CaseOutcome) -> Vec<(String, u64)> {
    digests_of(outcome)
}

fn digests_of(outcome: &CaseOutcome) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (backend, replies) in &outcome.direct {
        let mut h = Fnv::new();
        for reply in replies {
            hash_metrics(
                &mut h,
                &HMetrics::from_interpretation(outcome.uuid, backend, &reply.interpretation),
            );
            h.write_u64(u64::from(reply.response.status.as_u16()));
        }
        out.push((format!("direct:{backend}"), h.0));
    }
    for chain in &outcome.chains {
        let mut h = Fnv::new();
        for r in &chain.proxy_results {
            hash_metrics(
                &mut h,
                &HMetrics::from_interpretation(outcome.uuid, &chain.proxy, &r.interpretation),
            );
        }
        h.write(&chain.forwarded);
        h.write_u64(chain.forwarded_count as u64);
        for replay in &chain.replays {
            h.write(replay.backend.as_bytes());
            h.write_u64(u64::from(replay.cache_stored_error));
            for reply in &replay.replies {
                hash_metrics(
                    &mut h,
                    &HMetrics::from_interpretation(
                        outcome.uuid,
                        &replay.backend,
                        &reply.interpretation,
                    ),
                );
                h.write_u64(u64::from(reply.response.status.as_u16()));
            }
        }
        out.push((format!("proxy:{}", chain.proxy), h.0));
    }
    out
}

// ---------------------------------------------------------------------------
// Hex codec
// ---------------------------------------------------------------------------

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> io::Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(data_err("odd-length hex request"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(s.get(i..i + 2).unwrap_or_default(), 16)
                .map_err(|_| data_err("invalid hex request"))
        })
        .collect()
}

/// Pads a request with inert noise headers (inserted before the blank
/// line) to model the generation noise a campaign case carries; the
/// minimizer's job is to strip them back out.
fn pad_with_noise(bytes: &[u8]) -> Vec<u8> {
    let Some(head_end) = bytes.windows(4).position(|w| w == b"\r\n\r\n") else {
        return bytes.to_vec();
    };
    let mut out = bytes[..head_end + 2].to_vec();
    let mut i = 0usize;
    while out.len() + (bytes.len() - head_end - 2) < bytes.len() * 3 {
        out.extend_from_slice(format!("X-Pad-{i}: {:a>40}\r\n", "").as_bytes());
        i += 1;
    }
    out.extend_from_slice(&bytes[head_end + 2..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_gen::AttackClass;

    fn dual_host() -> Vec<u8> {
        b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n".to_vec()
    }

    #[test]
    fn record_then_replay_passes() {
        let workflow = Workflow::standard();
        let profiles = hdiff_servers::products();
        let bundle = ReplayBundle::record(
            "dual-host",
            "two plain Host headers",
            77,
            "catalog:multiple-host",
            &dual_host(),
            None,
            &workflow,
            &profiles,
            None,
        );
        assert!(bundle.findings.iter().any(|f| f.class == AttackClass::Hot));
        assert_eq!(bundle.digests.len(), 12, "6 direct + 6 proxy views");
        let report = bundle.replay(&workflow, &profiles, None);
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let workflow = Workflow::standard();
        let profiles = hdiff_servers::products();
        let bundle = ReplayBundle::record(
            "rt",
            "roundtrip \"quoted\" — unicode",
            3,
            "catalog:multiple-host",
            b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n\x00\xff",
            Some((42, 7)),
            &workflow,
            &profiles,
            None,
        );
        let parsed = ReplayBundle::from_json(bundle.to_json().as_bytes()).unwrap();
        assert_eq!(bundle, parsed);
    }

    #[test]
    fn tampered_request_is_caught_as_drift() {
        let workflow = Workflow::standard();
        let profiles = hdiff_servers::products();
        let mut bundle = ReplayBundle::record(
            "tampered",
            "",
            5,
            "catalog:multiple-host",
            &dual_host(),
            None,
            &workflow,
            &profiles,
            None,
        );
        // Swap the second host: the verdict class may survive but the
        // behavior digests must not.
        let pos = bundle.request.windows(6).position(|w| w == b"h2.com").unwrap();
        bundle.request[pos] = b'x';
        let report = bundle.replay(&workflow, &profiles, None);
        assert!(!report.passed(), "{report:?}");
        assert!(!report.drifted.is_empty());
    }

    #[test]
    fn corrupt_and_mismatched_bundles_are_errors() {
        assert!(ReplayBundle::from_json(b"{").is_err());
        assert!(ReplayBundle::from_json(b"{\"version\":99}").is_err());
        assert!(ReplayBundle::from_json(
            b"{\"version\":1,\"name\":\"x\",\"description\":\"\",\"uuid\":1,\"origin\":\"o\",\"request_hex\":\"zz\",\"fault\":null,\"findings\":[],\"digests\":[]}"
        )
        .is_err());
    }

    #[test]
    fn hex_roundtrips_arbitrary_octets() {
        let all: Vec<u8> = (0..=255u8).collect();
        assert_eq!(hex_decode(&hex_encode(&all)).unwrap(), all);
        assert!(hex_decode("abc").is_err());
    }

    #[test]
    fn save_load_and_replay_dir() {
        let dir = std::env::temp_dir().join("hdiff-replay-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let workflow = Workflow::standard();
        let profiles = hdiff_servers::products();
        let bundle = ReplayBundle::record(
            "on-disk",
            "",
            9,
            "catalog:multiple-host",
            &dual_host(),
            None,
            &workflow,
            &profiles,
            None,
        );
        bundle.save(&dir.join("on-disk.json")).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let reports = replay_dir(&dir, &workflow, &profiles, None).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].1.passed());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn h2_bundle_records_replays_and_round_trips() {
        let wf = DowngradeWorkflow::standard();
        let requests =
            vec![hdiff_h2::H2Request::post("/upload", "example.com", b"AAAAAAAAAAA".to_vec())
                .with_header("content-length", "3")];
        let bytes =
            hdiff_h2::encode_client_connection(&requests, &hdiff_h2::EncodeOptions::default());
        let bundle = ReplayBundle::record_h2("h2-cl", "lying CL", 11, "h2:cl-short", &bytes, &wf);
        assert_eq!(bundle.frontend, Frontend::H2);
        assert!(!bundle.findings.is_empty());
        assert!(bundle.digests.iter().any(|(l, _)| l == "h2:conn"));

        // The JSON carries the frontend key and survives a roundtrip.
        let json = bundle.to_json();
        assert!(json.contains("\"frontend\":\"h2\""));
        let parsed = ReplayBundle::from_json(json.as_bytes()).unwrap();
        assert_eq!(bundle, parsed);

        // Replay dispatches to the downgrade matrix and passes; the h1
        // workflow arguments are ignored for h2 bundles.
        let workflow = Workflow::standard();
        let profiles = hdiff_servers::products();
        let report = parsed.replay(&workflow, &profiles, None);
        assert!(report.passed(), "{}", report.summary());

        // Tampering with the connection bytes is caught as drift.
        let mut tampered = parsed.clone();
        let last = tampered.request.len() - 1;
        tampered.request[last] ^= 0xff;
        let report = tampered.replay(&workflow, &profiles, None);
        assert!(!report.passed());
    }

    #[test]
    fn h1_bundles_do_not_write_a_frontend_key() {
        let workflow = Workflow::standard();
        let profiles = hdiff_servers::products();
        let bundle = ReplayBundle::record(
            "plain",
            "",
            1,
            "catalog:multiple-host",
            &dual_host(),
            None,
            &workflow,
            &profiles,
            None,
        );
        assert!(!bundle.to_json().contains("frontend"));
    }

    #[test]
    fn noise_padding_triples_and_minimizes_away() {
        let padded = pad_with_noise(&dual_host());
        assert!(padded.len() >= dual_host().len() * 5 / 2);
        assert!(padded.windows(6).any(|w| w == b"X-Pad-"));
        // The padded case still ends with the original body section.
        assert!(padded.ends_with(b"\r\n\r\n"));
    }
}
