//! Deterministic case-space sharding for multi-process campaigns.
//!
//! A sharded campaign splits the generated corpus into contiguous
//! corpus-order ranges — one per worker process — runs each range under
//! its own checkpoint file, and merges the per-shard records back in
//! corpus order. Everything here is a pure function of
//! `(corpus length, shard count)`, so the supervisor, a freshly
//! respawned worker, and a post-mortem debugging session all compute the
//! identical split without coordination.
//!
//! The process-supervision machinery (spawning, heartbeats, watchdog,
//! chaos) lives in `crates/fleet`; this module owns the *domain types*
//! the merged [`crate::RunSummary`] records: the shard spec a worker is
//! handed, the topology of the run, and the typed [`ShardError`] a
//! quarantined shard degrades into.

use std::fmt;

/// One shard's slice of the corpus: contiguous `[start, end)` indices in
/// corpus order, plus its position in the shard topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index, `0..count`.
    pub index: u32,
    /// Total shards in the campaign.
    pub count: u32,
    /// First corpus index (inclusive).
    pub start: usize,
    /// One past the last corpus index (exclusive).
    pub end: usize,
}

impl ShardSpec {
    /// Number of cases in the shard.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the shard holds no cases (more shards than cases).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// The CLI form handed to `hdiff worker --shard`:
    /// `index/count:start..end`.
    pub fn to_arg(&self) -> String {
        format!("{}/{}:{}..{}", self.index, self.count, self.start, self.end)
    }

    /// Parses [`ShardSpec::to_arg`] output.
    pub fn parse(s: &str) -> Option<ShardSpec> {
        let (topo, range) = s.split_once(':')?;
        let (index, count) = topo.split_once('/')?;
        let (start, end) = range.split_once("..")?;
        let spec = ShardSpec {
            index: index.parse().ok()?,
            count: count.parse().ok()?,
            start: start.parse().ok()?,
            end: end.parse().ok()?,
        };
        (spec.index < spec.count && spec.start <= spec.end).then_some(spec)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {}/{} [{}..{})", self.index, self.count, self.start, self.end)
    }
}

/// Splits `cases` corpus indices into `count` contiguous shards.
///
/// The first `cases % count` shards get one extra case, so shard sizes
/// differ by at most one and concatenating the ranges in shard order
/// reproduces `0..cases` exactly — the property the corpus-order merge
/// relies on.
pub fn shard_ranges(cases: usize, count: u32) -> Vec<ShardSpec> {
    let count = count.max(1);
    let base = cases / count as usize;
    let extra = cases % count as usize;
    let mut out = Vec::with_capacity(count as usize);
    let mut start = 0usize;
    for index in 0..count {
        let len = base + usize::from((index as usize) < extra);
        out.push(ShardSpec { index, count, start, end: start + len });
        start += len;
    }
    debug_assert_eq!(start, cases);
    out
}

/// Why a shard was quarantined (its respawn budget ran out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardErrorKind {
    /// The worker process could not be spawned at all.
    Spawn,
    /// The worker exited (crash, SIGKILL, nonzero status) before
    /// reporting completion.
    Exit,
    /// The watchdog declared the worker dead on heartbeat silence.
    HeartbeatTimeout,
}

impl ShardErrorKind {
    /// Stable lowercase tag (used by reports).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardErrorKind::Spawn => "spawn",
            ShardErrorKind::Exit => "exit",
            ShardErrorKind::HeartbeatTimeout => "heartbeat-timeout",
        }
    }
}

/// A shard that exhausted its respawn budget. The campaign continues —
/// the merged summary simply lacks the shard's unfinished cases and
/// carries this record instead of aborting (the fleet-level analogue of
/// the runner's per-case quarantine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// Which shard was quarantined.
    pub shard: u32,
    /// Respawns spent before giving up.
    pub respawns: u32,
    /// The final failure that exhausted the budget.
    pub kind: ShardErrorKind,
    /// Human-readable detail (exit status, silence duration, …).
    pub detail: String,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} quarantined after {} respawn(s): {} ({})",
            self.shard,
            self.respawns,
            self.kind.as_str(),
            self.detail
        )
    }
}

/// Per-shard operational statistics recorded by the supervisor.
#[derive(Debug, Clone, Default)]
pub struct ShardStat {
    /// Cases in the shard's range.
    pub cases: usize,
    /// Worker respawns (0 = the first incarnation finished).
    pub respawns: u32,
    /// Chaos-injected SIGKILLs delivered to the shard's workers.
    pub chaos_kills: u32,
    /// Watchdog kills on heartbeat silence.
    pub watchdog_kills: u32,
    /// Logical backoff units spent before respawns (each respawn `k`
    /// charges `2^k`, mirroring the runner's retry bookkeeping).
    pub backoff_units: u64,
    /// Highest checkpoint generation the shard reached.
    pub generation: u64,
}

/// How a campaign was executed across processes.
///
/// # Equality
///
/// `PartialEq` deliberately compares **nothing**: the topology is
/// operational metadata, and the whole point of the sharded fabric is
/// that a 4-shard run with a hostile kill schedule produces a
/// [`crate::RunSummary`] *equal* to the single-process run. Assert on
/// individual fields when the topology itself is under test.
#[derive(Debug, Clone, Default)]
pub struct ShardTopology {
    /// Shard count (0 = the in-process, non-sharded path).
    pub shards: u32,
    /// Per-shard statistics, indexed by shard.
    pub stats: Vec<ShardStat>,
}

impl PartialEq for ShardTopology {
    fn eq(&self, _: &ShardTopology) -> bool {
        true
    }
}

impl ShardTopology {
    /// The topology of a plain in-process run.
    pub fn in_process() -> ShardTopology {
        ShardTopology::default()
    }

    /// Total respawns across all shards.
    pub fn total_respawns(&self) -> u32 {
        self.stats.iter().map(|s| s.respawns).sum()
    }

    /// Total chaos kills across all shards.
    pub fn total_chaos_kills(&self) -> u32 {
        self.stats.iter().map(|s| s.chaos_kills).sum()
    }

    /// Total watchdog kills across all shards.
    pub fn total_watchdog_kills(&self) -> u32 {
        self.stats.iter().map(|s| s.watchdog_kills).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_corpus_exactly() {
        for cases in [0usize, 1, 5, 24, 97, 1000] {
            for count in [1u32, 2, 3, 4, 7, 16] {
                let ranges = shard_ranges(cases, count);
                assert_eq!(ranges.len(), count as usize);
                let mut next = 0usize;
                for (i, r) in ranges.iter().enumerate() {
                    assert_eq!(r.index, i as u32);
                    assert_eq!(r.count, count);
                    assert_eq!(r.start, next, "gap at shard {i} ({cases} cases / {count})");
                    next = r.end;
                }
                assert_eq!(next, cases, "{cases} cases / {count} shards");
                let sizes: Vec<usize> = ranges.iter().map(ShardSpec::len).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "uneven split {sizes:?}");
            }
        }
    }

    #[test]
    fn spec_arg_roundtrip() {
        for spec in shard_ranges(97, 4) {
            assert_eq!(ShardSpec::parse(&spec.to_arg()), Some(spec));
        }
        assert_eq!(ShardSpec::parse("junk"), None);
        assert_eq!(ShardSpec::parse("2/2:0..5"), None, "index out of range");
        assert_eq!(ShardSpec::parse("0/1:9..5"), None, "inverted range");
    }

    #[test]
    fn topology_equality_never_breaks_summary_equality() {
        let a = ShardTopology { shards: 4, stats: vec![ShardStat::default(); 4] };
        let b = ShardTopology::in_process();
        assert_eq!(a, b, "topology is operational metadata, not a campaign result");
    }

    #[test]
    fn shard_error_renders_its_kind() {
        let e = ShardError {
            shard: 2,
            respawns: 4,
            kind: ShardErrorKind::HeartbeatTimeout,
            detail: "silent for 20s".into(),
        };
        assert!(e.to_string().contains("heartbeat-timeout"), "{e}");
    }
}
