//! Delta-debugging minimization of flagged cases.
//!
//! A campaign finding is a raw mutated byte string: the trigger of the
//! semantic gap is buried in generation noise (padding headers, mutated
//! fields that turned out irrelevant). This module shrinks such a case
//! while a pluggable predicate — typically "the same detector still fires
//! on the same profile pair" — keeps holding, using Zeller-style ddmin
//! (complement removal with progressive re-chunking) at three
//! granularities:
//!
//! 1. **header lines** — whole `CRLF`-terminated lines of the header
//!    section (the request line is always kept), which removes noise
//!    headers in `O(log n)` predicate calls;
//! 2. **byte chunks** — fixed-width slices of the whole candidate, which
//!    shrinks bodies and multi-byte values structure-blind;
//! 3. **single bytes** — a final sweep removing one byte at a time
//!    (skipped above [`MinimizeOptions::byte_pass_limit`], where it would
//!    dominate the budget for marginal gain).
//!
//! The passes repeat to fixpoint under a global attempt budget. Every
//! predicate call runs under [`std::panic::catch_unwind`]: a shrink
//! candidate hostile enough to panic the harness is counted as
//! quarantined and rejected, never fatal — the same resilience posture as
//! the campaign runner. Minimization is fully deterministic: same input,
//! predicate, and options give the same minimized bytes, byte for byte.

use std::panic::{self, AssertUnwindSafe};

use hdiff_servers::fault::{FaultInjector, FaultPlan, FaultSession};
use hdiff_servers::ParserProfile;

use crate::detect::detect_case_with_oracle;
use crate::findings::Finding;
use crate::syntax::SyntaxOracle;
use crate::workflow::Workflow;

/// Tuning knobs for one minimization.
#[derive(Debug, Clone)]
pub struct MinimizeOptions {
    /// Global predicate-call budget across all passes.
    pub max_attempts: usize,
    /// Run the single-byte sweep only when the candidate is at most this
    /// long.
    pub byte_pass_limit: usize,
    /// Width of the byte-chunk pass's atoms.
    pub chunk_width: usize,
}

impl Default for MinimizeOptions {
    fn default() -> Self {
        MinimizeOptions { max_attempts: 4096, byte_pass_limit: 512, chunk_width: 8 }
    }
}

/// Bookkeeping of one minimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinimizeStats {
    /// Predicate calls made (including the initial validity check).
    pub attempts: usize,
    /// Candidates the predicate accepted.
    pub accepted: usize,
    /// Candidates that panicked the predicate (counted as rejected).
    pub quarantined: usize,
    /// Input length in bytes.
    pub original_len: usize,
    /// Output length in bytes.
    pub minimized_len: usize,
}

impl MinimizeStats {
    /// `minimized_len / original_len` in [0, 1]; 1.0 for empty input.
    pub fn shrink_ratio(&self) -> f64 {
        if self.original_len == 0 {
            1.0
        } else {
            self.minimized_len as f64 / self.original_len as f64
        }
    }
}

/// A minimization result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Minimized {
    /// The smallest accepted candidate (the input itself if nothing
    /// smaller was accepted, or if the predicate rejected the input).
    pub bytes: Vec<u8>,
    /// What it cost.
    pub stats: MinimizeStats,
}

/// Shrinks `bytes` while `predicate` holds. The predicate must hold on
/// `bytes` itself; if it does not, the input is returned unchanged (with
/// `stats.attempts == 1`) rather than "minimized" to something unrelated.
pub fn minimize<F>(bytes: &[u8], predicate: F, opts: &MinimizeOptions) -> Minimized
where
    F: Fn(&[u8]) -> bool,
{
    let mut m = Minimizer { predicate: &predicate, opts, stats: MinimizeStats::default() };
    m.stats.original_len = bytes.len();
    if !m.check(bytes) {
        m.stats.minimized_len = bytes.len();
        return Minimized { bytes: bytes.to_vec(), stats: m.stats };
    }
    let mut current = bytes.to_vec();
    loop {
        let before = current.len();
        current = m.header_line_pass(current);
        current = m.chunk_pass(current);
        current = m.byte_sweep(current);
        if current.len() >= before || m.exhausted() {
            break;
        }
    }
    m.stats.minimized_len = current.len();
    Minimized { bytes: current, stats: m.stats }
}

/// Zeller-style ddmin over an arbitrary atom sequence — the
/// stream-level entry point: callers minimizing a multi-request
/// connection stream pass the requests as atoms and a predicate over
/// the surviving subsequence, then shrink each surviving atom's bytes
/// with [`minimize`]. Same contract as [`minimize`]: the predicate must
/// hold on the full sequence (otherwise it is returned unchanged with
/// `stats.attempts == 1`), every predicate call runs under
/// `catch_unwind` (a panicking candidate is counted as quarantined and
/// rejected), and the whole pass is budgeted by
/// [`MinimizeOptions::max_attempts`]. Deterministic: same items,
/// predicate, and options give the same surviving subsequence.
pub fn ddmin_items<T, P>(
    items: &[T],
    predicate: P,
    opts: &MinimizeOptions,
) -> (Vec<T>, MinimizeStats)
where
    T: Clone,
    P: Fn(&[T]) -> bool,
{
    let mut stats = MinimizeStats { original_len: items.len(), ..MinimizeStats::default() };
    let check = |candidate: &[T], stats: &mut MinimizeStats| -> bool {
        if stats.attempts >= opts.max_attempts {
            return false;
        }
        stats.attempts += 1;
        match panic::catch_unwind(AssertUnwindSafe(|| predicate(candidate))) {
            Ok(true) => {
                stats.accepted += 1;
                true
            }
            Ok(false) => false,
            Err(_) => {
                stats.quarantined += 1;
                false
            }
        }
    };
    if !check(items, &mut stats) {
        stats.minimized_len = items.len();
        return (items.to_vec(), stats);
    }
    let mut atoms = items.to_vec();
    if check(&[], &mut stats) {
        stats.minimized_len = 0;
        return (Vec::new(), stats);
    }
    let mut n = 2usize.min(atoms.len());
    while atoms.len() >= 2 && stats.attempts < opts.max_attempts {
        let chunk = atoms.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < atoms.len() && stats.attempts < opts.max_attempts {
            let end = (start + chunk).min(atoms.len());
            let complement: Vec<T> =
                atoms[..start].iter().chain(atoms[end..].iter()).cloned().collect();
            if check(&complement, &mut stats) {
                atoms = complement;
                n = n.saturating_sub(1).max(2).min(atoms.len().max(2));
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(atoms.len());
        }
    }
    stats.minimized_len = atoms.len();
    (atoms, stats)
}

struct Minimizer<'a> {
    predicate: &'a dyn Fn(&[u8]) -> bool,
    opts: &'a MinimizeOptions,
    stats: MinimizeStats,
}

impl Minimizer<'_> {
    fn exhausted(&self) -> bool {
        self.stats.attempts >= self.opts.max_attempts
    }

    /// One budgeted, quarantined predicate call.
    fn check(&mut self, candidate: &[u8]) -> bool {
        if self.exhausted() {
            return false;
        }
        self.stats.attempts += 1;
        match panic::catch_unwind(AssertUnwindSafe(|| (self.predicate)(candidate))) {
            Ok(true) => {
                self.stats.accepted += 1;
                true
            }
            Ok(false) => false,
            Err(_) => {
                self.stats.quarantined += 1;
                false
            }
        }
    }

    /// ddmin proper: removes complement chunks of `atoms` while the
    /// assembled candidate keeps satisfying the predicate, re-chunking
    /// finer on failure. Returns the minimal surviving atom list.
    fn ddmin(
        &mut self,
        mut atoms: Vec<Vec<u8>>,
        assemble: &dyn Fn(&[Vec<u8>]) -> Vec<u8>,
    ) -> Vec<Vec<u8>> {
        if atoms.is_empty() {
            return atoms;
        }
        // Cheapest first: all atoms gone at once.
        if self.check(&assemble(&[])) {
            return Vec::new();
        }
        let mut n = 2usize.min(atoms.len());
        while atoms.len() >= 2 && !self.exhausted() {
            let chunk = atoms.len().div_ceil(n);
            let mut reduced = false;
            let mut start = 0usize;
            while start < atoms.len() && !self.exhausted() {
                let end = (start + chunk).min(atoms.len());
                let complement: Vec<Vec<u8>> =
                    atoms[..start].iter().chain(atoms[end..].iter()).cloned().collect();
                if self.check(&assemble(&complement)) {
                    atoms = complement;
                    n = n.saturating_sub(1).max(2).min(atoms.len().max(2));
                    reduced = true;
                    break;
                }
                start = end;
            }
            if !reduced {
                if chunk <= 1 {
                    break;
                }
                n = (n * 2).min(atoms.len());
            }
        }
        atoms
    }

    /// Header-line granularity: ddmin over the header lines after the
    /// request line, keeping request line, blank line, and body fixed.
    /// Skipped for candidates without an HTTP-shaped head.
    fn header_line_pass(&mut self, current: Vec<u8>) -> Vec<u8> {
        let Some(head_end) = find(&current, b"\r\n\r\n") else { return current };
        let Some(line_end) = find(&current, b"\r\n") else { return current };
        let prefix = current[..line_end + 2].to_vec();
        let suffix = current[head_end + 2..].to_vec(); // blank line + body
        let mut lines: Vec<Vec<u8>> = Vec::new();
        let mut rest = &current[line_end + 2..head_end + 2];
        while let Some(e) = find(rest, b"\r\n") {
            lines.push(rest[..e + 2].to_vec());
            rest = &rest[e + 2..];
        }
        if lines.is_empty() {
            return current;
        }
        let assemble = |kept: &[Vec<u8>]| {
            let mut out = prefix.clone();
            for l in kept {
                out.extend_from_slice(l);
            }
            out.extend_from_slice(&suffix);
            out
        };
        let kept = self.ddmin(lines, &assemble);
        assemble(&kept)
    }

    /// Byte-chunk granularity: ddmin over fixed-width slices of the whole
    /// candidate.
    fn chunk_pass(&mut self, current: Vec<u8>) -> Vec<u8> {
        let width = self.opts.chunk_width.max(1);
        if current.len() <= width {
            return current;
        }
        let atoms: Vec<Vec<u8>> = current.chunks(width).map(<[u8]>::to_vec).collect();
        let assemble = |kept: &[Vec<u8>]| kept.concat();
        let kept = self.ddmin(atoms, &assemble);
        let candidate = kept.concat();
        if candidate.len() < current.len() {
            candidate
        } else {
            current
        }
    }

    /// Single-byte granularity: repeatedly remove any one byte whose
    /// removal keeps the predicate true, to fixpoint.
    fn byte_sweep(&mut self, current: Vec<u8>) -> Vec<u8> {
        if current.len() > self.opts.byte_pass_limit {
            return current;
        }
        let mut cur = current;
        let mut changed = true;
        while changed && !self.exhausted() {
            changed = false;
            let mut i = 0usize;
            while i < cur.len() && !self.exhausted() {
                let mut cand = Vec::with_capacity(cur.len() - 1);
                cand.extend_from_slice(&cur[..i]);
                cand.extend_from_slice(&cur[i + 1..]);
                if self.check(&cand) {
                    cur = cand;
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        cur
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Everything needed to re-detect a finding on arbitrary candidate bytes:
/// the workflow environment, the profile set, an optional syntax oracle,
/// and the per-attempt step budget that bounds hostile candidates.
pub struct FindingContext<'a> {
    workflow: &'a Workflow,
    profiles: &'a [ParserProfile],
    /// Oracle used for detection annotations (kept identical to the
    /// campaign's so re-detected findings compare equal).
    pub oracle: Option<&'a SyntaxOracle>,
    /// Logical step budget per predicate attempt.
    pub step_budget: u64,
}

impl<'a> FindingContext<'a> {
    /// Builds a context over a workflow and profile set.
    pub fn new(workflow: &'a Workflow, profiles: &'a [ParserProfile]) -> FindingContext<'a> {
        FindingContext { workflow, profiles, oracle: None, step_budget: 4096 }
    }

    /// Detects findings on exact candidate bytes, under a fresh disabled
    /// fault session that still enforces [`FindingContext::step_budget`].
    pub fn findings_for(&self, uuid: u64, origin: &str, bytes: &[u8]) -> Vec<Finding> {
        let injector = FaultInjector::new(FaultPlan::disabled());
        let session = FaultSession::new(&injector, uuid, 0, self.step_budget);
        let outcome = self.workflow.run_bytes_faulted(uuid, origin, bytes, Some(&session));
        detect_case_with_oracle(self.profiles, &outcome, self.oracle)
    }

    /// Minimizes the bytes behind `finding`: the predicate is "some
    /// finding with the same class, front, and back is still detected".
    pub fn minimize_finding(
        &self,
        finding: &Finding,
        bytes: &[u8],
        opts: &MinimizeOptions,
    ) -> Minimized {
        let _span = hdiff_obs::span("stage.minimize");
        minimize(
            bytes,
            |candidate| {
                self.findings_for(finding.uuid, &finding.origin, candidate).iter().any(|f| {
                    f.class == finding.class && f.front == finding.front && f.back == finding.back
                })
            },
            opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_gen::AttackClass;

    fn opts() -> MinimizeOptions {
        MinimizeOptions::default()
    }

    #[test]
    fn ddmin_items_shrinks_to_the_needed_atoms() {
        let items: Vec<u32> = (0..16).collect();
        let (kept, stats) = ddmin_items(&items, |c| c.contains(&3) && c.contains(&11), &opts());
        assert_eq!(kept, vec![3, 11]);
        assert_eq!(stats.original_len, 16);
        assert_eq!(stats.minimized_len, 2);
    }

    #[test]
    fn ddmin_items_rejected_input_is_unchanged() {
        let items = vec![1u8, 2, 3];
        let (kept, stats) = ddmin_items(&items, |_| false, &opts());
        assert_eq!(kept, items);
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn ddmin_items_quarantines_panicking_candidates() {
        let hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let items: Vec<u32> = (0..12).collect();
        let (kept, stats) = ddmin_items(
            &items,
            |c| {
                if c.len() < 2 {
                    panic!("harness wedged");
                }
                c.contains(&5) && c.contains(&9)
            },
            &opts(),
        );
        panic::set_hook(hook);
        assert_eq!(kept, vec![5, 9]);
        assert!(stats.quarantined > 0, "{stats:?}");
    }

    #[test]
    fn rejected_input_is_returned_unchanged() {
        let out = minimize(b"hello world", |_| false, &opts());
        assert_eq!(out.bytes, b"hello world");
        assert_eq!(out.stats.attempts, 1);
        assert_eq!(out.stats.accepted, 0);
    }

    #[test]
    fn shrinks_to_the_embedded_trigger() {
        // Predicate: candidate still contains the token. ddmin must strip
        // everything else.
        let noise = "xxxxxxxxxxxxxxxxTRIGGERyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy";
        let holds = |c: &[u8]| find(c, b"TRIGGER").is_some();
        let out = minimize(noise.as_bytes(), holds, &opts());
        assert_eq!(out.bytes, b"TRIGGER");
        assert!(out.stats.accepted > 0);
        assert!(out.stats.shrink_ratio() < 0.2, "{:?}", out.stats);
    }

    #[test]
    fn header_line_pass_strips_noise_headers() {
        let mut req = b"POST / HTTP/1.1\r\nHost: h1.com\r\n".to_vec();
        for i in 0..20 {
            req.extend_from_slice(format!("X-Pad-{i}: aaaaaaaaaaaaaaaaaaaaaaaa\r\n").as_bytes());
        }
        req.extend_from_slice(b"Content-Length: 3\r\n\r\nabc");
        let holds = |c: &[u8]| {
            c.starts_with(b"POST") && find(c, b"Content-Length: 3").is_some() && c.ends_with(b"abc")
        };
        let out = minimize(&req, holds, &opts());
        assert!(find(&out.bytes, b"X-Pad-").is_none(), "{}", String::from_utf8_lossy(&out.bytes));
        assert!(out.bytes.len() * 2 <= req.len());
    }

    #[test]
    fn panicking_candidates_are_quarantined_not_fatal() {
        let hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        // Panics whenever the candidate lost its final byte; the minimizer
        // must absorb the panics and still shrink the front.
        let out = minimize(
            b"aaaaaaaaaaaaaaaaZ",
            |c: &[u8]| {
                if !c.ends_with(b"Z") {
                    panic!("harness wedged");
                }
                true
            },
            &opts(),
        );
        panic::set_hook(hook);
        assert_eq!(out.bytes, b"Z");
        assert!(out.stats.quarantined > 0, "{:?}", out.stats);
    }

    #[test]
    fn attempt_budget_is_respected() {
        let tight = MinimizeOptions { max_attempts: 10, ..MinimizeOptions::default() };
        let out = minimize(&[b'a'; 300], |_| true, &tight);
        assert!(out.stats.attempts <= 10, "{:?}", out.stats);
    }

    #[test]
    fn minimization_is_deterministic() {
        let input: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8 | 1).collect();
        let holds = |c: &[u8]| c.iter().filter(|&&b| b == 3).count() >= 2;
        let a = minimize(&input, holds, &opts());
        let b = minimize(&input, holds, &opts());
        assert_eq!(a, b);
    }

    #[test]
    fn finding_context_redetects_and_minimizes_a_catalog_finding() {
        let workflow = Workflow::standard();
        let profiles = hdiff_servers::products();
        let ctx = FindingContext::new(&workflow, &profiles);
        // The dual-Host catalog vector, padded with noise headers.
        let mut bytes = b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n".to_vec();
        for i in 0..12 {
            bytes.extend_from_slice(format!("X-Pad-{i}: {:a>40}\r\n", "").as_bytes());
        }
        bytes.extend_from_slice(b"\r\n");
        let findings = ctx.findings_for(77, "catalog:dual-host", &bytes);
        let hot = findings
            .iter()
            .find(|f| f.class == AttackClass::Hot && f.is_pair())
            .expect("dual-host must flag HoT");
        let out = ctx.minimize_finding(hot, &bytes, &opts());
        assert!(out.bytes.len() * 2 <= bytes.len(), "{}", String::from_utf8_lossy(&out.bytes));
        // The minimized case still trips the same detector pair.
        let again = ctx.findings_for(77, "catalog:dual-host", &out.bytes);
        assert!(again
            .iter()
            .any(|f| f.class == hot.class && f.front == hot.front && f.back == hot.back));
    }
}
