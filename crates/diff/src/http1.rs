//! HTTP/1.1 behind the [`Protocol`] trait.
//!
//! The original pipeline (Fig. 6: generate → fan out over profiles →
//! detect → minimize → freeze) predates the trait and keeps its bespoke
//! engine — [`Http1Protocol`] packages the same workflow, profile set,
//! detection models, and minimizer as a [`Protocol`] instance, so the
//! generic campaign driver can run HTTP/1.1 exactly like any other
//! workload. Zero behavior change is the design constraint: execution
//! goes through the same [`Workflow::run_bytes_faulted`] +
//! [`detect_case_with_oracle`] + [`behavior_digests`] calls the replay
//! machinery uses, and promoted bundles are classic h1 bundles
//! (recorded by [`ReplayBundle::record`], no `protocol` key), so they
//! replay through the existing dispatch unchanged.

use hdiff_gen::AttackClass;
use hdiff_servers::fault::{FaultInjector, FaultPlan, FaultSession};
use hdiff_servers::ParserProfile;

use crate::detect::detect_case_with_oracle;
use crate::findings::Finding;
use crate::hmetrics::HMetrics;
use crate::minimize::{FindingContext, MinimizeOptions};
use crate::protocol::{ProtoCase, ProtoExecution, ProtoView, Protocol};
use crate::replay::{behavior_digests, ReplayBundle, STEP_BUDGET};
use crate::syntax::SyntaxOracle;
use crate::workflow::Workflow;

/// Uuid base for the http1-as-protocol seed corpus (distinct from the
/// classic pipeline's 1-based uuids, the golden catalog's 9000 range,
/// the h2 campaign, and the fuzzer).
pub const H1_UUID_BASE: u64 = 0x4831_0000_0000_0000;

/// HTTP/1.1 as a [`Protocol`] workload: the Table II catalog as the
/// seed corpus over the standard proxy×backend matrix.
#[derive(Debug)]
pub struct Http1Protocol {
    workflow: Workflow,
    profiles: Vec<ParserProfile>,
    /// Syntax oracle for detection annotations, when the caller has the
    /// adapted grammar (the analyzer lives above this crate, so the
    /// grammar is injected rather than derived here).
    oracle: Option<SyntaxOracle>,
    grammar: Option<hdiff_abnf::Grammar>,
}

impl Http1Protocol {
    /// The standard matrix without a syntax oracle.
    pub fn standard() -> Http1Protocol {
        Http1Protocol {
            workflow: Workflow::standard(),
            profiles: hdiff_servers::products(),
            oracle: None,
            grammar: None,
        }
    }

    /// Attaches the adapted RFC 723x grammar: exposed via
    /// [`Protocol::grammars`] and used as the detection-time syntax
    /// oracle, matching what [`crate::DiffEngine`] does in the pipeline.
    pub fn with_grammar(mut self, grammar: hdiff_abnf::Grammar) -> Http1Protocol {
        self.oracle = Some(SyntaxOracle::new(&grammar));
        self.grammar = Some(grammar);
        self
    }
}

impl Protocol for Http1Protocol {
    fn name(&self) -> &'static str {
        "http1"
    }

    fn uuid_base(&self) -> u64 {
        H1_UUID_BASE
    }

    fn grammars(&self) -> Vec<(String, hdiff_abnf::Grammar)> {
        match &self.grammar {
            Some(g) => vec![("rfc7230".to_string(), g.clone())],
            None => Vec::new(),
        }
    }

    fn seed_cases(&self) -> Vec<ProtoCase> {
        let mut cases = Vec::new();
        for entry in hdiff_gen::catalog::catalog() {
            let many = entry.requests.len() > 1;
            for (i, (request, note)) in entry.requests.iter().enumerate() {
                cases.push(ProtoCase {
                    id: if many { format!("{}.{i}", entry.id) } else { entry.id.to_string() },
                    description: format!("{} — {note}", entry.description),
                    bytes: request.to_bytes(),
                });
            }
        }
        cases
    }

    fn execute(&self, uuid: u64, origin: &str, bytes: &[u8]) -> ProtoExecution {
        // Identical to the replay machinery's execution: fresh disabled
        // fault session under the fixed step budget.
        let injector = FaultInjector::new(FaultPlan::disabled());
        let session = FaultSession::new(&injector, uuid, 0, STEP_BUDGET);
        let outcome = self.workflow.run_bytes_faulted(uuid, origin, bytes, Some(&session));
        let views = outcome
            .direct
            .iter()
            .map(|(backend, replies)| {
                let first = replies.first();
                let metrics = match first {
                    None => Vec::new(),
                    Some(r) => {
                        let m = HMetrics::from_interpretation(uuid, backend, &r.interpretation);
                        vec![
                            ("framing".to_string(), format!("{:?}", m.framing)),
                            ("consumed".to_string(), m.consumed.to_string()),
                            ("messages".to_string(), replies.len().to_string()),
                        ]
                    }
                };
                ProtoView {
                    view: backend.clone(),
                    accepted: first.is_some_and(|r| r.interpretation.outcome.is_accept()),
                    status: first.map_or(0, |r| r.interpretation.outcome.status()),
                    metrics,
                }
            })
            .collect();
        let findings = detect_case_with_oracle(&self.profiles, &outcome, self.oracle.as_ref());
        let digests = behavior_digests(&outcome);
        ProtoExecution { views, findings, digests }
    }

    fn finding_tag(&self, f: &Finding) -> Option<String> {
        Some(
            match f.class {
                AttackClass::Hrs => "hrs",
                AttackClass::Hot => "hot",
                AttackClass::Cpdos => "cpdos",
            }
            .to_string(),
        )
    }

    fn minimize(&self, bytes: &[u8], target: &Finding) -> Vec<u8> {
        let mut ctx = FindingContext::new(&self.workflow, &self.profiles);
        ctx.oracle = self.oracle.as_ref();
        ctx.minimize_finding(target, bytes, &MinimizeOptions::default()).bytes
    }

    fn record_bundle(
        &self,
        name: &str,
        description: &str,
        uuid: u64,
        origin: &str,
        bytes: &[u8],
    ) -> ReplayBundle {
        // Classic h1 bundles (no protocol key): they replay through the
        // existing h1 dispatch, indistinguishable from pipeline output.
        ReplayBundle::record(
            name,
            description,
            uuid,
            origin,
            bytes,
            None,
            &self.workflow,
            &self.profiles,
            self.oracle.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{run_protocol_campaign, ProtocolCampaignOptions};

    #[test]
    fn execution_matches_the_bespoke_pipeline_path() {
        // The trait instance must produce byte-identical digests and
        // findings to a directly recorded bundle for the same bytes —
        // the zero-behavior-change gate for HTTP/1.1 behind the trait.
        let p = Http1Protocol::standard();
        let bytes = b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n";
        let exec = p.execute(77, "http1:multiple-host", bytes);
        let bundle = ReplayBundle::record(
            "x",
            "",
            77,
            "http1:multiple-host",
            bytes,
            None,
            &Workflow::standard(),
            &hdiff_servers::products(),
            None,
        );
        assert_eq!(exec.findings, bundle.findings);
        assert_eq!(exec.digests, bundle.digests);
        assert_eq!(exec.views.len(), 6, "one view per direct backend");
        assert!(exec.views.iter().any(|v| v.accepted));
    }

    #[test]
    fn campaign_over_the_catalog_finds_all_three_classes() {
        let p = Http1Protocol::standard();
        let summary =
            run_protocol_campaign(&p, &ProtocolCampaignOptions::default()).expect("campaign");
        assert!(summary.cases >= 14);
        for class in ["hrs", "hot", "cpdos"] {
            assert!(summary.classes.contains(&class.to_string()), "{:?}", summary.classes);
        }
        // Thread invariance, like every workload behind the driver.
        let threaded = run_protocol_campaign(
            &p,
            &ProtocolCampaignOptions { threads: 4, ..ProtocolCampaignOptions::default() },
        )
        .expect("campaign");
        assert_eq!(summary.findings, threaded.findings);
    }

    #[test]
    fn promoted_bundles_are_classic_h1_bundles() {
        let p = Http1Protocol::standard();
        let bytes = b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n";
        let bundle = p.record_bundle("h1-hot", "dual host", 5, "http1:multiple-host", bytes);
        assert_eq!(bundle.protocol, None);
        assert!(!bundle.to_json().contains("protocol"));
        let report = bundle.replay(&Workflow::standard(), &hdiff_servers::products(), None);
        assert!(report.passed(), "{}", report.summary());
    }
}
