//! The wire transport: the Fig. 6 workflow executed over real sockets.
//!
//! [`run_bytes_tcp`] is a drop-in alternative to
//! [`Workflow::run_bytes_faulted`]: every behavioral profile is served by
//! an [`hdiff_net::NetServer`] on an ephemeral loopback port, each proxy
//! hop is an [`hdiff_net::NetProxy`] relaying to an
//! [`hdiff_net::NetEcho`], and the test case's bytes genuinely travel
//! through the kernel's TCP stack. The resulting [`CaseOutcome`] is built
//! from the servers' connection logs and mirrors the in-process outcome
//! field-for-field — fault bookkeeping included — so detection, replay
//! digests, and the run summary are transport-agnostic.
//!
//! # Synchronization
//!
//! The campaign client writes a case's bytes, half-closes (FIN), and
//! reads to EOF; every `hdiff-net` listener pushes its connection log
//! *before* closing its end. Client EOF therefore implies the log is
//! complete — no sleeps, no polling.
//!
//! # Fault mirroring
//!
//! [`hdiff_servers::fault::FaultSession`] is interior-mutable and owned by
//! the case thread, so the socket threads never see it. Instead:
//!
//! * the **origin** decision is made once on the case thread (recording
//!   the event exactly like the sim does) and its *effect* is passed to
//!   every backend listener as an [`hdiff_net::ServerFault`];
//! * each proxy's **forward** decision is [`FaultSession::peek`]ed (no
//!   event) and passed as data into [`hdiff_net::NetProxyConfig`]; after
//!   the wire run, [`FaultSession::decide`] is replayed for the kept
//!   forwarded messages so events and budget exhaustion land exactly
//!   where the sim puts them;
//! * step-budget charges are replayed on the case thread in the sim's
//!   order (direct backends, then per proxy: forwards, then replays), so
//!   `budget_exhausted` and retry behavior are identical.
//!
//! Beyond parity, the wire observes behavior the simulation cannot:
//! [`segmented_probe`] delivers a request in arbitrary TCP segments (or
//! cut short mid-body), and [`pipelined_desync_findings`] submits a
//! pipelined batch to every backend and flags response-attribution
//! disagreements — the on-the-wire symptom of request smuggling.

use std::time::Duration;

use hdiff_gen::{AttackClass, TestCase};
use hdiff_net::{
    compare_attribution, AsyncTestbed, ExchangeOutput, NetEcho, NetProxy, NetProxyConfig,
    NetServer, NetServerConfig, SendMode, ServerFault, WireClient,
};
use hdiff_servers::fault::{FaultKind, FaultSession, FaultStage};
use hdiff_servers::{ParserProfile, Proxy, ServerReply, ORIGIN_HOP};

use crate::findings::Finding;
use crate::hmetrics::HMetrics;
use crate::workflow::{
    damaged_upstream_bytes, is_ambiguous, probe_relay, simulate_cache, CaseOutcome, ChainRun,
    ReplayRun, Workflow,
};

/// How a campaign executes its cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// In-process simulation (the default): function calls, no sockets.
    #[default]
    Sim,
    /// Real loopback TCP, blocking: fresh listeners (threads) per case.
    Tcp,
    /// Real loopback TCP, multiplexed: every hop lives in one
    /// [`AsyncTestbed`] event loop; a case fans out to all views
    /// concurrently over pooled keep-alive connections.
    TcpAsync,
}

impl Transport {
    /// Stable name used by the CLI, config, and replay bundles.
    pub fn as_str(self) -> &'static str {
        match self {
            Transport::Sim => "sim",
            Transport::Tcp => "tcp",
            Transport::TcpAsync => "tcp-async",
        }
    }

    /// Parses [`Transport::as_str`] output.
    pub fn parse(s: &str) -> Option<Transport> {
        match s {
            "sim" => Some(Transport::Sim),
            "tcp" => Some(Transport::Tcp),
            "tcp-async" => Some(Transport::TcpAsync),
            _ => None,
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Read timeout for every listener and campaign client connection — the
/// shared testbed timeout ([`hdiff_net::io_timeout`], overridable via
/// `HDIFF_NET_TIMEOUT_MS`).
fn wire_timeout() -> Duration {
    hdiff_net::io_timeout()
}

/// Short client timeout used to *observe* an injected stall without
/// spending the full wire timeout on every stalled attempt; derived from
/// the shared timeout, not a second magic number.
fn stall_observe_timeout() -> Duration {
    hdiff_net::stall_observe_timeout()
}

/// [`Workflow::run_case_faulted`], over TCP.
pub fn run_case_tcp(
    workflow: &Workflow,
    case: &TestCase,
    faults: Option<&FaultSession<'_>>,
) -> CaseOutcome {
    run_bytes_tcp(workflow, case.uuid, &case.origin.to_string(), &case.request.to_bytes(), faults)
}

/// [`try_run_case_tcp`]'s checked sibling of [`run_case_tcp`]: a loopback
/// testbed failure (bind, accept-loop death, thread spawn) comes back as
/// a typed [`hdiff_net::NetError`] for the runner to record as a case
/// outcome instead of aborting the worker.
pub fn try_run_case_tcp(
    workflow: &Workflow,
    case: &TestCase,
    faults: Option<&FaultSession<'_>>,
) -> Result<CaseOutcome, hdiff_net::NetError> {
    try_run_bytes_tcp(
        workflow,
        case.uuid,
        &case.origin.to_string(),
        &case.request.to_bytes(),
        faults,
    )
}

/// [`Workflow::run_bytes_faulted`], over TCP. Panics on loopback socket
/// failure (bind/spawn); callers that must degrade instead use
/// [`try_run_bytes_tcp`].
pub fn run_bytes_tcp(
    workflow: &Workflow,
    uuid: u64,
    origin: &str,
    bytes: &[u8],
    faults: Option<&FaultSession<'_>>,
) -> CaseOutcome {
    try_run_bytes_tcp(workflow, uuid, origin, bytes, faults)
        .unwrap_or_else(|e| panic!("loopback testbed unavailable: {e}"))
}

/// [`run_bytes_tcp`] with loopback testbed failures surfaced as typed
/// errors instead of panics.
pub fn try_run_bytes_tcp(
    workflow: &Workflow,
    uuid: u64,
    origin: &str,
    bytes: &[u8],
    faults: Option<&FaultSession<'_>>,
) -> Result<CaseOutcome, hdiff_net::NetError> {
    let bytes = bytes.to_vec();
    let origin_fault =
        faults.and_then(|s| s.decide(ORIGIN_HOP, FaultStage::OriginRespond)).map(|d| d.kind);
    let probe_bytes = origin_fault.and_then(damaged_upstream_bytes);

    // Step 3: direct back-end interpretation, plus the listeners the
    // step-2 replays reuse (they carry the same origin-fault effect, just
    // as the sim re-decides the same fault on every backend call).
    let mut direct: Vec<(String, Vec<ServerReply>)> = Vec::new();
    let mut backend_nets: Vec<Option<NetServer>> = Vec::new();
    if origin_fault == Some(FaultKind::StallRead) {
        // Sim semantics: every backend exhausts the budget and produces
        // nothing. One real stalled exchange gives the wire observation —
        // a client-side read timeout — and the rest are skipped.
        if let Some(first) = workflow.backends().first() {
            let config =
                NetServerConfig { fault: Some(ServerFault::Stall), ..NetServerConfig::default() };
            if let Ok(server) = NetServer::spawn(first.clone(), config) {
                let mut client = WireClient::new(server.addr());
                client.read_timeout = stall_observe_timeout();
                let _ = client.exchange(&bytes, &SendMode::Whole);
            }
        }
        if let Some(session) = faults {
            session.exhaust();
        }
        for b in workflow.backends() {
            direct.push((b.name.clone(), Vec::new()));
            backend_nets.push(None);
        }
    } else {
        let server_fault = match origin_fault {
            Some(FaultKind::ConnReset) => Some(ServerFault::CloseNoReply),
            Some(FaultKind::Transient5xx) => Some(ServerFault::Substitute503),
            Some(FaultKind::TruncateResponse) => Some(ServerFault::TruncateBody),
            _ => None,
        };
        for b in workflow.backends() {
            let config = NetServerConfig { fault: server_fault, ..NetServerConfig::default() };
            let server = NetServer::spawn(b.clone(), config)?;
            let raw = roundtrip(&server, &bytes, &SendMode::Whole);
            let mut kept = Vec::new();
            for reply in raw {
                if let Some(session) = faults {
                    if !session.charge(1) {
                        break;
                    }
                }
                kept.push(reply);
            }
            direct.push((b.name.clone(), kept));
            backend_nets.push(Some(server));
        }
    }

    // Steps 1 and 2 per proxy.
    let mut chains = Vec::new();
    for proxy_profile in workflow.proxies() {
        let decision = faults.and_then(|s| s.peek(&proxy_profile.name, FaultStage::Forward));
        let raw_results = if faults.is_some_and(FaultSession::exhausted) {
            Vec::new() // the sim's charge fails before the first message
        } else {
            let echo = NetEcho::spawn(wire_timeout())?;
            let config = NetProxyConfig { fault: decision, ..NetProxyConfig::new(echo.addr()) };
            let proxy = NetProxy::spawn(proxy_profile.clone(), config)?;
            let client = WireClient::new(proxy.addr());
            let _ = client.exchange(&bytes, &SendMode::Whole);
            proxy.take_logs().pop().map(|l| l.results).unwrap_or_default()
        };

        // Replay the sim's per-message bookkeeping over the wire results:
        // one budget charge per message, fault events recorded only for
        // messages that were actually forwarded.
        let mut proxy_results = Vec::new();
        for r in raw_results {
            if let Some(session) = faults {
                if !session.charge(1) {
                    break;
                }
            }
            if let (Some(session), Some(_)) = (faults, r.action.forwarded()) {
                if let Some(d) = session.decide(&proxy_profile.name, FaultStage::Forward) {
                    if d.kind == FaultKind::StallRead {
                        session.exhaust();
                    }
                }
            }
            proxy_results.push(r);
        }

        let mut forwarded = Vec::new();
        let mut forwarded_count = 0usize;
        let mut forwarded_lens = Vec::new();
        for r in &proxy_results {
            if let Some(f) = r.action.forwarded() {
                forwarded.extend_from_slice(f);
                forwarded_lens.push(f.len());
                forwarded_count += 1;
            }
        }

        let any_accepted = proxy_results.iter().any(|r| r.interpretation.outcome.is_accept());
        let should_replay = forwarded_count > 0
            && any_accepted
            && (!workflow.replay_reduction || is_ambiguous(&bytes));

        let mut replays = Vec::new();
        if should_replay {
            let proxy_sim = Proxy::new(proxy_profile.clone());
            for (backend_profile, net) in workflow.backends().iter().zip(&backend_nets) {
                let raw = match (net, faults.is_some_and(FaultSession::exhausted)) {
                    (Some(server), false) => roundtrip(server, &forwarded, &SendMode::Whole),
                    _ => Vec::new(),
                };
                let mut replies = Vec::new();
                for reply in raw {
                    if let Some(session) = faults {
                        if !session.charge(1) {
                            break;
                        }
                    }
                    replies.push(reply);
                }
                let cache_stored_error = simulate_cache(&proxy_sim, &proxy_results, &replies);
                replays.push(ReplayRun {
                    backend: backend_profile.name.clone(),
                    replies,
                    cache_stored_error,
                });
            }
        }

        let relay_reaction = match (&origin_fault, &probe_bytes) {
            (Some(kind), Some(probe)) => Some(probe_relay(proxy_profile, *kind, probe)),
            _ => None,
        };

        chains.push(ChainRun {
            proxy: proxy_profile.name.clone(),
            proxy_results,
            forwarded,
            forwarded_count,
            forwarded_lens,
            replays,
            relay_reaction,
        });
    }

    Ok(CaseOutcome {
        uuid,
        origin: origin.to_string(),
        bytes,
        chains,
        direct,
        fault_events: faults.map(|s| s.events()).unwrap_or_default(),
        budget_exhausted: faults.is_some_and(FaultSession::exhausted),
    })
}

/// One campaign-style wire exchange against a backend listener: send per
/// `mode`, FIN, read to EOF, pop the (now guaranteed) connection log.
fn roundtrip(server: &NetServer, bytes: &[u8], mode: &SendMode) -> Vec<ServerReply> {
    let client = WireClient::new(server.addr());
    let started = std::time::Instant::now();
    let exchange = client.exchange(bytes, mode);
    let rtt = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    hdiff_obs::observe("net.exchange.rtt", rtt);
    if exchange.as_ref().is_ok_and(|e| e.timed_out) {
        hdiff_obs::count("net.exchange.timeout", 1);
    }
    server.take_logs().pop().map(|l| l.replies).unwrap_or_default()
}

/// [`run_case_tcp`] over the multiplexed transport: the case fans out to
/// every backend and proxy view of `testbed` concurrently.
pub fn run_case_tcp_async(
    workflow: &Workflow,
    case: &TestCase,
    faults: Option<&FaultSession<'_>>,
    testbed: &AsyncTestbed,
) -> CaseOutcome {
    run_bytes_tcp_async(
        workflow,
        case.uuid,
        &case.origin.to_string(),
        &case.request.to_bytes(),
        faults,
        testbed,
    )
}

/// [`try_run_bytes_tcp_async`] for a structured [`TestCase`].
pub fn try_run_case_tcp_async(
    workflow: &Workflow,
    case: &TestCase,
    faults: Option<&FaultSession<'_>>,
    testbed: &AsyncTestbed,
) -> Result<CaseOutcome, hdiff_net::NetError> {
    try_run_bytes_tcp_async(
        workflow,
        case.uuid,
        &case.origin.to_string(),
        &case.request.to_bytes(),
        faults,
        testbed,
    )
}

/// [`run_bytes_tcp`] over the multiplexed transport. Panics on testbed
/// failure; see [`try_run_bytes_tcp_async`].
pub fn run_bytes_tcp_async(
    workflow: &Workflow,
    uuid: u64,
    origin: &str,
    bytes: &[u8],
    faults: Option<&FaultSession<'_>>,
    testbed: &AsyncTestbed,
) -> CaseOutcome {
    try_run_bytes_tcp_async(workflow, uuid, origin, bytes, faults, testbed)
        .unwrap_or_else(|e| panic!("loopback testbed unavailable: {e}"))
}

/// One case over the multiplexed transport.
///
/// Fault-free cases (the overwhelming majority of a campaign) take the
/// fast path: one concurrent fan-out of the case's bytes to every
/// backend and proxy view over `testbed`'s pooled keep-alive
/// connections, then the sim's budget/event bookkeeping replayed
/// serially in the blocking path's exact order — wherever the blocking
/// path gates a wire operation on budget exhaustion, the pre-collected
/// result is discarded the same way, so the [`CaseOutcome`] is
/// field-for-field identical.
///
/// A case with any pending fault decision needs per-case listener
/// configuration, which the persistent testbed cannot provide; those
/// cases delegate to [`try_run_bytes_tcp`]. The delegation is decided by
/// [`FaultSession::peek`] (pure, no event recorded), so the blocking run
/// makes the identical decisions the sim would.
pub fn try_run_bytes_tcp_async(
    workflow: &Workflow,
    uuid: u64,
    origin: &str,
    bytes: &[u8],
    faults: Option<&FaultSession<'_>>,
    testbed: &AsyncTestbed,
) -> Result<CaseOutcome, hdiff_net::NetError> {
    let faulted = faults.is_some_and(|s| {
        s.peek(ORIGIN_HOP, FaultStage::OriginRespond).is_some()
            || workflow.proxies().iter().any(|p| s.peek(&p.name, FaultStage::Forward).is_some())
    });
    if faulted {
        return try_run_bytes_tcp(workflow, uuid, origin, bytes, faults);
    }
    let bytes = bytes.to_vec();
    // Parity with the blocking path's origin decision: no origin fault
    // pends (checked above), and `decide` records nothing when it
    // returns `None`.
    let origin_fault =
        faults.and_then(|s| s.decide(ORIGIN_HOP, FaultStage::OriginRespond)).map(|d| d.kind);
    debug_assert!(origin_fault.is_none());

    // Wave A: every backend and every proxy view observes the case's
    // bytes simultaneously.
    let backend_listeners = testbed.backends();
    let proxy_listeners = testbed.proxies();
    let mut jobs = Vec::with_capacity(backend_listeners.len() + proxy_listeners.len());
    for l in backend_listeners.iter().chain(proxy_listeners) {
        jobs.push(testbed.exchange_job(l, &bytes, SendMode::Whole));
    }
    let outs = testbed.run(jobs);
    let (backend_outs, proxy_outs) = outs.split_at(backend_listeners.len());

    // Serial bookkeeping in the blocking path's order: direct backends
    // first.
    let mut direct: Vec<(String, Vec<ServerReply>)> = Vec::new();
    for (b, out) in workflow.backends().iter().zip(backend_outs) {
        let ex = out.as_exchange();
        observe_async_exchange(ex);
        let raw =
            ex.and_then(|e| e.server_log.as_ref()).map(|l| l.replies.clone()).unwrap_or_default();
        let mut kept = Vec::new();
        for reply in raw {
            if let Some(session) = faults {
                if !session.charge(1) {
                    break;
                }
            }
            kept.push(reply);
        }
        direct.push((b.name.clone(), kept));
    }

    // Then per proxy: message charges, then replays.
    let mut chains = Vec::new();
    for (proxy_profile, out) in workflow.proxies().iter().zip(proxy_outs) {
        let ex = out.as_exchange();
        observe_async_exchange(ex);
        let raw_results = if faults.is_some_and(FaultSession::exhausted) {
            Vec::new() // the sim's charge fails before the first message
        } else {
            ex.and_then(|e| e.proxy_log.as_ref()).map(|l| l.results.clone()).unwrap_or_default()
        };
        let mut proxy_results = Vec::new();
        for r in raw_results {
            if let Some(session) = faults {
                if !session.charge(1) {
                    break;
                }
            }
            if let (Some(session), Some(_)) = (faults, r.action.forwarded()) {
                if let Some(d) = session.decide(&proxy_profile.name, FaultStage::Forward) {
                    if d.kind == FaultKind::StallRead {
                        session.exhaust();
                    }
                }
            }
            proxy_results.push(r);
        }

        let mut forwarded = Vec::new();
        let mut forwarded_count = 0usize;
        let mut forwarded_lens = Vec::new();
        for r in &proxy_results {
            if let Some(f) = r.action.forwarded() {
                forwarded.extend_from_slice(f);
                forwarded_lens.push(f.len());
                forwarded_count += 1;
            }
        }

        let any_accepted = proxy_results.iter().any(|r| r.interpretation.outcome.is_accept());
        let should_replay = forwarded_count > 0
            && any_accepted
            && (!workflow.replay_reduction || is_ambiguous(&bytes));

        let mut replays = Vec::new();
        if should_replay {
            let proxy_sim = Proxy::new(proxy_profile.clone());
            // Wave B for this proxy: the forwarded stream replays to
            // every backend concurrently. The blocking path gates each
            // backend's replay exchange on exhaustion; charges inside
            // this very loop can exhaust the budget, so the gate is
            // re-checked (and the collected result discarded) per
            // backend below.
            let replay_outs = if faults.is_some_and(FaultSession::exhausted) {
                None
            } else {
                let jobs = backend_listeners
                    .iter()
                    .map(|l| testbed.exchange_job(l, &forwarded, SendMode::Whole))
                    .collect();
                Some(testbed.run(jobs))
            };
            for (i, backend_profile) in workflow.backends().iter().enumerate() {
                let raw = match (&replay_outs, faults.is_some_and(FaultSession::exhausted)) {
                    (Some(outs), false) => {
                        let ex = outs.get(i).and_then(|o| o.as_exchange());
                        observe_async_exchange(ex);
                        ex.and_then(|e| e.server_log.as_ref())
                            .map(|l| l.replies.clone())
                            .unwrap_or_default()
                    }
                    _ => Vec::new(),
                };
                let mut replies = Vec::new();
                for reply in raw {
                    if let Some(session) = faults {
                        if !session.charge(1) {
                            break;
                        }
                    }
                    replies.push(reply);
                }
                let cache_stored_error = simulate_cache(&proxy_sim, &proxy_results, &replies);
                replays.push(ReplayRun {
                    backend: backend_profile.name.clone(),
                    replies,
                    cache_stored_error,
                });
            }
        }

        chains.push(ChainRun {
            proxy: proxy_profile.name.clone(),
            proxy_results,
            forwarded,
            forwarded_count,
            forwarded_lens,
            replays,
            relay_reaction: None, // an origin fault would have delegated
        });
    }

    Ok(CaseOutcome {
        uuid,
        origin: origin.to_string(),
        bytes,
        chains,
        direct,
        fault_events: faults.map(|s| s.events()).unwrap_or_default(),
        budget_exhausted: faults.is_some_and(FaultSession::exhausted),
    })
}

/// Campaign telemetry for one multiplexed exchange, emitted from the
/// case thread (the event loop itself records nothing): the RTT/timeout
/// observations [`roundtrip`] makes, plus the pool counters the
/// blocking [`hdiff_net::ConnPool`] emits.
fn observe_async_exchange(ex: Option<&ExchangeOutput>) {
    let Some(e) = ex else { return };
    hdiff_obs::observe("net.exchange.rtt", e.rtt_ns);
    if e.timed_out {
        hdiff_obs::count("net.exchange.timeout", 1);
    }
    if e.reused {
        hdiff_obs::count("net.pool.hit", 1);
    } else {
        hdiff_obs::count("net.pool.miss", 1);
        hdiff_obs::count("net.conn.open", 1);
    }
    if e.retried {
        hdiff_obs::count("net.pool.evict", 1);
        hdiff_obs::count("net.conn.open", 1);
    }
}

/// Runs one case over both transports and reports any divergence as a
/// finding: the two executions must yield the same behavior digests and
/// the same detector verdicts. A divergence means a bug in one transport
/// (or genuinely transport-dependent behavior) — either way worth a
/// first-class report, never a silent pass.
pub fn consistency_findings(
    workflow: &Workflow,
    profiles: &[ParserProfile],
    uuid: u64,
    origin: &str,
    bytes: &[u8],
) -> Vec<Finding> {
    let sim = workflow.run_bytes_faulted(uuid, origin, bytes, None);
    let tcp = run_bytes_tcp(workflow, uuid, origin, bytes, None);
    outcome_divergences(profiles, uuid, origin, &sim, "tcp", &tcp)
}

/// [`consistency_findings`] extended to the multiplexed transport: the
/// same case runs over sim, blocking TCP, *and* `testbed`, and every
/// wire execution must match the sim baseline.
pub fn consistency_findings_async(
    workflow: &Workflow,
    profiles: &[ParserProfile],
    uuid: u64,
    origin: &str,
    bytes: &[u8],
    testbed: &AsyncTestbed,
) -> Vec<Finding> {
    let sim = workflow.run_bytes_faulted(uuid, origin, bytes, None);
    let tcp = run_bytes_tcp(workflow, uuid, origin, bytes, None);
    let tcp_async = run_bytes_tcp_async(workflow, uuid, origin, bytes, None, testbed);
    let mut out = outcome_divergences(profiles, uuid, origin, &sim, "tcp", &tcp);
    out.extend(outcome_divergences(profiles, uuid, origin, &sim, "tcp-async", &tcp_async));
    out
}

/// Compares one wire execution against the sim baseline: behavior
/// digests and detector verdicts must both match.
fn outcome_divergences(
    profiles: &[ParserProfile],
    uuid: u64,
    origin: &str,
    sim: &CaseOutcome,
    wire_label: &str,
    wire: &CaseOutcome,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let sim_digests = crate::replay::behavior_digests(sim);
    let wire_digests = crate::replay::behavior_digests(wire);
    for (label, expected) in &sim_digests {
        match wire_digests.iter().find(|(l, _)| l == label) {
            Some((_, got)) if got == expected => {}
            other => out.push(divergence(
                uuid,
                origin,
                label,
                &format!(
                    "behavior digest {label} diverges across transports: sim {expected:#018x}, {wire_label} {}",
                    other.map_or("<missing>".to_string(), |(_, g)| format!("{g:#018x}")),
                ),
            )),
        }
    }

    let sim_findings = crate::detect::detect_case(profiles, sim);
    let wire_findings = crate::detect::detect_case(profiles, wire);
    if sim_findings != wire_findings {
        out.push(divergence(
            uuid,
            origin,
            "findings",
            &format!(
                "detector verdicts diverge across transports: {} sim vs {} {wire_label} findings",
                sim_findings.len(),
                wire_findings.len()
            ),
        ));
    }
    out
}

fn divergence(uuid: u64, origin: &str, label: &str, evidence: &str) -> Finding {
    Finding {
        class: AttackClass::Hrs,
        uuid,
        origin: origin.to_string(),
        front: None,
        back: None,
        culprits: std::iter::once(format!("transport:{label}")).collect(),
        evidence: evidence.to_string(),
    }
}

/// Delivers `bytes` to every profile with the given wire shaping
/// (segmented at arbitrary offsets, or truncated mid-stream) and returns
/// each implementation's [`HMetrics`] view of the *first* message — the
/// partial-read behavior only a real socket can exercise.
pub fn segmented_probe(
    profiles: &[ParserProfile],
    uuid: u64,
    bytes: &[u8],
    mode: &SendMode,
) -> Vec<HMetrics> {
    let mut out = Vec::new();
    for profile in profiles {
        let name = profile.name.clone();
        let Ok(server) = NetServer::spawn(profile.clone(), NetServerConfig::default()) else {
            continue;
        };
        if let Some(reply) = roundtrip(&server, bytes, mode).into_iter().next() {
            out.push(HMetrics::from_interpretation(uuid, &name, &reply.interpretation));
        }
    }
    out
}

/// Submits `requests` as one pipelined batch to every profile and flags
/// every pair whose response attribution disagrees (count, or status at
/// any index) — the wire-level desync signal.
pub fn pipelined_desync_findings(
    profiles: &[ParserProfile],
    uuid: u64,
    origin: &str,
    requests: &[&[u8]],
) -> Vec<Finding> {
    let mut attributions = Vec::new();
    for profile in profiles {
        let name = profile.name.clone();
        let Ok(server) = NetServer::spawn(profile.clone(), NetServerConfig::default()) else {
            continue;
        };
        let client = WireClient::new(server.addr());
        if let Ok(batch) = client.pipelined(requests) {
            attributions.push((name, batch.attribution));
        }
    }

    let mut out = Vec::new();
    for i in 0..attributions.len() {
        for j in i + 1..attributions.len() {
            let (a_name, a) = &attributions[i];
            let (b_name, b) = &attributions[j];
            if let Some(signal) = compare_attribution(a_name, a, b_name, b) {
                out.push(Finding {
                    class: AttackClass::Hrs,
                    uuid,
                    origin: origin.to_string(),
                    front: None,
                    back: None,
                    culprits: [a_name.clone(), b_name.clone()].into_iter().collect(),
                    evidence: signal.describe(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_names_round_trip() {
        for t in [Transport::Sim, Transport::Tcp, Transport::TcpAsync] {
            assert_eq!(Transport::parse(t.as_str()), Some(t));
        }
        assert_eq!(Transport::parse("quic"), None);
        assert_eq!(Transport::default(), Transport::Sim);
        assert_eq!(Transport::Tcp.to_string(), "tcp");
        assert_eq!(Transport::TcpAsync.to_string(), "tcp-async");
    }

    #[test]
    fn fault_free_case_is_transport_consistent() {
        let workflow = Workflow::standard();
        let profiles = hdiff_servers::products();
        let bytes = b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n";
        let findings = consistency_findings(&workflow, &profiles, 7, "catalog:multi-host", bytes);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn fault_free_case_is_consistent_over_the_multiplexed_transport() {
        let workflow = Workflow::standard();
        let profiles = hdiff_servers::products();
        let testbed = AsyncTestbed::new(workflow.backends(), workflow.proxies()).unwrap();
        let bytes = b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n";
        let findings = consistency_findings_async(
            &workflow,
            &profiles,
            7,
            "catalog:multi-host",
            bytes,
            &testbed,
        );
        assert!(findings.is_empty(), "{findings:?}");
        // A second case over the same testbed rides the warm pool.
        let findings = consistency_findings_async(
            &workflow,
            &profiles,
            8,
            "catalog:multi-host",
            bytes,
            &testbed,
        );
        assert!(findings.is_empty(), "{findings:?}");
        let stats = testbed.stats();
        assert!(stats.pool_hits > 0, "repeat cases must reuse pooled connections: {stats:?}");
    }

    #[test]
    fn faulted_cases_agree_between_blocking_and_multiplexed_paths() {
        use hdiff_servers::fault::{FaultInjector, FaultPlan, FaultSession};
        // A high fault rate exercises the delegation path (any pending
        // decision falls back to the blocking testbed) alongside fast-path
        // cases, and the outcome must match the blocking transport
        // field-for-field either way.
        let workflow = Workflow::standard();
        let testbed = AsyncTestbed::new(workflow.backends(), workflow.proxies()).unwrap();
        let injector = FaultInjector::new(FaultPlan::new(42, 60));
        let bytes: &[u8] = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabc";
        for uuid in 1..6u64 {
            let blocking_session = FaultSession::new(&injector, uuid, 0, 4096);
            let blocking = run_bytes_tcp(&workflow, uuid, "seed", bytes, Some(&blocking_session));
            let async_session = FaultSession::new(&injector, uuid, 0, 4096);
            let multiplexed =
                run_bytes_tcp_async(&workflow, uuid, "seed", bytes, Some(&async_session), &testbed);
            assert_eq!(
                crate::replay::behavior_digests(&blocking),
                crate::replay::behavior_digests(&multiplexed),
                "uuid {uuid}"
            );
            assert_eq!(blocking.fault_events, multiplexed.fault_events, "uuid {uuid}");
            assert_eq!(blocking.budget_exhausted, multiplexed.budget_exhausted, "uuid {uuid}");
        }
    }

    #[test]
    fn pipelined_desync_fires_on_framing_disagreement() {
        // CL + a whitespace-damaged Transfer-Encoding: Tomcat-style
        // parsers recognize "chunked" by substring and let it override
        // CL, consuming the chunked body and answering the pipelined
        // GET; strict parsers 400-reject the first message and stop —
        // the classic attribution split.
        let smuggle: &[u8] =
            b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\nTransfer-Encoding:\x0bchunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        let tail: &[u8] = b"GET /next HTTP/1.1\r\nHost: h\r\n\r\n";
        let findings = pipelined_desync_findings(
            &hdiff_servers::backends(),
            11,
            "probe:pipelined",
            &[smuggle, tail],
        );
        assert!(!findings.is_empty(), "no desync signal over the wire");
        for f in &findings {
            assert_eq!(f.class, AttackClass::Hrs);
            assert_eq!(f.culprits.len(), 2);
            assert!(f.evidence.contains("attribution disagreement"), "{}", f.evidence);
        }
    }

    #[test]
    fn truncated_delivery_splits_the_profiles() {
        // A Content-Length that overshoots the delivered bytes next to a
        // whitespace-damaged Transfer-Encoding, with the connection cut
        // right after the final chunk: profiles that let the lenient
        // chunked reading win see a complete message, profiles that
        // honor CL (or reject the conflict) see a truncated or invalid
        // one — acceptance at EOF diverges.
        let bytes =
            b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 99\r\nTransfer-Encoding:\x0bchunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        let metrics = segmented_probe(
            &hdiff_servers::backends(),
            13,
            bytes,
            &SendMode::TruncateAt(bytes.len()),
        );
        assert!(metrics.len() >= 2, "need at least two profile views");
        let disagree = metrics.iter().any(|a| {
            metrics.iter().any(|b| a.accepted != b.accepted || a.status_code != b.status_code)
        });
        assert!(disagree, "{metrics:?}");
    }
}
