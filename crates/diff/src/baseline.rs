//! The RFC-strict oracle and deviation analysis.
//!
//! Plain differential testing only sees *that* two implementations differ.
//! Because HDiff extracted formal rules, it can also say *which* side
//! conforms: every implementation's interpretation is compared against the
//! strict baseline profile, and lenient deviations (accepting what the
//! baseline rejects, or resolving differently while both accept) are
//! attributed to the deviating product.

use hdiff_gen::AttackClass;
use hdiff_servers::{interpret, Interpretation, Outcome, ParserProfile};

/// What kind of deviation from the baseline was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DeviationKind {
    /// Accepted a message the baseline rejects (lenient acceptance).
    LenientAccept,
    /// Rejected a message the baseline accepts (strict-side deviation;
    /// safe in itself but a CPDoS error source).
    StrictReject,
    /// Both accept but the framing/consumed/payload differs.
    Framing,
    /// Both accept but the host identity differs.
    Host,
    /// The implementation repaired a malformed construct.
    Repair,
}

/// One deviation record.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Deviation {
    /// The deviation kind.
    pub kind: DeviationKind,
    /// Attack class the deviation evidences.
    pub class: AttackClass,
    /// Human-readable detail.
    pub detail: String,
}

/// The RFC-strict baseline profile.
pub fn baseline_profile() -> ParserProfile {
    ParserProfile::strict("rfc-baseline")
}

/// Classifies a baseline rejection reason (plus the message bytes) into
/// the attack class a lenient acceptance of it evidences.
fn classify_reason(reason: &str, bytes: &[u8]) -> AttackClass {
    let r = reason.to_ascii_lowercase();
    let lower: Vec<u8> = bytes.to_ascii_lowercase();
    let has = |needle: &[u8]| lower.windows(needle.len()).any(|w| w == needle);

    if r.contains("content-length")
        || r.contains("transfer")
        || r.contains("chunk")
        || r.contains("body")
    {
        return AttackClass::Hrs;
    }
    if r.contains("host") {
        return AttackClass::Hot;
    }
    if r.contains("version") || r.contains("expect") || r.contains("0.9") {
        return AttackClass::Cpdos;
    }
    // Generic reasons (whitespace before colon, invalid header name):
    // decide by what the message is actually smuggling.
    if has(b"transfer-encoding") || has(b"content-length") {
        AttackClass::Hrs
    } else if has(b"host") {
        AttackClass::Hot
    } else {
        AttackClass::Cpdos
    }
}

/// Computes the deviations of `impl_interp` relative to the baseline's
/// interpretation of the same bytes.
pub fn deviations(
    implementation: &Interpretation,
    baseline: &Interpretation,
    bytes: &[u8],
) -> Vec<Deviation> {
    let mut out = Vec::new();
    match (&implementation.outcome, &baseline.outcome) {
        (Outcome::Accept, Outcome::Reject { reason, .. }) => {
            out.push(Deviation {
                kind: DeviationKind::LenientAccept,
                class: classify_reason(reason, bytes),
                detail: format!("accepted message the baseline rejects ({reason})"),
            });
        }
        (Outcome::Reject { reason, .. }, Outcome::Accept) => {
            out.push(Deviation {
                kind: DeviationKind::StrictReject,
                class: AttackClass::Cpdos,
                detail: format!("rejected message the baseline accepts ({reason})"),
            });
        }
        (Outcome::Accept, Outcome::Accept) => {
            if implementation.framing != baseline.framing
                || implementation.consumed != baseline.consumed
                || implementation.body != baseline.body
            {
                out.push(Deviation {
                    kind: DeviationKind::Framing,
                    class: AttackClass::Hrs,
                    detail: format!(
                        "framing differs from baseline ({:?} vs {:?}, consumed {} vs {})",
                        implementation.framing,
                        baseline.framing,
                        implementation.consumed,
                        baseline.consumed
                    ),
                });
            }
            if implementation.host != baseline.host {
                out.push(Deviation {
                    kind: DeviationKind::Host,
                    class: AttackClass::Hot,
                    detail: "host identity differs from baseline".to_string(),
                });
            }
        }
        (Outcome::Reject { .. }, Outcome::Reject { .. }) => {}
    }
    if implementation.repaired_chunked {
        out.push(Deviation {
            kind: DeviationKind::Repair,
            class: AttackClass::Hrs,
            detail: "repaired malformed chunked framing".to_string(),
        });
    }
    out
}

/// Convenience: interpret under the baseline and diff in one call.
pub fn deviations_from_strict(profile: &ParserProfile, bytes: &[u8]) -> Vec<Deviation> {
    let b = interpret(&baseline_profile(), bytes);
    let i = interpret(profile, bytes);
    deviations(&i, &b, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_servers::{product, ProductId};

    #[test]
    fn iis_ws_colon_is_a_lenient_hrs_deviation() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 3\r\n\r\nabc";
        let devs = deviations_from_strict(&product(ProductId::Iis), msg);
        assert_eq!(devs.len(), 1, "{devs:?}");
        assert_eq!(devs[0].kind, DeviationKind::LenientAccept);
        assert_eq!(devs[0].class, AttackClass::Hrs);
    }

    #[test]
    fn weblogic_http09_is_a_cpdos_class_deviation() {
        let msg = b"GET / HTTP/0.9\r\nHost: h\r\n\r\n";
        let devs = deviations_from_strict(&product(ProductId::Weblogic), msg);
        assert!(devs.iter().any(|d| d.class == AttackClass::Cpdos), "{devs:?}");
    }

    #[test]
    fn varnish_invalid_host_is_a_hot_deviation() {
        let msg = b"GET / HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n";
        let devs = deviations_from_strict(&product(ProductId::Varnish), msg);
        assert!(devs.iter().any(|d| d.class == AttackClass::Hot), "{devs:?}");
    }

    #[test]
    fn haproxy_chunk_repair_is_an_hrs_deviation() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n1000000000000000a\r\nabc\r\n0\r\n\r\n";
        let devs = deviations_from_strict(&product(ProductId::Haproxy), msg);
        assert!(devs.iter().any(|d| d.kind == DeviationKind::Repair), "{devs:?}");
    }

    #[test]
    fn strict_product_has_no_deviation_on_clean_request() {
        let msg = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n";
        for id in ProductId::ALL {
            let devs = deviations_from_strict(&product(id), msg);
            assert!(devs.is_empty(), "{id}: {devs:?}");
        }
    }

    #[test]
    fn apache_never_deviates_leniently_on_catalog_payloads() {
        // Apache is Table I's fully-strict product (CPDoS only, via its
        // cache): it must never accept what the baseline rejects.
        for entry in hdiff_gen::catalog::catalog() {
            for (req, note) in &entry.requests {
                let bytes = req.to_bytes();
                let devs = deviations_from_strict(&product(ProductId::Apache), &bytes);
                assert!(
                    devs.iter().all(|d| d.kind != DeviationKind::LenientAccept
                        && d.kind != DeviationKind::Framing
                        && d.kind != DeviationKind::Host),
                    "{}: {note}: {devs:?}",
                    entry.id
                );
            }
        }
    }

    #[test]
    fn lighttpd_expect_rejection_is_strict_side() {
        let msg = b"GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n";
        let devs = deviations_from_strict(&product(ProductId::Lighttpd), msg);
        assert!(devs.iter().any(|d| d.kind == DeviationKind::StrictReject), "{devs:?}");
    }
}
