//! Exploit verification — the paper's final step: "we further run these
//! potential exploits to complete verification in a real environment"
//! (§III-D *Detecting Bugs*, §IV-B).
//!
//! Detection works over the three-step workflow's logs; verification
//! re-drives each candidate exploit through the *specific* chain it names
//! and checks the end-to-end consequence:
//!
//! * **HoT** — the proxy and the back-end must both accept and resolve
//!   different hosts on a fresh chain run.
//! * **HRS** — the back-end must actually desynchronize on the bytes the
//!   proxy forwards (different message count or boundary), or reject
//!   framing the proxy accepted.
//! * **CPDoS** — the full poisoning loop must close: attack request →
//!   error response stored → an *innocent* request for the same resource
//!   is served the cached error.

use hdiff_gen::{AttackClass, TestCase};
use hdiff_servers::cache::CacheKey;
use hdiff_servers::{ForwardAction, ParserProfile, Proxy, Server};
use hdiff_wire::Request;

use crate::baseline::{baseline_profile, deviations};
use crate::findings::Finding;

/// A finding plus its verification outcome.
#[derive(Debug, Clone)]
pub struct VerifiedFinding {
    /// The original finding.
    pub finding: Finding,
    /// Whether the exploit re-ran successfully.
    pub confirmed: bool,
    /// What the verification observed.
    pub detail: String,
}

/// Verifies one finding against its test case.
pub fn verify_finding(
    profiles: &[ParserProfile],
    finding: &Finding,
    case: &TestCase,
) -> VerifiedFinding {
    let bytes = case.request.to_bytes();
    let lookup = |name: &str| profiles.iter().find(|p| p.name == name).cloned();

    let (confirmed, detail) = match (finding.class, finding.pair()) {
        (AttackClass::Hot, Some((front, back))) => verify_hot(lookup(front), lookup(back), &bytes),
        (AttackClass::Hrs, Some((front, back))) => verify_hrs(lookup(front), lookup(back), &bytes),
        (AttackClass::Cpdos, Some((front, back))) => {
            verify_cpdos(lookup(front), lookup(back), &bytes)
        }
        // Single-implementation findings: re-derive the deviation.
        (_, None) => {
            let name = finding.culprits.iter().next().cloned().unwrap_or_default();
            match lookup(&name) {
                Some(profile) => {
                    let b = hdiff_servers::interpret(&baseline_profile(), &bytes);
                    let i = hdiff_servers::interpret(&profile, &bytes);
                    let devs = deviations(&i, &b, &bytes);
                    let hit = devs.iter().any(|d| d.class == finding.class);
                    (
                        hit,
                        if hit {
                            format!("{name} still deviates from the baseline")
                        } else {
                            format!("{name} no longer deviates")
                        },
                    )
                }
                None => (false, format!("unknown implementation {name}")),
            }
        }
    };

    VerifiedFinding { finding: finding.clone(), confirmed, detail }
}

fn verify_hot(
    front: Option<ParserProfile>,
    back: Option<ParserProfile>,
    bytes: &[u8],
) -> (bool, String) {
    let (Some(front), Some(back)) = (front, back) else {
        return (false, "pair profiles unavailable".into());
    };
    let proxy = Proxy::new(front);
    let result = proxy.forward(bytes);
    let Some(forwarded) = result.action.forwarded() else {
        return (false, "front no longer forwards".into());
    };
    let reply = Server::new(back).handle(forwarded);
    if !result.interpretation.outcome.is_accept() || !reply.interpretation.outcome.is_accept() {
        return (false, "one side rejects on re-run".into());
    }
    if result.interpretation.host == reply.interpretation.host {
        return (false, "host views agree on re-run".into());
    }
    (
        true,
        format!(
            "front routes {:?}, origin serves {:?}",
            String::from_utf8_lossy(result.interpretation.host.as_deref().unwrap_or(b"-")),
            String::from_utf8_lossy(reply.interpretation.host.as_deref().unwrap_or(b"-")),
        ),
    )
}

fn verify_hrs(
    front: Option<ParserProfile>,
    back: Option<ParserProfile>,
    bytes: &[u8],
) -> (bool, String) {
    let (Some(front), Some(back)) = (front, back) else {
        return (false, "pair profiles unavailable".into());
    };
    let proxy = Proxy::new(front);
    let results = proxy.forward_stream(bytes);
    let mut forwarded = Vec::new();
    let mut lens = Vec::new();
    for r in &results {
        if let ForwardAction::Forwarded(f) = &r.action {
            forwarded.extend_from_slice(f);
            lens.push(f.len());
        }
    }
    if lens.is_empty() {
        return (false, "front no longer forwards".into());
    }
    let replies = Server::new(back).handle_stream(&forwarded);
    if replies.len() != lens.len() {
        return (
            true,
            format!("desync confirmed: {} forwarded, {} parsed", lens.len(), replies.len()),
        );
    }
    if let Some(first) = replies.first() {
        if first.interpretation.outcome.is_accept() && first.interpretation.consumed != lens[0] {
            return (
                true,
                format!(
                    "boundary gap confirmed: {} vs {} bytes",
                    lens[0], first.interpretation.consumed
                ),
            );
        }
        if !first.interpretation.outcome.is_accept() {
            return (true, "origin rejects what the front accepted".into());
        }
    }
    (false, "no desync on re-run".into())
}

fn verify_cpdos(
    front: Option<ParserProfile>,
    back: Option<ParserProfile>,
    bytes: &[u8],
) -> (bool, String) {
    let (Some(front), Some(back)) = (front, back) else {
        return (false, "pair profiles unavailable".into());
    };
    let mut proxy = Proxy::new(front.clone());
    let result = proxy.forward(bytes);
    let Some(forwarded) = result.action.forwarded().map(<[u8]>::to_vec) else {
        return (false, "front no longer forwards".into());
    };
    let reply = Server::new(back).handle(&forwarded);
    if !reply.response.status.is_error() {
        return (false, "origin no longer errors".into());
    }
    let key = CacheKey::new(
        result.interpretation.host.clone().unwrap_or_default(),
        result.interpretation.target.clone(),
    );
    let decision = proxy.cache.store(
        key,
        &result.interpretation.method,
        &result.interpretation.version,
        &reply.response,
    );
    if decision != hdiff_servers::cache::StoreDecision::Stored {
        return (false, format!("cache declined the error ({decision:?})"));
    }
    // The poisoning loop: an innocent request for the same resource must
    // hit the stored error.
    let victim_host = result.interpretation.host.clone().unwrap_or_default();
    let mut innocent = Request::get(&String::from_utf8_lossy(&victim_host));
    innocent.set_target(&result.interpretation.target);
    let innocent_interp = hdiff_servers::interpret(&front, &innocent.to_bytes());
    let innocent_key = CacheKey::new(
        innocent_interp.host.clone().unwrap_or(victim_host),
        innocent_interp.target.clone(),
    );
    match proxy.cache.lookup(&innocent_key) {
        Some(poisoned) if poisoned.status.is_error() => (
            true,
            format!("innocent request served cached {} — denial of service", poisoned.status),
        ),
        _ => (false, "innocent request misses the poisoned entry".into()),
    }
}

/// Verifies a batch of findings; returns every verification record.
pub fn verify_all(
    profiles: &[ParserProfile],
    findings: &[Finding],
    cases: &[TestCase],
) -> Vec<VerifiedFinding> {
    findings
        .iter()
        .filter_map(|f| {
            cases.iter().find(|c| c.uuid == f.uuid).map(|c| verify_finding(profiles, f, c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_case;
    use crate::workflow::Workflow;
    use hdiff_servers::products;
    use hdiff_wire::{Method, Version};

    fn findings_for(req: Request) -> (Vec<Finding>, TestCase) {
        let case = TestCase::generated(1, req, "verify-test");
        let outcome = Workflow::standard().run_case(&case);
        (detect_case(&products(), &outcome), case)
    }

    #[test]
    fn hot_pair_findings_confirm() {
        let mut b = Request::builder();
        b.method(Method::Get)
            .target("test://h2.com/?a=1")
            .version(Version::Http11)
            .header("Host", "h1.com");
        let (findings, case) = findings_for(b.build());
        let hot: Vec<_> =
            findings.iter().filter(|f| f.class == AttackClass::Hot && f.is_pair()).collect();
        assert!(!hot.is_empty());
        for f in hot {
            let v = verify_finding(&products(), f, &case);
            assert!(v.confirmed, "{f}: {}", v.detail);
        }
    }

    #[test]
    fn cpdos_findings_confirm_the_full_poisoning_loop() {
        let mut req = Request::get("victim.com");
        req.set_version(b"1.1/HTTP");
        let (findings, case) = findings_for(req);
        let cpdos: Vec<_> = findings.iter().filter(|f| f.class == AttackClass::Cpdos).collect();
        assert!(!cpdos.is_empty());
        let mut confirmed_pairs = 0;
        for f in &cpdos {
            let v = verify_finding(&products(), f, &case);
            if v.confirmed && f.is_pair() {
                confirmed_pairs += 1;
                assert!(v.detail.contains("denial of service"), "{}", v.detail);
            }
        }
        assert!(confirmed_pairs > 0, "no CPDoS pair finding survived verification");
    }

    #[test]
    fn hrs_findings_confirm() {
        let mut b = Request::builder();
        b.method(Method::Post)
            .target("/")
            .version(Version::Http11)
            .header("Host", "h1.com")
            .header_raw(b"Transfer-Encoding : chunked".to_vec())
            .body(hdiff_wire::encode_chunked(b"smuggl"));
        let (findings, case) = findings_for(b.build());
        let verified = verify_all(&products(), &findings, std::slice::from_ref(&case));
        assert!(!verified.is_empty());
        assert!(
            verified.iter().any(|v| v.finding.class == AttackClass::Hrs && v.confirmed),
            "{verified:?}"
        );
    }

    #[test]
    fn clean_pair_does_not_confirm() {
        // Fabricate a finding on a clean request: verification must refute.
        let case = TestCase::generated(1, Request::get("h1.com"), "clean");
        let fake = Finding {
            class: AttackClass::Hot,
            uuid: 1,
            origin: "fake".into(),
            front: Some("varnish".into()),
            back: Some("iis".into()),
            culprits: Default::default(),
            evidence: "fabricated".into(),
        };
        let v = verify_finding(&products(), &fake, &case);
        assert!(!v.confirmed, "{}", v.detail);
    }
}
