//! Finding records produced by the detection models.

use std::collections::BTreeSet;
use std::fmt;

use hdiff_gen::AttackClass;

/// One detected semantic-gap candidate.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Finding {
    /// Attack class.
    pub class: AttackClass,
    /// Test-case id that triggered it.
    pub uuid: u64,
    /// Test-case origin string.
    pub origin: String,
    /// Front-end (proxy) involved, if pair-shaped.
    pub front: Option<String>,
    /// Back-end involved, if pair-shaped.
    pub back: Option<String>,
    /// Products whose nonconformance the finding evidences.
    pub culprits: BTreeSet<String>,
    /// Human-readable evidence.
    pub evidence: String,
}

impl Finding {
    /// Whether this finding names a front/back pair.
    pub fn is_pair(&self) -> bool {
        self.front.is_some() && self.back.is_some()
    }

    /// `(front, back)` when pair-shaped.
    pub fn pair(&self) -> Option<(&str, &str)> {
        match (&self.front, &self.back) {
            (Some(f), Some(b)) => Some((f.as_str(), b.as_str())),
            _ => None,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] case #{} ({})", self.class, self.uuid, self.origin)?;
        if let Some((front, back)) = self.pair() {
            write!(f, " {front} -> {back}")?;
        }
        write!(f, ": {}", self.evidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_pair() {
        let f = Finding {
            class: AttackClass::Hot,
            uuid: 3,
            origin: "catalog:invalid-host".into(),
            front: Some("varnish".into()),
            back: Some("weblogic".into()),
            culprits: ["varnish".to_string()].into_iter().collect(),
            evidence: "host views differ".into(),
        };
        assert!(f.is_pair());
        assert_eq!(f.pair(), Some(("varnish", "weblogic")));
        let s = f.to_string();
        assert!(s.contains("[HoT]"));
        assert!(s.contains("varnish -> weblogic"));
    }
}
