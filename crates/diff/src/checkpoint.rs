//! Campaign checkpoint persistence.
//!
//! Long fault-injection campaigns must survive interruption: the runner
//! serializes every completed [`CaseRecord`] to a JSON file every
//! checkpoint interval, and a restarted run loads the file, skips the
//! completed uuids and converges to the identical [`crate::RunSummary`].
//!
//! The format is a single JSON object:
//!
//! ```json
//! {"version":1,"generation":3,"completed":[{"uuid":7,"replayed":true,
//!  "retries":1,"backoff_units":4,"quarantined":false,
//!  "error":{"kind":"io","detail":"connection reset …"},
//!  "findings":[…],"degradations":[…]}]}
//! ```
//!
//! `generation` is a monotonic save counter: every save writes the next
//! generation, and a resumed run continues counting from the loaded
//! value. A fleet supervisor that watched a worker heartbeat generation
//! `g` can therefore demand `g` as a floor when re-dispatching the shard
//! — a file older than the progress it already witnessed (swapped,
//! rolled back, left over from an earlier incarnation) is *stale* and
//! must not be resumed from (see [`resume_state`]).
//!
//! The JSON value/parser machinery lives in [`crate::json`] (shared with
//! the replay-bundle codec); this module owns the record shape. The codec
//! is hand-rolled (no serialization dependency) so the runner stays
//! format-agnostic.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use hdiff_gen::AttackClass;
use hdiff_servers::fault::FaultKind;

use crate::detect::DegradationFinding;
use crate::findings::Finding;
use crate::json::{push_json_str, push_opt_str, Json, Parser};
use crate::runner::{CaseError, CaseRecord};

/// On-disk format version; bumped on incompatible changes.
pub const FORMAT_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

pub(crate) fn class_str(c: AttackClass) -> &'static str {
    match c {
        AttackClass::Hrs => "HRS",
        AttackClass::Hot => "HoT",
        AttackClass::Cpdos => "CPDoS",
    }
}

pub(crate) fn class_from_str(s: &str) -> Option<AttackClass> {
    AttackClass::ALL.into_iter().find(|c| class_str(*c) == s)
}

pub(crate) fn write_finding(out: &mut String, f: &Finding) {
    out.push_str("{\"class\":");
    push_json_str(out, class_str(f.class));
    out.push_str(&format!(",\"uuid\":{},\"origin\":", f.uuid));
    push_json_str(out, &f.origin);
    out.push_str(",\"front\":");
    push_opt_str(out, f.front.as_deref());
    out.push_str(",\"back\":");
    push_opt_str(out, f.back.as_deref());
    out.push_str(",\"culprits\":[");
    for (i, c) in f.culprits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, c);
    }
    out.push_str("],\"evidence\":");
    push_json_str(out, &f.evidence);
    out.push('}');
}

fn write_degradation(out: &mut String, d: &DegradationFinding) {
    out.push_str(&format!("{{\"uuid\":{},\"fault\":", d.uuid));
    push_json_str(out, d.fault.as_str());
    out.push_str(",\"front_a\":");
    push_json_str(out, &d.front_a);
    out.push_str(",\"front_b\":");
    push_json_str(out, &d.front_b);
    out.push_str(",\"evidence\":");
    push_json_str(out, &d.evidence);
    out.push('}');
}

fn write_record(out: &mut String, r: &CaseRecord) {
    out.push_str(&format!(
        "{{\"uuid\":{},\"replayed\":{},\"retries\":{},\"backoff_units\":{},\"quarantined\":{},\"error\":",
        r.uuid, r.replayed, r.retries, r.backoff_units, r.quarantined
    ));
    match &r.error {
        None => out.push_str("null"),
        Some(e) => {
            out.push_str("{\"kind\":");
            push_json_str(out, e.kind());
            out.push_str(",\"detail\":");
            push_json_str(out, e.detail());
            out.push('}');
        }
    }
    out.push_str(",\"findings\":[");
    for (i, f) in r.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_finding(out, f);
    }
    out.push_str("],\"degradations\":[");
    for (i, d) in r.degradations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_degradation(out, d);
    }
    out.push(']');
    // Telemetry is optional on disk (absent when recording was off), so
    // telemetry-free checkpoints keep their pre-telemetry byte shape.
    if !r.telemetry.is_empty() {
        out.push_str(",\"telemetry\":");
        crate::telemetry_codec::write_telemetry(out, &r.telemetry);
    }
    out.push('}');
}

/// Serializes the completed-case map to `path`, atomically (write to a
/// sibling temp file, then rename) so an interruption mid-save never
/// leaves a corrupt checkpoint behind. Writes generation 0; checkpoint
/// chains that resume use [`save_with_generation`].
pub fn save(path: &Path, completed: &BTreeMap<u64, CaseRecord>) -> io::Result<()> {
    save_with_generation(path, completed, 0)
}

/// [`save`] with an explicit generation counter.
pub fn save_with_generation(
    path: &Path,
    completed: &BTreeMap<u64, CaseRecord>,
    generation: u64,
) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"version\":{FORMAT_VERSION},\"generation\":{generation},\"completed\":[\n"
    ));
    for (i, record) in completed.values().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        write_record(&mut out, record);
    }
    out.push_str("\n]}\n");

    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, out.as_bytes())?;
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

pub(crate) fn data_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

pub(crate) fn read_finding(v: &Json) -> io::Result<Finding> {
    let class = v
        .get("class")
        .and_then(Json::as_str)
        .and_then(class_from_str)
        .ok_or_else(|| data_err("finding without a valid class"))?;
    let opt_string = |key: &str| match v.get(key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    };
    Ok(Finding {
        class,
        uuid: v.get("uuid").and_then(Json::as_u64).ok_or_else(|| data_err("finding uuid"))?,
        origin: opt_string("origin").ok_or_else(|| data_err("finding origin"))?,
        front: opt_string("front"),
        back: opt_string("back"),
        culprits: v
            .get("culprits")
            .and_then(Json::as_arr)
            .unwrap_or_default()
            .iter()
            .filter_map(|c| c.as_str().map(str::to_string))
            .collect(),
        evidence: opt_string("evidence").unwrap_or_default(),
    })
}

fn read_degradation(v: &Json) -> io::Result<DegradationFinding> {
    let fault = v
        .get("fault")
        .and_then(Json::as_str)
        .and_then(FaultKind::parse)
        .ok_or_else(|| data_err("degradation without a valid fault kind"))?;
    let string = |key: &str| {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| data_err(format!("degradation {key}")))
    };
    Ok(DegradationFinding {
        uuid: v.get("uuid").and_then(Json::as_u64).ok_or_else(|| data_err("degradation uuid"))?,
        fault,
        front_a: string("front_a")?,
        front_b: string("front_b")?,
        evidence: string("evidence")?,
    })
}

fn read_error(v: &Json) -> io::Result<Option<CaseError>> {
    match v {
        Json::Null => Ok(None),
        Json::Obj(_) => {
            let kind = v.get("kind").and_then(Json::as_str).unwrap_or_default();
            let detail = v.get("detail").and_then(Json::as_str).unwrap_or_default().to_string();
            let e = match kind {
                "panic" => CaseError::Panic(detail),
                "budget" => CaseError::Budget(detail),
                "fault" => CaseError::Fault(detail),
                "io" => CaseError::Io(detail),
                other => return Err(data_err(format!("unknown error kind {other:?}"))),
            };
            Ok(Some(e))
        }
        _ => Err(data_err("error field must be null or an object")),
    }
}

fn read_record(v: &Json) -> io::Result<CaseRecord> {
    let u64_field = |key: &str| {
        v.get(key).and_then(Json::as_u64).ok_or_else(|| data_err(format!("record {key}")))
    };
    let bool_field = |key: &str| {
        v.get(key).and_then(Json::as_bool).ok_or_else(|| data_err(format!("record {key}")))
    };
    Ok(CaseRecord {
        uuid: u64_field("uuid")?,
        replayed: bool_field("replayed")?,
        retries: u32::try_from(u64_field("retries")?).map_err(|_| data_err("retries range"))?,
        backoff_units: u64_field("backoff_units")?,
        quarantined: bool_field("quarantined")?,
        error: read_error(v.get("error").unwrap_or(&Json::Null))?,
        findings: v
            .get("findings")
            .and_then(Json::as_arr)
            .unwrap_or_default()
            .iter()
            .map(read_finding)
            .collect::<io::Result<_>>()?,
        degradations: v
            .get("degradations")
            .and_then(Json::as_arr)
            .unwrap_or_default()
            .iter()
            .map(read_degradation)
            .collect::<io::Result<_>>()?,
        telemetry: v
            .get("telemetry")
            .map(crate::telemetry_codec::read_telemetry)
            .transpose()?
            .unwrap_or_default(),
    })
}

/// Loads a checkpoint written by [`save`].
pub fn load(path: &Path) -> io::Result<BTreeMap<u64, CaseRecord>> {
    load_with_generation(path).map(|(completed, _)| completed)
}

/// Loads a checkpoint plus its generation counter (0 when the file
/// predates generations).
pub fn load_with_generation(path: &Path) -> io::Result<(BTreeMap<u64, CaseRecord>, u64)> {
    let bytes = std::fs::read(path)?;
    let mut parser = Parser::new(&bytes);
    let root = parser.value()?;
    let version = root.get("version").and_then(Json::as_u64).unwrap_or(0);
    if version != FORMAT_VERSION {
        return Err(data_err(format!(
            "checkpoint format v{version}, this build reads v{FORMAT_VERSION}"
        )));
    }
    let generation = root.get("generation").and_then(Json::as_u64).unwrap_or(0);
    let mut completed = BTreeMap::new();
    for record in root
        .get("completed")
        .and_then(Json::as_arr)
        .ok_or_else(|| data_err("missing completed array"))?
    {
        let record = read_record(record)?;
        completed.insert(record.uuid, record);
    }
    Ok((completed, generation))
}

// ---------------------------------------------------------------------------
// Resilient resume (shard workers)
// ---------------------------------------------------------------------------

/// What a tolerant checkpoint load produced: either resumed progress, or
/// a clean slate with the reason the file was unusable.
#[derive(Debug)]
pub struct ResumeState {
    /// Completed records to skip (empty on a clean start).
    pub completed: BTreeMap<u64, CaseRecord>,
    /// Generation counter to continue from: the loaded generation, or
    /// the caller's floor on a clean start (so fresh saves are never
    /// mistaken for the discarded file).
    pub generation: u64,
    /// Why the file was discarded, when it was (`None` = resumed or no
    /// file existed yet).
    pub discarded: Option<String>,
}

impl ResumeState {
    /// Whether any prior progress was recovered.
    pub fn resumed_cases(&self) -> usize {
        self.completed.len()
    }
}

/// Loads `path` tolerantly for a shard worker restart: a missing file is
/// a normal first start; a truncated/garbled file (a worker killed
/// mid-write before the atomic rename, disk damage) or a *stale* file
/// (generation below `min_generation`, i.e. older than progress the
/// supervisor already witnessed via heartbeats) is discarded — the shard
/// restarts clean instead of erroring the campaign or silently resuming
/// from wrong state. The discard reason is surfaced for logging.
pub fn resume_state(path: &Path, min_generation: u64) -> ResumeState {
    if !path.exists() {
        return ResumeState {
            completed: BTreeMap::new(),
            generation: min_generation,
            discarded: None,
        };
    }
    match load_with_generation(path) {
        Ok((completed, generation)) if generation >= min_generation => {
            ResumeState { completed, generation, discarded: None }
        }
        Ok((_, generation)) => ResumeState {
            completed: BTreeMap::new(),
            generation: min_generation,
            discarded: Some(format!(
                "stale checkpoint: generation {generation} < supervisor floor {min_generation}"
            )),
        },
        Err(e) => ResumeState {
            completed: BTreeMap::new(),
            generation: min_generation,
            discarded: Some(format!("unreadable checkpoint: {e}")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> BTreeMap<u64, CaseRecord> {
        let finding = Finding {
            class: AttackClass::Hrs,
            uuid: 3,
            origin: "catalog:bad-te".into(),
            front: Some("squid".into()),
            back: None,
            culprits: ["squid".to_string(), "iis".to_string()].into_iter().collect(),
            evidence: "quote \" backslash \\ newline \n tab \t control \u{1} end".into(),
        };
        let degradation = DegradationFinding {
            uuid: 3,
            fault: FaultKind::TruncateResponse,
            front_a: "apache".into(),
            front_b: "squid".into(),
            evidence: "apache replaces with own 502; squid relays 200".into(),
        };
        [
            (
                3,
                CaseRecord {
                    uuid: 3,
                    replayed: true,
                    retries: 2,
                    backoff_units: 6,
                    quarantined: false,
                    error: Some(CaseError::Io("reset persisted".into())),
                    findings: vec![finding],
                    degradations: vec![degradation],
                    telemetry: {
                        let mut t = hdiff_obs::Telemetry::default();
                        t.record_span("case", 1234);
                        t.record_count("fault.events", 2);
                        t.record_hist("transport.rtt.sim", 987);
                        t
                    },
                },
            ),
            (
                9,
                CaseRecord {
                    uuid: 9,
                    replayed: false,
                    retries: 0,
                    backoff_units: 0,
                    quarantined: true,
                    error: Some(CaseError::Panic("injected parser panic".into())),
                    findings: Vec::new(),
                    degradations: Vec::new(),
                    telemetry: hdiff_obs::Telemetry::default(),
                },
            ),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let dir = std::env::temp_dir().join("hdiff-ckpt-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.json");
        let records = sample_records();
        save(&path, &records).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(records, loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join("hdiff-ckpt-version");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("old.json");
        std::fs::write(&path, b"{\"version\":99,\"completed\":[]}").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generation_roundtrips_and_defaults_to_zero() {
        let dir = std::env::temp_dir().join("hdiff-ckpt-generation");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.json");
        let records = sample_records();
        save_with_generation(&path, &records, 7).unwrap();
        let (loaded, generation) = load_with_generation(&path).unwrap();
        assert_eq!((loaded, generation), (records.clone(), 7));

        // A pre-generation file (no "generation" key) reads as 0.
        std::fs::write(&path, b"{\"version\":1,\"completed\":[\n]}\n").unwrap();
        let (loaded, generation) = load_with_generation(&path).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(generation, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_state_tolerates_missing_corrupt_and_stale_files() {
        let dir = std::env::temp_dir().join("hdiff-ckpt-resume-state");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard0.json");

        // Missing file: normal first start, generation seeded at the floor.
        let fresh = resume_state(&path, 3);
        assert!(fresh.completed.is_empty() && fresh.discarded.is_none());
        assert_eq!(fresh.generation, 3);

        // Healthy file at or above the floor: resumed.
        let records = sample_records();
        save_with_generation(&path, &records, 5).unwrap();
        let resumed = resume_state(&path, 5);
        assert_eq!(resumed.completed, records);
        assert_eq!(resumed.generation, 5);
        assert!(resumed.discarded.is_none());
        assert_eq!(resumed.resumed_cases(), 2);

        // Stale file (generation below the supervisor's floor): discarded.
        let stale = resume_state(&path, 9);
        assert!(stale.completed.is_empty());
        assert_eq!(stale.generation, 9);
        assert!(stale.discarded.as_deref().unwrap_or("").contains("stale"), "{stale:?}");

        // Truncated mid-write garbage: discarded with a reason, never a panic.
        for garbage in ["", "{\"version\":1,\"generation\":5,\"completed\":[{\"uu", "not json"] {
            std::fs::write(&path, garbage.as_bytes()).unwrap();
            let torn = resume_state(&path, 0);
            assert!(torn.completed.is_empty(), "{garbage:?}");
            assert!(torn.discarded.as_deref().unwrap_or("").contains("unreadable"), "{garbage:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_panic() {
        for garbage in ["", "{", "{\"version\":1}", "[1,2", "{\"version\":1,\"completed\":[{}]}"] {
            let mut p = Parser::new(garbage.as_bytes());
            let parsed = p.value();
            if let Ok(root) = parsed {
                // Structurally valid JSON must still fail record validation.
                if root.get("completed").and_then(Json::as_arr).is_some() {
                    let bad = root.get("completed").unwrap().as_arr().unwrap();
                    for r in bad {
                        assert!(read_record(r).is_err());
                    }
                }
            }
        }
    }
}
