//! The three detection models (HRS, HoT, CPDoS).
//!
//! Detection rules are predicates over the behavior the workflow
//! collected. Because HDiff has the strict baseline, every finding also
//! attributes nonconformance to specific products (`culprits`) — the
//! advantage over plain differential testing the paper highlights.

use std::collections::BTreeSet;
use std::fmt;

use hdiff_gen::AttackClass;
use hdiff_servers::fault::FaultKind;
use hdiff_servers::{interpret, Outcome, ParserProfile};

use crate::baseline::{baseline_profile, deviations, Deviation, DeviationKind};
use crate::findings::Finding;
use crate::syntax::SyntaxOracle;
use crate::workflow::{CaseOutcome, FaultReaction};

/// Two proxies reacting differently to the *same* injected upstream
/// fault — e.g. one replaces the damaged reply with its own 502 while the
/// other relays the truncated body downstream. Not one of the paper's
/// three attack classes (those enumerate `AttackClass::ALL` and must stay
/// exactly three); degradation divergence is a separate resilience
/// finding produced only by fault-injection campaigns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationFinding {
    /// Test-case id during which the fault fired.
    pub uuid: u64,
    /// The injected fault both proxies experienced.
    pub fault: FaultKind,
    /// First proxy of the divergent pair (lexicographically smaller).
    pub front_a: String,
    /// Second proxy of the divergent pair.
    pub front_b: String,
    /// Human-readable comparison of the two reactions.
    pub evidence: String,
}

impl fmt::Display for DegradationFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[degradation] case #{} fault {}: {} vs {}: {}",
            self.uuid, self.fault, self.front_a, self.front_b, self.evidence
        )
    }
}

fn describe_reaction(r: &FaultReaction) -> String {
    let verb = if r.replaced { "replaces with own" } else { "relays" };
    match r.status {
        Some(s) => format!("{verb} {s} ({} bytes)", r.body_len),
        None => format!("{verb} unparseable bytes ({} bytes)", r.body_len),
    }
}

/// The degradation detection pass: compares every proxy pair's relay
/// reaction to the case's injected origin fault and reports each pair
/// whose reactions diverge. Returns nothing for fault-free cases.
pub fn detect_degradation(outcome: &CaseOutcome) -> Vec<DegradationFinding> {
    let reactions: Vec<(&str, &FaultReaction)> = outcome
        .chains
        .iter()
        .filter_map(|c| c.relay_reaction.as_ref().map(|r| (c.proxy.as_str(), r)))
        .collect();
    let mut findings = Vec::new();
    for (i, (name_a, a)) in reactions.iter().enumerate() {
        for (name_b, b) in &reactions[i + 1..] {
            debug_assert_eq!(a.fault, b.fault, "origin fault is decided once per case");
            // Divergence means a different *reaction shape* — substitute vs
            // relay, or a different downstream status. Byte counts stay out
            // of the predicate (every proxy's own Via/Server header length
            // would otherwise flag identical reactions) but stay in the
            // evidence.
            if a.replaced == b.replaced && a.status == b.status {
                continue;
            }
            let (front_a, front_b, a, b) =
                if name_a <= name_b { (name_a, name_b, a, b) } else { (name_b, name_a, b, a) };
            findings.push(DegradationFinding {
                uuid: outcome.uuid,
                fault: a.fault,
                front_a: (*front_a).to_string(),
                front_b: (*front_b).to_string(),
                evidence: format!(
                    "{front_a} {}; {front_b} {}",
                    describe_reaction(a),
                    describe_reaction(b)
                ),
            });
        }
    }
    findings.sort_by(|x, y| (&x.front_a, &x.front_b).cmp(&(&y.front_a, &y.front_b)));
    findings
}

/// Runs all detection models over one case outcome.
///
/// `profiles` must contain every product profile participating (for
/// deviation attribution).
pub fn detect_case(profiles: &[ParserProfile], outcome: &CaseOutcome) -> Vec<Finding> {
    detect_case_with_oracle(profiles, outcome, None)
}

/// [`detect_case`], with an optional grammar-conformance oracle.
///
/// When an oracle is supplied, HoT findings are annotated with each
/// host view's verdict against the adapted `Host` production, turning
/// "the views differ" into "the views differ *and this one is not even
/// syntactically a host*" — which is what makes the pair exploitable.
pub fn detect_case_with_oracle(
    profiles: &[ParserProfile],
    outcome: &CaseOutcome,
    oracle: Option<&SyntaxOracle>,
) -> Vec<Finding> {
    let baseline = interpret(&baseline_profile(), &outcome.bytes);
    let mut findings = Vec::new();

    // Detection is a pass over what the workflow *recorded* — it never
    // re-drives a parser. That keeps it exact under fault injection: an
    // implementation the injected fault silenced (reset/stalled before it
    // could parse) contributes no interpretation and therefore no
    // deviation, and a crash-prone profile only panics inside the
    // workflow step, where the runner's quarantine can catch it.
    let known = |name: &str| profiles.iter().any(|p| p.name == name);
    let recorded = |name: &str| {
        outcome
            .direct
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, replies)| replies.first())
            .map(|r| &r.interpretation)
            .or_else(|| {
                outcome
                    .chains
                    .iter()
                    .find(|c| c.proxy == name)
                    .and_then(|c| c.proxy_results.first())
                    .map(|r| &r.interpretation)
            })
    };
    let devs_of = |name: &str| -> Vec<Deviation> {
        if !known(name) {
            return Vec::new();
        }
        recorded(name).map(|i| deviations(i, &baseline, &outcome.bytes)).unwrap_or_default()
    };

    // ---- Model 0: single-implementation deviations ------------------------
    // (covers both direct back-end runs and proxy interpretations).
    let mut singles: Vec<&str> = outcome.direct.iter().map(|(n, _)| n.as_str()).collect();
    for chain in &outcome.chains {
        if !singles.contains(&chain.proxy.as_str()) {
            singles.push(chain.proxy.as_str());
        }
    }
    for name in singles {
        for dev in devs_of(name) {
            let attributable = matches!(
                dev.kind,
                DeviationKind::LenientAccept
                    | DeviationKind::Framing
                    | DeviationKind::Host
                    | DeviationKind::Repair
            );
            if !attributable {
                continue;
            }
            findings.push(Finding {
                class: dev.class,
                uuid: outcome.uuid,
                origin: outcome.origin.clone(),
                front: None,
                back: None,
                culprits: [name.to_string()].into_iter().collect(),
                evidence: format!("{name}: {}", dev.detail),
            });
        }
    }

    // ---- Pair models over chains -------------------------------------------
    for chain in &outcome.chains {
        let Some(first_proxy) = chain.proxy_results.first() else { continue };
        if !first_proxy.interpretation.outcome.is_accept() {
            continue;
        }
        let proxy_host = first_proxy.interpretation.host.clone();
        let proxy_devs = devs_of(&chain.proxy);

        for replay in &chain.replays {
            let Some(first_reply) = replay.replies.first() else { continue };
            let backend_devs = devs_of(&replay.backend);
            let mut pair_culprits: BTreeSet<String> = BTreeSet::new();
            for d in proxy_devs.iter().filter(|d| d.kind != DeviationKind::StrictReject) {
                let _ = d;
                pair_culprits.insert(chain.proxy.clone());
            }
            for d in backend_devs.iter().filter(|d| d.kind != DeviationKind::StrictReject) {
                let _ = d;
                pair_culprits.insert(replay.backend.clone());
            }

            // HoT: both accept, host views differ.
            if first_reply.interpretation.outcome.is_accept() {
                let backend_host = &first_reply.interpretation.host;
                if proxy_host.is_some() && backend_host.is_some() && proxy_host != *backend_host {
                    let mut evidence = format!(
                        "host views differ: proxy sees {:?}, backend sees {:?}",
                        String::from_utf8_lossy(proxy_host.as_deref().unwrap_or_default()),
                        String::from_utf8_lossy(backend_host.as_deref().unwrap_or_default()),
                    );
                    if let Some(oracle) = oracle {
                        evidence.push_str(&format!(
                            "; Host ABNF: proxy view {}, backend view {}",
                            oracle.host_label(proxy_host.as_deref().unwrap_or_default()),
                            oracle.host_label(backend_host.as_deref().unwrap_or_default()),
                        ));
                    }
                    findings.push(Finding {
                        class: AttackClass::Hot,
                        uuid: outcome.uuid,
                        origin: outcome.origin.clone(),
                        front: Some(chain.proxy.clone()),
                        back: Some(replay.backend.clone()),
                        culprits: {
                            let mut c = pair_culprits.clone();
                            c.insert(chain.proxy.clone());
                            c.insert(replay.backend.clone());
                            c
                        },
                        evidence,
                    });
                }
            }

            // HRS: desync — the back-end splits the forwarded stream into a
            // different number of messages than the proxy sent.
            let backend_msgs = replay.replies.len();
            if backend_msgs != chain.forwarded_count {
                findings.push(Finding {
                    class: AttackClass::Hrs,
                    uuid: outcome.uuid,
                    origin: outcome.origin.clone(),
                    front: Some(chain.proxy.clone()),
                    back: Some(replay.backend.clone()),
                    culprits: pair_culprits.clone(),
                    evidence: format!(
                        "desync: proxy forwarded {} message(s), backend parsed {}",
                        chain.forwarded_count, backend_msgs
                    ),
                });
            } else if let (Some(len), true) =
                (chain.forwarded_lens.first(), first_reply.interpretation.outcome.is_accept())
            {
                // Same count but different boundary for message 1.
                if first_reply.interpretation.consumed != *len {
                    findings.push(Finding {
                        class: AttackClass::Hrs,
                        uuid: outcome.uuid,
                        origin: outcome.origin.clone(),
                        front: Some(chain.proxy.clone()),
                        back: Some(replay.backend.clone()),
                        culprits: pair_culprits.clone(),
                        evidence: format!(
                            "boundary disagreement: forwarded message is {} bytes, backend consumed {}",
                            len, first_reply.interpretation.consumed
                        ),
                    });
                }
            }

            // HRS: framing-related rejection of a forwarded message the
            // proxy accepted.
            if let Outcome::Reject { status, reason } = &first_reply.interpretation.outcome {
                let r = reason.to_ascii_lowercase();
                if r.contains("content-length")
                    || r.contains("transfer")
                    || r.contains("chunk")
                    || r.contains("body shorter")
                {
                    findings.push(Finding {
                        class: AttackClass::Hrs,
                        uuid: outcome.uuid,
                        origin: outcome.origin.clone(),
                        front: Some(chain.proxy.clone()),
                        back: Some(replay.backend.clone()),
                        culprits: pair_culprits.clone(),
                        evidence: format!(
                            "proxy accepted but backend rejected framing ({status} {reason})"
                        ),
                    });
                }
            }

            // CPDoS: the proxy cached an error response for this chain.
            if replay.cache_stored_error {
                findings.push(Finding {
                    class: AttackClass::Cpdos,
                    uuid: outcome.uuid,
                    origin: outcome.origin.clone(),
                    front: Some(chain.proxy.clone()),
                    back: Some(replay.backend.clone()),
                    culprits: [chain.proxy.clone()].into_iter().collect(),
                    evidence: format!(
                        "error response ({}) stored in the {} cache",
                        first_reply.response.status, chain.proxy
                    ),
                });
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::Workflow;
    use hdiff_gen::TestCase;
    use hdiff_servers::products;
    use hdiff_wire::{Method, Request, Version};

    fn run(req: Request) -> Vec<Finding> {
        let w = Workflow::standard();
        let outcome = w.run_case(&TestCase::generated(1, req, "test"));
        detect_case(&products(), &outcome)
    }

    #[test]
    fn clean_request_yields_no_findings() {
        let findings = run(Request::get("example.com"));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn varnish_absolute_uri_hot_pair_detected() {
        let mut b = Request::builder();
        b.method(Method::Get)
            .target("test://h2.com/?a=1")
            .version(Version::Http11)
            .header("Host", "h1.com");
        let findings = run(b.build());
        let hot: Vec<_> = findings.iter().filter(|f| f.class == AttackClass::Hot).collect();
        assert!(hot.iter().any(|f| f.pair() == Some(("varnish", "iis"))), "{hot:?}");
        assert!(hot.iter().any(|f| f.pair() == Some(("varnish", "tomcat"))), "{hot:?}");
    }

    #[test]
    fn multiple_host_hot_pair_varnish_weblogic() {
        let mut b = Request::builder();
        b.method(Method::Get)
            .target("/")
            .version(Version::Http11)
            .header("Host", "h1.com")
            .header("Host", "h2.com");
        let findings = run(b.build());
        assert!(
            findings
                .iter()
                .any(|f| f.class == AttackClass::Hot && f.pair() == Some(("varnish", "weblogic"))),
            "{findings:?}"
        );
        // Squid must stay out of HoT pairs (Table I).
        assert!(
            !findings
                .iter()
                .any(|f| f.class == AttackClass::Hot && f.front.as_deref() == Some("squid")),
            "{findings:?}"
        );
    }

    #[test]
    fn ws_colon_te_smuggling_detected_with_culprits() {
        let mut b = Request::builder();
        b.method(Method::Post)
            .target("/")
            .version(Version::Http11)
            .header("Host", "h1.com")
            .header_raw(b"Transfer-Encoding : chunked".to_vec())
            .body(hdiff_wire::encode_chunked(b"smuggl"));
        let findings = run(b.build());
        let hrs: Vec<_> = findings.iter().filter(|f| f.class == AttackClass::Hrs).collect();
        assert!(!hrs.is_empty(), "{findings:?}");
        let culprits: BTreeSet<_> = hrs.iter().flat_map(|f| f.culprits.iter().cloned()).collect();
        assert!(culprits.contains("iis"), "{culprits:?}");
    }

    #[test]
    fn invalid_version_cpdos_detected_for_repairing_proxies() {
        let mut req = Request::get("h1.com");
        req.set_version(b"1.1/HTTP");
        let findings = run(req);
        let cpdos: BTreeSet<_> = findings
            .iter()
            .filter(|f| f.class == AttackClass::Cpdos)
            .filter_map(|f| f.front.clone())
            .collect();
        for proxy in ["nginx", "squid", "ats"] {
            assert!(cpdos.contains(proxy), "{proxy} missing from {cpdos:?}");
        }
        // Apache is strict: it rejects the bad version itself.
        assert!(!cpdos.contains("apache"));
    }

    #[test]
    fn hop_by_hop_host_removal_cpdos() {
        let mut b = Request::builder();
        b.method(Method::Get)
            .target("/")
            .version(Version::Http11)
            .header("Host", "h1.com")
            .header("Connection", "close, Host");
        let findings = run(b.build());
        let cpdos: BTreeSet<_> = findings
            .iter()
            .filter(|f| f.class == AttackClass::Cpdos)
            .filter_map(|f| f.front.clone())
            .collect();
        assert!(cpdos.contains("apache"), "{findings:?}");
    }

    #[test]
    fn chunk_overflow_repair_flags_squid_and_haproxy() {
        let mut b = Request::builder();
        b.method(Method::Post)
            .target("/")
            .version(Version::Http11)
            .header("Host", "h1.com")
            .header("Transfer-Encoding", "chunked")
            .body(b"1000000000000000a\r\nabc\r\n0\r\n\r\n".to_vec());
        let findings = run(b.build());
        let hrs_culprits: BTreeSet<_> = findings
            .iter()
            .filter(|f| f.class == AttackClass::Hrs)
            .flat_map(|f| f.culprits.iter().cloned())
            .collect();
        assert!(hrs_culprits.contains("squid"), "{findings:?}");
        assert!(hrs_culprits.contains("haproxy"), "{findings:?}");
    }
}
