//! Grammar-backed syntax oracle for detection and SR checking.
//!
//! The paper's detection models compare implementation *views*; the
//! adapted ABNF grammar additionally says which views are even
//! syntactically legal. This module wraps the compiled packrat matcher
//! ([`hdiff_abnf::CompiledGrammar`]) as a cheap, shareable oracle the
//! campaign runner consults per finding — the compile happens once, and
//! each query is a memoized match at the default budget (no 500k-budget
//! workarounds needed).

use std::sync::Arc;

use hdiff_abnf::matcher::{MatchOutcome, DEFAULT_BUDGET};
use hdiff_abnf::{memo, CompiledGrammar, Grammar};

/// A conformance oracle over one adapted grammar.
///
/// Cloning is cheap (the compiled program is behind an [`Arc`]) and the
/// oracle is `Sync`, so the work-stealing workers can all consult one
/// instance without coordination.
#[derive(Debug, Clone)]
pub struct SyntaxOracle {
    compiled: Arc<CompiledGrammar>,
}

impl SyntaxOracle {
    /// Builds (or reuses) the compiled form of `grammar`.
    pub fn new(grammar: &Grammar) -> SyntaxOracle {
        SyntaxOracle { compiled: grammar.compiled() }
    }

    /// Whether the grammar defines `rule` at all.
    pub fn has_rule(&self, rule: &str) -> bool {
        self.compiled.rule_index(rule).is_some()
    }

    /// Whether `value` belongs to `rule`'s production. `None` when the
    /// grammar lacks the rule or the matcher cannot decide (grammar
    /// cycle / budget overflow) — callers must treat that as "no
    /// verdict", never as invalid.
    pub fn conforms(&self, rule: &str, value: &[u8]) -> Option<bool> {
        if !self.has_rule(rule) {
            return None;
        }
        match memo::match_rule(&self.compiled, rule, value, DEFAULT_BUDGET) {
            MatchOutcome::Match => Some(true),
            MatchOutcome::NoMatch => Some(false),
            MatchOutcome::Overflow => None,
        }
    }

    /// Evidence-string label for a conformance verdict.
    pub fn label(&self, rule: &str, value: &[u8]) -> &'static str {
        match self.conforms(rule, value) {
            Some(true) => "valid",
            Some(false) => "invalid",
            None => "undecided",
        }
    }

    /// [`SyntaxOracle::label`] against the `Host` production — the rule
    /// every HoT finding is about.
    pub fn host_label(&self, value: &[u8]) -> &'static str {
        self.label("Host", value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> SyntaxOracle {
        let grammar = hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze(&hdiff_corpus::core_documents())
            .grammar;
        SyntaxOracle::new(&grammar)
    }

    #[test]
    fn host_conformance_verdicts() {
        let o = oracle();
        assert_eq!(o.conforms("Host", b"example.com"), Some(true));
        assert_eq!(o.conforms("Host", b"h1.com:8080"), Some(true));
        assert_eq!(o.conforms("Host", b"h1 h2"), Some(false));
        assert_eq!(o.conforms("Host", b"h1.com, h2.com"), Some(false));
        assert_eq!(o.label("Host", b"h1 h2"), "invalid");
    }

    #[test]
    fn unknown_rule_gives_no_verdict() {
        let o = oracle();
        assert_eq!(o.conforms("no-such-rule", b"x"), None);
        assert_eq!(o.label("no-such-rule", b"x"), "undecided");
    }
}
