//! Downgrade-desync detection: the h2→h1 translation as a differential
//! surface.
//!
//! The paper's three detection models (HRS, HoT, CPDoS) compare h1
//! implementations against each other. Production chains add a fourth
//! surface *in front of* all of them: an HTTP/2 edge that reconstructs
//! an HTTP/1.1 byte stream for the origin. The reconstruction is a
//! lossy translation — `Content-Length` must be invented, pseudo-headers
//! must become a request line and `Host`, forbidden h2 fields must be
//! rejected/stripped/forwarded — and every divergence between what the
//! front *meant* to forward and what the back end *reads* is a
//! semantic-gap candidate with the same exploit shapes as the h1
//! catalog.
//!
//! The differential signal here is three-cornered:
//!
//! 1. the h2 request list the client actually sent (ground truth, from
//!    [`hdiff_h2::parse_client_connection`]),
//! 2. each [`hdiff_servers::DowngradeProfile`]'s reconstructed h1 bytes,
//! 3. each h1 back-end's interpretation of those bytes.
//!
//! [`detect_downgrade`] emits [`Finding`]s in four downgrade classes,
//! distinguished by an evidence tag (`downgrade:<tag>: …`) rather than
//! by widening [`AttackClass`] — the pipeline's three-class vocabulary
//! (and every test iterating `AttackClass::ALL`) stays intact, matching
//! the [`crate::detect::DegradationFinding`] precedent:
//!
//! * `cl-mismatch` (HRS-shaped) — a forwarded `content-length` that lies
//!   about the DATA bytes desynchronizes the back end's framing.
//! * `te-forwarded` (HRS-shaped) — `transfer-encoding` survived the
//!   downgrade; the back end honors chunked framing against a body the
//!   front delimited by DATA length.
//! * `crlf-injection` (HRS-shaped) — CR/LF inside an h2 field value
//!   became real h1 header/request lines.
//! * `authority-host` (HoT-shaped) — fronts (or front and back) resolve
//!   the request's host identity differently.
//!
//! [`run_downgrade_campaign`] drives the seed-vector corpus through
//! every front×back pair, deterministically and in parallel via
//! [`crate::schedule::run_stealing`], minimizes the first finding of
//! each class at the h2-request level, and promotes it to a
//! [`ReplayBundle`] that `hdiff replay` re-verifies like any other.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use hdiff_gen::AttackClass;
use hdiff_h2::{encode_client_connection, parse_client_connection, EncodeOptions, H2Request};
use hdiff_servers::engine::FramingChoice;
use hdiff_servers::{
    fronts, DowngradeOutcome, DowngradeProfile, ParserProfile, Server, ServerReply,
};

use crate::findings::Finding;
use crate::protocol::{
    run_protocol_campaign, ProtoCase, ProtoExecution, ProtoView, Protocol, ProtocolCampaignOptions,
};
use crate::replay::{Fnv, ReplayBundle};
use crate::schedule;

/// Uuid base for downgrade-campaign cases (distinct from the h1
/// campaign's and the fuzzer's ranges, so merged reports stay
/// attributable).
pub const H2_UUID_BASE: u64 = 0xd290_0000_0000_0000;

/// Which protocol the campaign client speaks to the front of the chain.
/// `H1` is the existing pipeline; `H2` runs the downgrade workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Frontend {
    /// HTTP/1.1 end to end (the original Fig. 6 workflow).
    #[default]
    H1,
    /// HTTP/2 client connection into downgrade front ends.
    H2,
}

impl Frontend {
    /// Stable name used by the CLI, config, and replay bundles.
    pub fn as_str(self) -> &'static str {
        match self {
            Frontend::H1 => "h1",
            Frontend::H2 => "h2",
        }
    }

    /// Parses [`Frontend::as_str`] output.
    pub fn parse(s: &str) -> Option<Frontend> {
        match s {
            "h1" => Some(Frontend::H1),
            "h2" => Some(Frontend::H2),
            _ => None,
        }
    }
}

impl std::fmt::Display for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One front end's view of a case: its per-request translation verdicts,
/// the concatenated h1 stream it forwarded, and what every back end made
/// of that stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DowngradeChain {
    /// Front-end profile name.
    pub front: String,
    /// Per-h2-request translation outcomes, in stream order.
    pub outcomes: Vec<DowngradeOutcome>,
    /// The forwarded h1 byte stream (forwarded requests concatenated —
    /// one upstream connection, exactly how a desync becomes exploitable).
    pub h1: Vec<u8>,
    /// How many of the h2 requests were forwarded (vs rejected).
    pub forwarded_count: usize,
    /// Every back end's replies to the forwarded stream.
    pub backends: Vec<(String, Vec<ServerReply>)>,
}

/// Everything one h2 case produced across the downgrade matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DowngradeCaseOutcome {
    pub uuid: u64,
    pub origin: String,
    /// The exact client connection bytes.
    pub bytes: Vec<u8>,
    /// Connection-level parse error, when the fronts never saw requests.
    pub parse_error: Option<String>,
    /// The h2 requests the client connection carried (ground truth).
    pub requests: Vec<H2Request>,
    /// One chain per front end.
    pub chains: Vec<DowngradeChain>,
}

/// The downgrade test matrix: front ends × h1 back ends.
#[derive(Debug, Clone)]
pub struct DowngradeWorkflow {
    pub fronts: Vec<DowngradeProfile>,
    pub backends: Vec<ParserProfile>,
}

impl DowngradeWorkflow {
    /// Every modeled front against every modeled h1 back end.
    pub fn standard() -> DowngradeWorkflow {
        DowngradeWorkflow { fronts: fronts(), backends: hdiff_servers::backends() }
    }

    /// Runs one h2 client connection through the whole matrix,
    /// in-process. Deterministic: same bytes, same outcome.
    pub fn run_bytes(&self, uuid: u64, origin: &str, bytes: &[u8]) -> DowngradeCaseOutcome {
        hdiff_obs::count("h2.downgrade.cases", 1);
        let (requests, parse_error) = match parse_client_connection(bytes) {
            Ok(conn) => (conn.requests.into_iter().map(|p| p.request).collect::<Vec<_>>(), None),
            Err(e) => (Vec::new(), Some(e.to_string())),
        };
        let chains = self
            .fronts
            .iter()
            .map(|front| {
                let chain = run_chain(front, &requests, &self.backends);
                if chain.forwarded_count < chain.outcomes.len() {
                    hdiff_obs::count("h2.downgrade.rejects", 1);
                }
                chain
            })
            .collect();
        DowngradeCaseOutcome {
            uuid,
            origin: origin.to_string(),
            bytes: bytes.to_vec(),
            parse_error,
            requests,
            chains,
        }
    }
}

/// Translates `requests` through one front and feeds the forwarded
/// stream to every back end. Shared between the sim and TCP paths (the
/// TCP path substitutes the socket-observed translation for the local
/// one, then reuses the back-end half).
fn run_chain(
    front: &DowngradeProfile,
    requests: &[H2Request],
    backends: &[ParserProfile],
) -> DowngradeChain {
    let outcomes: Vec<DowngradeOutcome> = requests.iter().map(|r| front.downgrade(r)).collect();
    let h1: Vec<u8> = outcomes.iter().filter_map(|o| o.h1.as_deref()).flatten().copied().collect();
    let forwarded_count = outcomes.iter().filter(|o| o.is_forwarded()).count();
    let backends = run_backends(&h1, backends);
    DowngradeChain { front: front.name.clone(), outcomes, h1, forwarded_count, backends }
}

fn run_backends(h1: &[u8], backends: &[ParserProfile]) -> Vec<(String, Vec<ServerReply>)> {
    backends
        .iter()
        .map(|profile| {
            let replies = if h1.is_empty() {
                Vec::new()
            } else {
                Server::new(profile.clone()).handle_stream(h1)
            };
            (profile.name.clone(), replies)
        })
        .collect()
}

/// Runs one h2 case with the front ends served over real loopback
/// sockets ([`hdiff_net::H2FrontServer`]): the client connection bytes
/// travel a TCP stream, the front parses and downgrades them on its own
/// thread, and the h1 bytes it *logged having forwarded* feed the back
/// ends. `downgrade_digests` of this outcome must equal the sim
/// execution's — that is the byte-stability gate.
pub fn run_downgrade_case_tcp(
    workflow: &DowngradeWorkflow,
    uuid: u64,
    origin: &str,
    bytes: &[u8],
) -> io::Result<DowngradeCaseOutcome> {
    use std::io::{Read, Write};

    let mut parse_error = None;
    let mut requests: Vec<H2Request> = Vec::new();
    let mut chains = Vec::new();
    for front in &workflow.fronts {
        let server = hdiff_net::H2FrontServer::spawn(front.clone(), hdiff_net::DEFAULT_IO_TIMEOUT)
            .map_err(io::Error::other)?;
        let mut stream = std::net::TcpStream::connect(server.addr())?;
        stream.set_read_timeout(Some(hdiff_net::DEFAULT_IO_TIMEOUT))?;
        stream.write_all(bytes)?;
        stream.shutdown(std::net::Shutdown::Write)?;
        let mut response = Vec::new();
        stream.read_to_end(&mut response)?;
        let log = server
            .take_logs()
            .into_iter()
            .next()
            .ok_or_else(|| io::Error::other(format!("{}: no connection log", front.name)))?;
        parse_error = log.parse_error;
        requests = log.requests;
        let forwarded_count = log.outcomes.iter().filter(|o| o.is_forwarded()).count();
        let backends = run_backends(&log.h1, &workflow.backends);
        chains.push(DowngradeChain {
            front: front.name.clone(),
            outcomes: log.outcomes,
            h1: log.h1,
            forwarded_count,
            backends,
        });
    }
    Ok(DowngradeCaseOutcome {
        uuid,
        origin: origin.to_string(),
        bytes: bytes.to_vec(),
        parse_error,
        requests,
        chains,
    })
}

// ---------------------------------------------------------------------------
// Detection
// ---------------------------------------------------------------------------

/// The class tag of a downgrade finding (`downgrade:<tag>: …`), when the
/// finding came from [`detect_downgrade`].
pub fn finding_tag(f: &Finding) -> Option<&str> {
    f.evidence.strip_prefix("downgrade:")?.split(':').next()
}

/// First `host:` field value of an h1 byte stream (the host identity the
/// front believes it forwarded; the fronts emit the field lowercased).
fn first_host(h1: &[u8]) -> Option<Vec<u8>> {
    for line in h1.split(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.is_empty() {
            break; // end of the first request's header section
        }
        if line.len() >= 5 && line[..5].eq_ignore_ascii_case(b"host:") {
            let mut v = line[5..].to_vec();
            while v.first() == Some(&b' ') {
                v.remove(0);
            }
            return Some(v);
        }
    }
    None
}

/// Applies the downgrade detection model to one case outcome.
///
/// Findings reuse the existing [`Finding`] record: HRS-shaped classes
/// carry [`AttackClass::Hrs`], the host-identity class carries
/// [`AttackClass::Hot`]; the downgrade class proper lives in the
/// evidence tag (see [`finding_tag`]). `front`/`back` name the
/// implicated downgrade front and h1 back end (or two fronts, for the
/// cross-front host disagreement).
pub fn detect_downgrade(outcome: &DowngradeCaseOutcome) -> Vec<Finding> {
    let mut findings = Vec::new();
    for chain in &outcome.chains {
        let notes: Vec<&str> =
            chain.outcomes.iter().flat_map(|o| o.notes.iter()).map(String::as_str).collect();
        if chain.forwarded_count == 0 {
            continue;
        }
        let front_host = first_host(&chain.h1);

        // cl-mismatch: the forwarded content-length lies about the DATA
        // bytes; a back end that believed it desynchronizes (extra
        // garbage message, or a framing reject).
        if let Some(note) = notes.iter().find(|n| n.starts_with("cl-mismatch")) {
            for (back, replies) in &chain.backends {
                let first_reject =
                    replies.first().is_none_or(|r| !r.interpretation.outcome.is_accept());
                if replies.len() != chain.forwarded_count || first_reject {
                    findings.push(finding(
                        AttackClass::Hrs,
                        outcome,
                        &chain.front,
                        back,
                        format!(
                            "downgrade:cl-mismatch: {note}; {back} read {} message(s) from {} forwarded",
                            replies.len(),
                            chain.forwarded_count
                        ),
                    ));
                }
            }
        }

        // te-forwarded: transfer-encoding survived into the h1 stream; a
        // back end that honors it frames the body differently than the
        // DATA length the front saw.
        if notes.contains(&"te-forwarded") {
            for (back, replies) in &chain.backends {
                let first = replies.first();
                let chunked =
                    first.is_some_and(|r| r.interpretation.framing == FramingChoice::Chunked);
                let first_reject = first.is_none_or(|r| !r.interpretation.outcome.is_accept());
                if chunked || first_reject || replies.len() != chain.forwarded_count {
                    findings.push(finding(
                        AttackClass::Hrs,
                        outcome,
                        &chain.front,
                        back,
                        format!(
                            "downgrade:te-forwarded: {back} framed by transfer-encoding \
                             ({} message(s) from {} forwarded, chunked={chunked})",
                            replies.len(),
                            chain.forwarded_count
                        ),
                    ));
                }
            }
        }

        // crlf-injection: CR/LF from an h2 field value reached the h1
        // wire verbatim; the back end read the injected bytes as real
        // header lines (accept) or as a smuggled extra request.
        if notes.iter().any(|n| n.starts_with("crlf-forwarded")) {
            for (back, replies) in &chain.backends {
                let first_accept =
                    replies.first().is_some_and(|r| r.interpretation.outcome.is_accept());
                if first_accept || replies.len() > chain.forwarded_count {
                    findings.push(finding(
                        AttackClass::Hrs,
                        outcome,
                        &chain.front,
                        back,
                        format!(
                            "downgrade:crlf-injection: injected CR/LF reached {back} as h1 \
                             structure ({} message(s) from {} forwarded)",
                            replies.len(),
                            chain.forwarded_count
                        ),
                    ));
                }
            }
        }

        // authority-host within one chain: the front resolved a host
        // identity, but the back end acts on a different one (duplicate
        // Host surviving the downgrade, last-wins back ends, …).
        let host_gap = notes.iter().any(|n| n.starts_with("authority-host-disagree"))
            || notes.contains(&"host-duplicated");
        if host_gap {
            if let Some(fh) = &front_host {
                for (back, replies) in &chain.backends {
                    let Some(first) = replies.first() else { continue };
                    if !first.interpretation.outcome.is_accept() {
                        continue;
                    }
                    if let Some(bh) = &first.interpretation.host {
                        if !bh.eq_ignore_ascii_case(fh) {
                            findings.push(finding(
                                AttackClass::Hot,
                                outcome,
                                &chain.front,
                                back,
                                format!(
                                    "downgrade:authority-host: {} forwards host={}, {back} acts on host={}",
                                    chain.front,
                                    String::from_utf8_lossy(fh),
                                    String::from_utf8_lossy(bh)
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // authority-host across fronts: two fronts forwarded the same h2
    // request under different host identities — the HoT shape of the
    // downgrade gap (front-dependent routing/vhost selection).
    let forwarding: Vec<(&DowngradeChain, Vec<u8>)> = outcome
        .chains
        .iter()
        .filter(|c| c.forwarded_count > 0)
        .filter_map(|c| first_host(&c.h1).map(|h| (c, h)))
        .collect();
    for (i, (a, ha)) in forwarding.iter().enumerate() {
        for (b, hb) in forwarding.iter().skip(i + 1) {
            let noted = |c: &DowngradeChain| {
                c.outcomes
                    .iter()
                    .flat_map(|o| o.notes.iter())
                    .any(|n| n.starts_with("authority-host-disagree") || n == "host-duplicated")
            };
            if !ha.eq_ignore_ascii_case(hb) && (noted(a) || noted(b)) {
                findings.push(finding(
                    AttackClass::Hot,
                    outcome,
                    &a.front,
                    &b.front,
                    format!(
                        "downgrade:authority-host: fronts disagree on effective host: {}={} vs {}={}",
                        a.front,
                        String::from_utf8_lossy(ha),
                        b.front,
                        String::from_utf8_lossy(hb)
                    ),
                ));
            }
        }
    }

    hdiff_obs::count("h2.downgrade.findings", findings.len() as u64);
    findings
}

fn finding(
    class: AttackClass,
    outcome: &DowngradeCaseOutcome,
    front: &str,
    back: &str,
    evidence: String,
) -> Finding {
    Finding {
        class,
        uuid: outcome.uuid,
        origin: outcome.origin.clone(),
        front: Some(front.to_string()),
        back: Some(back.to_string()),
        culprits: [front.to_string(), back.to_string()].into_iter().collect(),
        evidence,
    }
}

// ---------------------------------------------------------------------------
// Digests
// ---------------------------------------------------------------------------

/// Behavior digests for one downgrade case: one `h2:conn` digest over
/// the connection-level parse, and one `h2:<front>` digest per chain
/// covering the translation verdicts, the exact forwarded h1 bytes, and
/// every back-end reply. Sim and TCP executions of the same case must
/// produce identical digests — this is the determinism anchor replay
/// bundles freeze.
pub fn downgrade_digests(outcome: &DowngradeCaseOutcome) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut conn = Fnv::new();
    match &outcome.parse_error {
        None => conn.write_u64(0),
        Some(e) => {
            conn.write_u64(1);
            conn.write(e.as_bytes());
        }
    }
    conn.write_u64(outcome.requests.len() as u64);
    out.push(("h2:conn".to_string(), conn.0));

    for chain in &outcome.chains {
        let mut h = Fnv::new();
        for o in &chain.outcomes {
            match (&o.h1, &o.reject) {
                (Some(bytes), _) => {
                    h.write_u64(1);
                    h.write(bytes);
                }
                (None, Some((status, reason))) => {
                    h.write_u64(0);
                    h.write_u64(u64::from(*status));
                    h.write(reason.as_bytes());
                }
                (None, None) => h.write_u64(2),
            }
            for note in &o.notes {
                h.write(note.as_bytes());
            }
        }
        h.write(&chain.h1);
        h.write_u64(chain.forwarded_count as u64);
        for (back, replies) in &chain.backends {
            h.write(back.as_bytes());
            h.write_u64(replies.len() as u64);
            for reply in replies {
                let i = &reply.interpretation;
                h.write_u64(u64::from(i.outcome.status()));
                h.write_u64(u64::from(i.outcome.is_accept()));
                match &i.host {
                    None => h.write_u64(0),
                    Some(host) => {
                        h.write_u64(1);
                        h.write(host);
                    }
                }
                h.write(&i.body);
                h.write(format!("{:?}", i.framing).as_bytes());
                h.write_u64(i.consumed as u64);
                h.write_u64(u64::from(reply.response.status.as_u16()));
            }
        }
        out.push((format!("h2:{}", chain.front), h.0));
    }
    out
}

// ---------------------------------------------------------------------------
// Seed vectors
// ---------------------------------------------------------------------------

/// One downgrade seed: a named h2 request list targeting a translation
/// gap.
#[derive(Debug, Clone)]
pub struct SeedVector {
    /// Stable identifier; campaign origins are `h2:<id>`.
    pub id: &'static str,
    pub description: &'static str,
    pub requests: Vec<H2Request>,
}

/// The downgrade seed corpus, in canonical order. Deterministic: every
/// call returns the same vectors.
pub fn seed_vectors() -> Vec<SeedVector> {
    let v = |id, description, requests| SeedVector { id, description, requests };
    vec![
        v("plain-get", "well-formed GET; must translate cleanly everywhere", vec![H2Request::get(
            "/index.html",
            "example.com",
        )]),
        v(
            "pipelined-pair",
            "two streams onto one upstream connection; boundary accounting baseline",
            vec![H2Request::get("/a", "example.com"), H2Request::get("/b", "example.com")],
        ),
        v(
            "authority-host",
            ":authority and an h2 host header disagree on the request's identity",
            vec![H2Request::get("/", "front.example").with_header("host", "back.example")],
        ),
        v(
            "cl-short",
            "content-length understates the DATA bytes; trailing bytes become a phantom message",
            vec![H2Request::post("/upload", "example.com", b"AAAAAAAAAAA".to_vec())
                .with_header("content-length", "3")],
        ),
        v(
            "cl-long",
            "content-length overstates the DATA bytes; the back end waits for a body that never comes",
            vec![H2Request::post("/upload", "example.com", b"abc".to_vec())
                .with_header("content-length", "11")],
        ),
        v(
            "cl-dup",
            "two content-length headers, the first lying about the DATA bytes",
            vec![H2Request::post("/upload", "example.com", b"abcdefg".to_vec())
                .with_header("content-length", "3")
                .with_header("content-length", "7")],
        ),
        v(
            "te-chunked",
            "transfer-encoding in h2 (RFC 9113 forbids it); chunked terminator hides a smuggled request",
            vec![H2Request::post(
                "/submit",
                "example.com",
                b"0\r\n\r\nGET /smuggled HTTP/1.1\r\nhost: evil.example\r\n\r\n".to_vec(),
            )
            .with_header("transfer-encoding", "chunked")],
        ),
        v(
            "crlf-value",
            "CR/LF inside a header value becomes an extra h1 header line",
            vec![H2Request::get("/", "example.com").with_header("x-note", "a\r\nx-injected: 1")],
        ),
        v(
            "crlf-smuggle-request",
            "CR/LF CR/LF inside a header value terminates the h1 head and smuggles a whole request",
            vec![H2Request::get("/", "example.com").with_header(
                "x-note",
                "a\r\n\r\nGET /admin HTTP/1.1\r\nhost: internal.example\r\n\r\n",
            )],
        ),
        v(
            "path-dotdot",
            "dot-segments in :path; edge normalization disagrees with verbatim fronts",
            vec![H2Request::get("/static/../admin/panel", "example.com")],
        ),
        v(
            "path-space",
            "raw space in :path; verbatim translation corrupts the h1 request line",
            vec![H2Request::get("/a b", "example.com")],
        ),
        v(
            "pseudo-after-regular",
            "pseudo-header after a regular field; ordering rule enforced only by strict fronts",
            vec![H2Request {
                headers: vec![
                    hdiff_h2::Header::new(":method", "GET"),
                    hdiff_h2::Header::new(":scheme", "http"),
                    hdiff_h2::Header::new(":path", "/"),
                    hdiff_h2::Header::new("x-early", "1"),
                    hdiff_h2::Header::new(":authority", "example.com"),
                ],
                body: Vec::new(),
            }],
        ),
    ]
}

// ---------------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------------

/// Result of minimizing an h2 case against a finding predicate.
#[derive(Debug, Clone)]
pub struct H2Minimized {
    /// The minimized request list (still triggers the finding).
    pub requests: Vec<H2Request>,
    /// Candidate executions tried.
    pub attempts: usize,
    /// Candidates that kept the finding and were accepted.
    pub accepted: usize,
}

/// Greedy structural minimization at the h2-request level: drop whole
/// requests, drop headers one at a time, then shrink bodies — keeping
/// every candidate that still reproduces a finding with the `target`'s
/// (class, tag, front, back). Deterministic; candidates are re-encoded
/// with canonical [`EncodeOptions`].
pub fn minimize_h2_case(
    workflow: &DowngradeWorkflow,
    requests: &[H2Request],
    target: &Finding,
) -> H2Minimized {
    const MAX_ATTEMPTS: usize = 2000;
    let mut attempts = 0usize;
    let mut accepted = 0usize;
    let tag = finding_tag(target).map(str::to_string);
    let reproduces = |reqs: &[H2Request], attempts: &mut usize| -> bool {
        if reqs.is_empty() {
            return false;
        }
        *attempts += 1;
        let bytes = encode_client_connection(reqs, &EncodeOptions::default());
        let outcome = workflow.run_bytes(target.uuid, &target.origin, &bytes);
        detect_downgrade(&outcome).iter().any(|f| {
            f.class == target.class
                && finding_tag(f).map(str::to_string) == tag
                && f.front == target.front
                && f.back == target.back
        })
    };

    let mut cur = requests.to_vec();
    loop {
        let mut changed = false;

        // Whole requests.
        let mut i = 0;
        while cur.len() > 1 && i < cur.len() && attempts < MAX_ATTEMPTS {
            let mut cand = cur.clone();
            cand.remove(i);
            if reproduces(&cand, &mut attempts) {
                cur = cand;
                accepted += 1;
                changed = true;
            } else {
                i += 1;
            }
        }

        // Individual headers.
        for r in 0..cur.len() {
            let mut h = 0;
            while h < cur[r].headers.len() && attempts < MAX_ATTEMPTS {
                let mut cand = cur.clone();
                cand[r].headers.remove(h);
                if reproduces(&cand, &mut attempts) {
                    cur = cand;
                    accepted += 1;
                    changed = true;
                } else {
                    h += 1;
                }
            }
        }

        // Bodies: clear, else halve repeatedly.
        for r in 0..cur.len() {
            while !cur[r].body.is_empty() && attempts < MAX_ATTEMPTS {
                let mut cand = cur.clone();
                let len = cand[r].body.len();
                cand[r].body.truncate(if len <= 4 { 0 } else { len / 2 });
                if reproduces(&cand, &mut attempts) {
                    cur = cand;
                    accepted += 1;
                    changed = true;
                } else {
                    break;
                }
            }
        }

        if !changed || attempts >= MAX_ATTEMPTS {
            break;
        }
    }
    H2Minimized { requests: cur, attempts, accepted }
}

// ---------------------------------------------------------------------------
// The Protocol instance
// ---------------------------------------------------------------------------

/// The h2 downgrade surface as a [`Protocol`] workload: the seed vectors
/// become the seed corpus, [`DowngradeWorkflow::run_bytes`] +
/// [`detect_downgrade`] + [`downgrade_digests`] become the execution,
/// and [`minimize_h2_case`] minimizes at the h2-request level behind the
/// byte-level trait surface. The sim campaign path *is*
/// [`run_protocol_campaign`] over this instance — downgrade-specific
/// code keeps only the detection model, the seeds, and the TCP testbed.
#[derive(Debug, Clone)]
pub struct DowngradeProtocol {
    workflow: DowngradeWorkflow,
}

impl DowngradeProtocol {
    /// The standard front×back matrix behind the trait.
    pub fn standard() -> DowngradeProtocol {
        DowngradeProtocol { workflow: DowngradeWorkflow::standard() }
    }
}

impl Protocol for DowngradeProtocol {
    fn name(&self) -> &'static str {
        "h2"
    }

    fn uuid_base(&self) -> u64 {
        H2_UUID_BASE
    }

    fn grammars(&self) -> Vec<(String, hdiff_abnf::Grammar)> {
        // Binary-framed: the downgrade surface has no ABNF grammar of
        // its own (the h1 grammar belongs to the http1 workload).
        Vec::new()
    }

    fn seed_cases(&self) -> Vec<ProtoCase> {
        seed_vectors()
            .into_iter()
            .map(|v| ProtoCase {
                id: v.id.to_string(),
                description: v.description.to_string(),
                bytes: encode_client_connection(&v.requests, &EncodeOptions::default()),
            })
            .collect()
    }

    fn execute(&self, uuid: u64, origin: &str, bytes: &[u8]) -> ProtoExecution {
        let outcome = self.workflow.run_bytes(uuid, origin, bytes);
        let views = outcome
            .chains
            .iter()
            .map(|chain| ProtoView {
                view: chain.front.clone(),
                accepted: !chain.outcomes.is_empty()
                    && chain.forwarded_count == chain.outcomes.len(),
                status: chain
                    .outcomes
                    .iter()
                    .find_map(|o| o.reject.as_ref().map(|(status, _)| *status))
                    .unwrap_or(200),
                metrics: vec![
                    ("forwarded".to_string(), chain.forwarded_count.to_string()),
                    ("h1_bytes".to_string(), chain.h1.len().to_string()),
                ],
            })
            .collect();
        ProtoExecution {
            views,
            findings: detect_downgrade(&outcome),
            digests: downgrade_digests(&outcome),
        }
    }

    fn finding_tag(&self, f: &Finding) -> Option<String> {
        finding_tag(f).map(str::to_string)
    }

    fn minimize(&self, bytes: &[u8], target: &Finding) -> Vec<u8> {
        // The structural minimizer works on the parsed request list;
        // encode(parse(encode(x))) is byte-identical (the h2 codec round
        // trips), so going through bytes loses nothing.
        match parse_client_connection(bytes) {
            Ok(conn) => {
                let requests: Vec<H2Request> =
                    conn.requests.into_iter().map(|p| p.request).collect();
                let minimized = minimize_h2_case(&self.workflow, &requests, target);
                encode_client_connection(&minimized.requests, &EncodeOptions::default())
            }
            Err(_) => bytes.to_vec(),
        }
    }

    fn record_bundle(
        &self,
        name: &str,
        description: &str,
        uuid: u64,
        origin: &str,
        bytes: &[u8],
    ) -> ReplayBundle {
        // Frontend-keyed h2 bundles, not protocol-keyed ones: promoted
        // bundles stay byte-identical to the pre-trait campaign's.
        ReplayBundle::record_h2(name, description, uuid, origin, bytes, &self.workflow)
    }
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// Options for [`run_downgrade_campaign`].
#[derive(Debug, Clone, Default)]
pub struct DowngradeCampaignOptions {
    /// Worker threads for the case fan-out (`0`/`1` runs inline).
    pub threads: usize,
    /// Serve the front ends over loopback TCP instead of in-process.
    pub tcp: bool,
    /// When set, the first finding of each downgrade class is minimized
    /// and promoted to a replay bundle in this directory.
    pub promote_dir: Option<PathBuf>,
}

/// What a downgrade campaign produced.
#[derive(Debug, Clone)]
pub struct DowngradeSummary {
    /// Seed vectors executed.
    pub cases: usize,
    /// Every finding, in corpus order.
    pub findings: Vec<Finding>,
    /// Sorted distinct downgrade class tags observed.
    pub classes: Vec<String>,
    /// Replay bundles written (when `promote_dir` was set).
    pub promoted: Vec<PathBuf>,
}

/// Runs the seed-vector corpus through the downgrade matrix. The result
/// is invariant in `threads` (results merge in corpus order) and in the
/// transport (TCP fronts must reproduce the sim translation byte for
/// byte).
pub fn run_downgrade_campaign(opts: &DowngradeCampaignOptions) -> io::Result<DowngradeSummary> {
    // The in-process path is the generic protocol campaign over the
    // DowngradeProtocol instance — same fan-out, same corpus-order
    // merge, same first-per-class promotion, shared with every other
    // workload. Only the TCP testbed keeps a bespoke body below.
    if !opts.tcp {
        let proto = DowngradeProtocol::standard();
        let summary = run_protocol_campaign(
            &proto,
            &ProtocolCampaignOptions {
                threads: opts.threads,
                promote_dir: opts.promote_dir.clone(),
            },
        )?;
        hdiff_obs::count("h2.campaign.findings", summary.findings.len() as u64);
        return Ok(DowngradeSummary {
            cases: summary.cases,
            findings: summary.findings,
            classes: summary.classes,
            promoted: summary.promoted,
        });
    }

    let workflow = DowngradeWorkflow::standard();
    let vectors = seed_vectors();
    let cases: Vec<(u64, SeedVector)> =
        vectors.into_iter().enumerate().map(|(i, v)| (H2_UUID_BASE + i as u64, v)).collect();

    let results: Vec<io::Result<(DowngradeCaseOutcome, Vec<Finding>)>> =
        schedule::run_stealing(&cases, opts.threads.max(1), |(uuid, vector)| {
            let bytes = encode_client_connection(&vector.requests, &EncodeOptions::default());
            let origin = format!("h2:{}", vector.id);
            let outcome = run_downgrade_case_tcp(&workflow, *uuid, &origin, &bytes)?;
            let findings = detect_downgrade(&outcome);
            Ok((outcome, findings))
        });

    let mut findings = Vec::new();
    let mut per_case: Vec<(usize, Vec<Finding>)> = Vec::new();
    for (idx, result) in results.into_iter().enumerate() {
        let (_, case_findings) = result?;
        per_case.push((idx, case_findings.clone()));
        findings.extend(case_findings);
    }

    let mut classes: BTreeSet<String> = BTreeSet::new();
    for f in &findings {
        if let Some(tag) = finding_tag(f) {
            classes.insert(tag.to_string());
        }
    }

    let mut promoted = Vec::new();
    if let Some(dir) = &opts.promote_dir {
        std::fs::create_dir_all(dir)?;
        let mut done: BTreeSet<String> = BTreeSet::new();
        for (idx, case_findings) in &per_case {
            let (_, vector) = &cases[*idx];
            for f in case_findings {
                let Some(tag) = finding_tag(f).map(str::to_string) else { continue };
                if !done.insert(tag.clone()) {
                    continue;
                }
                let minimized = minimize_h2_case(&workflow, &vector.requests, f);
                let bytes =
                    encode_client_connection(&minimized.requests, &EncodeOptions::default());
                let name = format!("h2-{tag}");
                let bundle = ReplayBundle::record_h2(
                    &name,
                    vector.description,
                    f.uuid,
                    &f.origin,
                    &bytes,
                    &workflow,
                );
                let path = dir.join(format!("{name}.json"));
                bundle.save(&path)?;
                promoted.push(path);
            }
        }
    }

    hdiff_obs::count("h2.campaign.findings", findings.len() as u64);
    Ok(DowngradeSummary {
        cases: cases.len(),
        findings,
        classes: classes.into_iter().collect(),
        promoted,
    })
}

/// Regenerates the golden h2 corpus: one minimized, promoted bundle per
/// downgrade class the seed corpus detects, written to `dir`.
pub fn regen_h2_golden(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let opts =
        DowngradeCampaignOptions { threads: 1, tcp: false, promote_dir: Some(dir.to_path_buf()) };
    Ok(run_downgrade_campaign(&opts)?.promoted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_vector(id: &str) -> (DowngradeCaseOutcome, Vec<Finding>) {
        let workflow = DowngradeWorkflow::standard();
        let vector = seed_vectors().into_iter().find(|v| v.id == id).unwrap();
        let bytes = encode_client_connection(&vector.requests, &EncodeOptions::default());
        let outcome = workflow.run_bytes(1, &format!("h2:{id}"), &bytes);
        let findings = detect_downgrade(&outcome);
        (outcome, findings)
    }

    #[test]
    fn plain_get_is_clean() {
        let (outcome, findings) = run_vector("plain-get");
        assert!(outcome.parse_error.is_none());
        assert_eq!(outcome.chains.len(), 3);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cl_lie_flags_forwarding_fronts() {
        let (_, findings) = run_vector("cl-short");
        assert!(!findings.is_empty());
        for f in &findings {
            assert_eq!(f.class, AttackClass::Hrs);
            assert_eq!(finding_tag(f), Some("cl-mismatch"));
            assert_ne!(f.front.as_deref(), Some("h2-edge"), "edge recomputes CL: {f}");
        }
    }

    #[test]
    fn te_forwarded_flags_only_the_legacy_front() {
        let (_, findings) = run_vector("te-chunked");
        let te: Vec<&Finding> =
            findings.iter().filter(|f| finding_tag(f) == Some("te-forwarded")).collect();
        assert!(!te.is_empty());
        for f in &te {
            assert_eq!(f.front.as_deref(), Some("h2-legacy"), "{f}");
        }
    }

    #[test]
    fn crlf_value_injects_through_legacy() {
        let (_, findings) = run_vector("crlf-value");
        let inj: Vec<&Finding> =
            findings.iter().filter(|f| finding_tag(f) == Some("crlf-injection")).collect();
        assert!(!inj.is_empty());
        assert!(inj.iter().all(|f| f.front.as_deref() == Some("h2-legacy")), "{inj:?}");
    }

    #[test]
    fn authority_host_split_is_a_hot_finding() {
        let (_, findings) = run_vector("authority-host");
        let hot: Vec<&Finding> =
            findings.iter().filter(|f| finding_tag(f) == Some("authority-host")).collect();
        assert!(!hot.is_empty());
        assert!(hot.iter().all(|f| f.class == AttackClass::Hot));
        // The cross-front shape must be present: edge forwards the
        // authority, relay prefers the h2 host header.
        assert!(
            hot.iter()
                .any(|f| f.front.as_deref() == Some("h2-edge")
                    && f.back.as_deref() == Some("h2-relay")),
            "{hot:?}"
        );
    }

    #[test]
    fn campaign_detects_at_least_three_distinct_classes() {
        let summary = run_downgrade_campaign(&DowngradeCampaignOptions::default()).unwrap();
        assert!(summary.cases >= 10);
        assert!(
            summary.classes.len() >= 3,
            "expected >=3 downgrade classes, got {:?}",
            summary.classes
        );
        assert!(summary.classes.contains(&"cl-mismatch".to_string()));
        assert!(summary.classes.contains(&"authority-host".to_string()));
    }

    #[test]
    fn campaign_is_thread_invariant() {
        let single = run_downgrade_campaign(&DowngradeCampaignOptions::default()).unwrap();
        let threaded = run_downgrade_campaign(&DowngradeCampaignOptions {
            threads: 4,
            ..DowngradeCampaignOptions::default()
        })
        .unwrap();
        assert_eq!(single.findings, threaded.findings);
        assert_eq!(single.classes, threaded.classes);
    }

    #[test]
    fn digests_are_stable_across_runs() {
        let (a, _) = run_vector("cl-short");
        let (b, _) = run_vector("cl-short");
        let digests = downgrade_digests(&a);
        assert_eq!(digests, downgrade_digests(&b));
        let labels: Vec<&str> = digests.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"h2:conn"));
        assert!(labels.contains(&"h2:h2-edge"));
    }

    #[test]
    fn minimizer_strips_inert_headers() {
        let workflow = DowngradeWorkflow::standard();
        let mut requests =
            seed_vectors().into_iter().find(|v| v.id == "cl-short").unwrap().requests;
        for i in 0..6 {
            requests[0] = requests[0].clone().with_header(&format!("x-noise-{i}"), "padding");
        }
        let bytes = encode_client_connection(&requests, &EncodeOptions::default());
        let outcome = workflow.run_bytes(7, "h2:cl-short", &bytes);
        let target = detect_downgrade(&outcome).into_iter().next().unwrap();
        let min = minimize_h2_case(&workflow, &requests, &target);
        assert!(min.accepted > 0);
        assert!(
            !min.requests[0].headers.iter().any(|h| h.name.starts_with(b"x-noise")),
            "noise headers survived: {:?}",
            min.requests[0].headers
        );
        // The lying content-length must survive: it is the finding.
        assert!(min.requests[0].header("content-length").is_some());
    }

    #[test]
    fn finding_tag_parses_the_evidence_prefix() {
        let f = Finding {
            class: AttackClass::Hrs,
            uuid: 1,
            origin: "h2:x".into(),
            front: None,
            back: None,
            culprits: BTreeSet::new(),
            evidence: "downgrade:cl-mismatch: declared=3 data=11".into(),
        };
        assert_eq!(finding_tag(&f), Some("cl-mismatch"));
        let plain = Finding { evidence: "host views differ".into(), ..f };
        assert_eq!(finding_tag(&plain), None);
    }

    #[test]
    fn frontend_round_trips() {
        for fe in [Frontend::H1, Frontend::H2] {
            assert_eq!(Frontend::parse(fe.as_str()), Some(fe));
        }
        assert_eq!(Frontend::parse("h3"), None);
        assert_eq!(Frontend::default(), Frontend::H1);
    }
}
