//! Work-stealing fan-out for campaign chunks.
//!
//! The old scheduler pre-split every chunk into `threads` equal slices
//! (`div_ceil`), so one slow case — a stalled-read fault, a pathological
//! mutation — pinned its whole slice while sibling workers sat idle.
//! Here workers share a single atomic cursor over the chunk and claim the
//! next pending case the moment they finish one, so stragglers never
//! strand unrelated work behind them.
//!
//! Telemetry note: workers never touch shared telemetry state. Each case
//! runs under [`hdiff_obs::with_case`], which collects that case's spans,
//! counters and histograms into a private bucket travelling inside the
//! [`crate::CaseRecord`]. The runner merges buckets in corpus order during
//! `summarize`, so the merged totals are identical whichever worker — or
//! how many workers — executed each case, and resuming from a checkpoint
//! re-merges persisted buckets without double-counting.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `job` over every item, fanning out across at most `workers`
/// OS threads, and returns the results in input order.
///
/// * Workers claim items one at a time from a shared [`AtomicUsize`]
///   cursor — no static pre-split, so a straggler only occupies the one
///   thread that claimed it.
/// * The worker count is clamped to `items.len()`: a chunk of 3 cases on
///   a 16-thread engine spawns 3 workers, never 16 (13 of which would
///   have nothing to do).
/// * `workers <= 1` (and single-item chunks) run inline on the caller's
///   thread with no spawning at all.
pub fn run_stealing<T, R, F>(items: &[T], workers: usize, job: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers.max(1).min(items.len());
    if workers == 1 {
        return items.iter().map(&job).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(idx) else { break };
                        done.push((idx, job(item)));
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scheduler worker panicked")).collect()
    });

    for (idx, result) in buckets.into_iter().flatten() {
        debug_assert!(slots[idx].is_none(), "case {idx} claimed twice");
        slots[idx] = Some(result);
    }
    slots.into_iter().map(|s| s.expect("every case is claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let got = run_stealing(&items, 8, |&n| n * 3);
        let want: Vec<usize> = items.iter().map(|n| n * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let items: Vec<u8> = Vec::new();
        let got = run_stealing(&items, 8, |_| unreachable!("no items to run"));
        assert!(got.is_empty());
    }

    #[test]
    fn workers_are_clamped_to_item_count() {
        // 3 items, 16 requested workers: at most 3 distinct threads may
        // ever touch a case (plus zero empty spawns doing no work).
        let threads = Mutex::new(HashSet::new());
        let items = [1u8, 2, 3];
        let got = run_stealing(&items, 16, |&n| {
            threads.lock().unwrap().insert(std::thread::current().id());
            n
        });
        assert_eq!(got, vec![1, 2, 3]);
        assert!(threads.lock().unwrap().len() <= 3, "{:?}", threads.lock().unwrap());
    }

    #[test]
    fn single_worker_runs_inline() {
        let caller = std::thread::current().id();
        let items = [1u8, 2, 3];
        let got = run_stealing(&items, 1, |&n| {
            assert_eq!(std::thread::current().id(), caller);
            n * 2
        });
        assert_eq!(got, vec![2, 4, 6]);
    }

    /// The no-idle property the rewrite exists for: with one straggler
    /// (index 0) and many quick cases, the other worker must drain every
    /// quick case while the straggler is still running. The straggler
    /// spins until it *observes* all other cases complete — under the old
    /// `div_ceil` pre-split (2 workers × 6-item slices) the quick cases
    /// in the straggler's own slice could never finish and this would
    /// time out.
    #[test]
    fn no_worker_idles_while_cases_remain() {
        let quick_done = AtomicUsize::new(0);
        let items: Vec<usize> = (0..12).collect();
        let quick_total = items.len() - 1;
        let got = run_stealing(&items, 2, |&n| {
            if n == 0 {
                let deadline = Instant::now() + Duration::from_secs(10);
                while quick_done.load(Ordering::SeqCst) < quick_total {
                    assert!(
                        Instant::now() < deadline,
                        "straggler stranded {} unfinished case(s): a worker idled",
                        quick_total - quick_done.load(Ordering::SeqCst)
                    );
                    std::thread::yield_now();
                }
            } else {
                quick_done.fetch_add(1, Ordering::SeqCst);
            }
            n
        });
        assert_eq!(got, items);
    }
}
