//! HTTP/1.1 wire message model for HDiff.
//!
//! This crate defines the byte-exact message representation every other part
//! of HDiff works with. HDiff deliberately generates *malformed* HTTP — a
//! convenient high-level `http`-style API would round-trip away exactly the
//! ambiguity the framework needs to preserve. Everything here is therefore
//! byte-oriented:
//!
//! * [`Request`] / [`Response`] — ordered, duplicate-preserving, byte-exact
//!   messages with explicit serialization ([`Request::to_bytes`]).
//! * [`HeaderField`] — one raw header line; the *name* may legitimately
//!   contain trailing whitespace or control bytes, because that is precisely
//!   the kind of input HDiff tests.
//! * [`parse`] — an RFC 7230-strict reference parser used as the baseline
//!   oracle (simulated products apply their own lenient interpretations on
//!   top of the raw bytes).
//! * [`chunked`] — chunked transfer-coding encoder and a decoder with
//!   configurable error-recovery semantics, mirroring the "message repair"
//!   behaviors the paper exploits (§IV-B *Bad chunk-size value*).
//! * [`uri`] — request-target and `Host` parsing (origin/absolute/authority/
//!   asterisk forms) with the ambiguity knobs needed for Host-of-Troubles.
//!
//! # Example
//!
//! ```
//! use hdiff_wire::{Request, Method, Version};
//!
//! let req = Request::builder()
//!     .method(Method::Get)
//!     .target("/index.html")
//!     .version(Version::Http11)
//!     .header("Host", "example.com")
//!     .build();
//! let bytes = req.to_bytes();
//! assert!(bytes.starts_with(b"GET /index.html HTTP/1.1\r\n"));
//! ```

pub mod ascii;
pub mod chunked;
pub mod header;
pub mod method;
pub mod parse;
pub mod request;
pub mod response;
pub mod uri;
pub mod version;

pub use chunked::{
    decode_chunked, encode_chunked, ChunkedDecodeOptions, ChunkedError, OverflowBehavior,
};
pub use header::{HeaderField, Headers};
pub use method::Method;
pub use parse::{parse_request, parse_response, ParseError, ParsedRequest, ParsedResponse};
pub use request::{Request, RequestBuilder};
pub use response::{Response, StatusCode};
pub use uri::{Authority, HostParseOptions, RequestTarget};
pub use version::Version;

/// Carriage-return/line-feed line terminator used throughout HTTP/1.x.
pub const CRLF: &[u8] = b"\r\n";
