//! RFC 7230-strict reference parser.
//!
//! This parser is the conformance oracle: it accepts exactly what the RFC
//! grammar and its MUST-level requirements allow, and reports a precise
//! [`ParseError`] otherwise. Simulated products (in `hdiff-servers`) layer
//! configurable leniency on top of the same raw bytes; diffing their
//! interpretation against this parser tells HDiff *which side* of a semantic
//! gap deviates from the specification.
//!
//! The parser also reports `consumed` — how many input bytes belong to the
//! parsed message. Disagreement about `consumed` between two implementations
//! reading the same byte stream is the essence of HTTP Request Smuggling.

use std::fmt;

use crate::ascii;
use crate::chunked::{decode_chunked, ChunkedDecodeOptions};
use crate::header::{HeaderField, Headers};
use crate::method::Method;
use crate::response::{Response, StatusCode};
use crate::uri::RequestTarget;
use crate::version::Version;

/// How the message body was framed (RFC 7230 §3.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// No body: neither `Content-Length` nor `Transfer-Encoding`.
    None,
    /// Body delimited by `Content-Length`.
    ContentLength(u64),
    /// Body delimited by chunked transfer coding.
    Chunked,
}

/// A strict-parse failure with the RFC section it violates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line did not match `method SP request-target SP HTTP-version`.
    MalformedRequestLine(Vec<u8>),
    /// The method token contained non-tchar bytes.
    InvalidMethod(Vec<u8>),
    /// The version token violated the `HTTP-version` grammar.
    InvalidVersion(Vec<u8>),
    /// Whitespace between field-name and colon (RFC 7230 §3.2.4: MUST
    /// respond 400).
    WhitespaceBeforeColon(Vec<u8>),
    /// A header line with no colon, or a non-token field name.
    MalformedHeader(Vec<u8>),
    /// Obsolete line folding (RFC 7230 §3.2.4: MUST reject or replace).
    ObsFold,
    /// An HTTP/1.1 request without a `Host` header (RFC 7230 §5.4).
    MissingHost,
    /// More than one `Host` header (RFC 7230 §5.4: MUST respond 400).
    MultipleHost,
    /// `Host` header value is not a valid `uri-host [":" port]`.
    InvalidHost(Vec<u8>),
    /// `Content-Length` was not a valid decimal, or duplicates disagreed.
    InvalidContentLength(Vec<u8>),
    /// Both `Content-Length` and `Transfer-Encoding` present (RFC 7230
    /// §3.3.3 flags this as a request-smuggling signal).
    ContentLengthWithTransferEncoding,
    /// `Transfer-Encoding` present but the final coding is not `chunked`.
    NonFinalChunked(Vec<u8>),
    /// An unknown transfer coding was listed.
    UnknownTransferCoding(Vec<u8>),
    /// The chunked body failed to decode.
    Chunked(crate::chunked::ChunkedError),
    /// Fewer body bytes than `Content-Length` declared.
    BodyTruncated {
        /// Bytes the header declared.
        declared: u64,
        /// Bytes actually available.
        available: usize,
    },
    /// Input ended before the header section terminator.
    UnexpectedEof,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MalformedRequestLine(l) => {
                write!(f, "malformed request line {:?}", ascii::escape_bytes(l))
            }
            ParseError::InvalidMethod(m) => {
                write!(f, "invalid method {:?}", ascii::escape_bytes(m))
            }
            ParseError::InvalidVersion(v) => {
                write!(f, "invalid http version {:?}", ascii::escape_bytes(v))
            }
            ParseError::WhitespaceBeforeColon(n) => {
                write!(f, "whitespace before colon in {:?}", ascii::escape_bytes(n))
            }
            ParseError::MalformedHeader(h) => {
                write!(f, "malformed header line {:?}", ascii::escape_bytes(h))
            }
            ParseError::ObsFold => f.write_str("obsolete line folding"),
            ParseError::MissingHost => f.write_str("http/1.1 request without host header"),
            ParseError::MultipleHost => f.write_str("multiple host headers"),
            ParseError::InvalidHost(h) => {
                write!(f, "invalid host value {:?}", ascii::escape_bytes(h))
            }
            ParseError::InvalidContentLength(v) => {
                write!(f, "invalid content-length {:?}", ascii::escape_bytes(v))
            }
            ParseError::ContentLengthWithTransferEncoding => {
                f.write_str("content-length together with transfer-encoding")
            }
            ParseError::NonFinalChunked(v) => {
                write!(f, "transfer-encoding without final chunked {:?}", ascii::escape_bytes(v))
            }
            ParseError::UnknownTransferCoding(v) => {
                write!(f, "unknown transfer coding {:?}", ascii::escape_bytes(v))
            }
            ParseError::Chunked(e) => write!(f, "chunked body error: {e}"),
            ParseError::BodyTruncated { declared, available } => {
                write!(f, "body truncated: declared {declared} bytes, got {available}")
            }
            ParseError::UnexpectedEof => f.write_str("unexpected end of input"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<crate::chunked::ChunkedError> for ParseError {
    fn from(e: crate::chunked::ChunkedError) -> Self {
        ParseError::Chunked(e)
    }
}

/// A strictly parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// Parsed method.
    pub method: Method,
    /// Classified request-target.
    pub target: RequestTarget,
    /// Parsed version.
    pub version: Version,
    /// Header fields in wire order.
    pub headers: Headers,
    /// Decoded body payload (after chunked decoding, if any).
    pub body: Vec<u8>,
    /// How the body was framed.
    pub framing: Framing,
    /// Bytes of input this message occupies. Input beyond `consumed` is the
    /// next pipelined message — or a smuggled one.
    pub consumed: usize,
}

impl ParsedRequest {
    /// Effective host per RFC 7230 §5.4: the authority of an absolute-form
    /// target takes precedence over the `Host` header.
    pub fn effective_host(&self) -> Option<Vec<u8>> {
        if let Some(a) = self.target.authority() {
            let auth = crate::uri::Authority::parse(a);
            return Some(auth.host.to_ascii_lowercase());
        }
        self.headers
            .first(b"Host")
            .map(|h| crate::uri::Authority::parse(h.value()).host.to_ascii_lowercase())
    }
}

/// A strictly parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedResponse {
    /// Parsed status code.
    pub status: StatusCode,
    /// Reason phrase bytes.
    pub reason: Vec<u8>,
    /// Version token.
    pub version: Version,
    /// Header fields in wire order.
    pub headers: Headers,
    /// Decoded body.
    pub body: Vec<u8>,
    /// Bytes consumed.
    pub consumed: usize,
}

impl From<ParsedResponse> for Response {
    fn from(p: ParsedResponse) -> Response {
        Response {
            status: p.status,
            reason: p.reason,
            version: p.version.to_bytes(),
            headers: p.headers,
            body: p.body,
        }
    }
}

fn find_line(input: &[u8], pos: usize) -> Result<(usize, usize), ParseError> {
    // Returns (line_end_exclusive, next_pos). Strict: requires CRLF.
    let rel =
        input[pos..].windows(2).position(|w| w == b"\r\n").ok_or(ParseError::UnexpectedEof)?;
    Ok((pos + rel, pos + rel + 2))
}

/// Strictly parses one request from `input` (RFC 7230).
///
/// # Errors
///
/// Any deviation from the grammar or from the MUST-level requirements the
/// paper's SR corpus covers produces the corresponding [`ParseError`].
pub fn parse_request(input: &[u8]) -> Result<ParsedRequest, ParseError> {
    let (line_end, mut pos) = find_line(input, 0)?;
    let line = &input[..line_end];

    let mut parts = line.split(|&b| b == b' ');
    let method_b = parts.next().unwrap_or_default();
    let target_b = parts.next().ok_or_else(|| ParseError::MalformedRequestLine(line.to_vec()))?;
    let version_b = parts.next().ok_or_else(|| ParseError::MalformedRequestLine(line.to_vec()))?;
    if parts.next().is_some() {
        return Err(ParseError::MalformedRequestLine(line.to_vec()));
    }
    if !ascii::is_token(method_b) {
        return Err(ParseError::InvalidMethod(method_b.to_vec()));
    }
    if target_b.is_empty() {
        return Err(ParseError::MalformedRequestLine(line.to_vec()));
    }
    let version = Version::from_bytes(version_b);
    if !version.is_grammatical() {
        return Err(ParseError::InvalidVersion(version_b.to_vec()));
    }

    // Header section.
    let mut headers = Headers::new();
    loop {
        let (h_end, next) = find_line(input, pos)?;
        let raw = &input[pos..h_end];
        pos = next;
        if raw.is_empty() {
            break;
        }
        if raw[0] == b' ' || raw[0] == b'\t' {
            return Err(ParseError::ObsFold);
        }
        let field = HeaderField::from_raw(raw.to_vec());
        if field.has_ws_before_colon() {
            return Err(ParseError::WhitespaceBeforeColon(field.name_raw().to_vec()));
        }
        if !field.name_is_strict() {
            return Err(ParseError::MalformedHeader(raw.to_vec()));
        }
        headers.push_field(field);
    }

    // Host requirements (RFC 7230 §5.4).
    let host_count = headers.count(b"Host");
    if version == Version::Http11 && host_count == 0 {
        return Err(ParseError::MissingHost);
    }
    if host_count > 1 {
        return Err(ParseError::MultipleHost);
    }
    if let Some(h) = headers.first(b"Host") {
        let auth = crate::uri::Authority::parse(h.value());
        if auth.userinfo.is_some()
            || !crate::uri::is_strict_uri_host(&auth.host)
            || auth.port.as_deref().is_some_and(|p| !p.iter().all(u8::is_ascii_digit))
        {
            return Err(ParseError::InvalidHost(h.value().to_vec()));
        }
    }

    // Body framing (RFC 7230 §3.3.3).
    let framing = determine_framing(&headers)?;
    let (body, consumed) = read_body(input, pos, framing)?;

    Ok(ParsedRequest {
        method: Method::from_bytes(method_b),
        target: RequestTarget::classify(target_b),
        version,
        headers,
        body,
        framing,
        consumed,
    })
}

fn determine_framing(headers: &Headers) -> Result<Framing, ParseError> {
    let te: Vec<&HeaderField> = headers.all(b"Transfer-Encoding").collect();
    let cl: Vec<&HeaderField> = headers.all(b"Content-Length").collect();

    if !te.is_empty() {
        if !cl.is_empty() {
            return Err(ParseError::ContentLengthWithTransferEncoding);
        }
        // Collect all codings across all TE headers, in order.
        let mut codings: Vec<Vec<u8>> = Vec::new();
        for f in &te {
            for part in f.value().split(|&b| b == b',') {
                let part = ascii::trim_ows(part);
                if !part.is_empty() {
                    codings.push(part.to_ascii_lowercase());
                }
            }
        }
        if codings.is_empty() {
            return Err(ParseError::NonFinalChunked(Vec::new()));
        }
        for c in &codings {
            if !matches!(
                c.as_slice(),
                b"chunked" | b"gzip" | b"deflate" | b"compress" | b"identity"
            ) {
                return Err(ParseError::UnknownTransferCoding(c.clone()));
            }
        }
        if codings.last().map(Vec::as_slice) != Some(b"chunked") {
            return Err(ParseError::NonFinalChunked(codings.last().cloned().unwrap_or_default()));
        }
        // `identity` is obsolete (removed from RFC 7230); strict parsers
        // reject it anywhere in the list.
        if codings.iter().any(|c| c == b"identity") {
            return Err(ParseError::UnknownTransferCoding(b"identity".to_vec()));
        }
        return Ok(Framing::Chunked);
    }

    if !cl.is_empty() {
        let mut value: Option<u64> = None;
        for f in &cl {
            // A single field may itself be a comma list (after duplicate
            // folding); RFC requires all values identical.
            for part in f.value().split(|&b| b == b',') {
                let part = ascii::trim_ows(part);
                let v = ascii::parse_dec_strict(part)
                    .ok_or_else(|| ParseError::InvalidContentLength(f.value().to_vec()))?;
                match value {
                    None => value = Some(v),
                    Some(prev) if prev == v => {}
                    Some(_) => {
                        return Err(ParseError::InvalidContentLength(f.value().to_vec()));
                    }
                }
            }
        }
        return Ok(Framing::ContentLength(value.expect("cl nonempty")));
    }

    Ok(Framing::None)
}

fn read_body(input: &[u8], pos: usize, framing: Framing) -> Result<(Vec<u8>, usize), ParseError> {
    match framing {
        Framing::None => Ok((Vec::new(), pos)),
        Framing::ContentLength(n) => {
            let n_usize = usize::try_from(n).map_err(|_| ParseError::BodyTruncated {
                declared: n,
                available: input.len() - pos,
            })?;
            if input.len() - pos < n_usize {
                return Err(ParseError::BodyTruncated {
                    declared: n,
                    available: input.len() - pos,
                });
            }
            Ok((input[pos..pos + n_usize].to_vec(), pos + n_usize))
        }
        Framing::Chunked => {
            let dec = decode_chunked(&input[pos..], &ChunkedDecodeOptions::strict())?;
            Ok((dec.payload, pos + dec.consumed))
        }
    }
}

/// Strictly parses one response from `input`.
///
/// # Errors
///
/// Returns [`ParseError`] on any grammar violation. Responses without
/// framing headers are read to end-of-input per RFC 7230 §3.3.3(7).
pub fn parse_response(input: &[u8]) -> Result<ParsedResponse, ParseError> {
    let (line_end, mut pos) = find_line(input, 0)?;
    let line = &input[..line_end];
    let mut parts = line.splitn(3, |&b| b == b' ');
    let version_b = parts.next().unwrap_or_default();
    let status_b = parts.next().ok_or_else(|| ParseError::MalformedRequestLine(line.to_vec()))?;
    let reason = parts.next().unwrap_or_default().to_vec();

    let version = Version::from_bytes(version_b);
    if !version.is_grammatical() {
        return Err(ParseError::InvalidVersion(version_b.to_vec()));
    }
    if status_b.len() != 3 || !status_b.iter().all(u8::is_ascii_digit) {
        return Err(ParseError::MalformedRequestLine(line.to_vec()));
    }
    let status = StatusCode(status_b.iter().fold(0u16, |acc, &b| acc * 10 + u16::from(b - b'0')));

    let mut headers = Headers::new();
    loop {
        let (h_end, next) = find_line(input, pos)?;
        let raw = &input[pos..h_end];
        pos = next;
        if raw.is_empty() {
            break;
        }
        let field = HeaderField::from_raw(raw.to_vec());
        if !field.name_is_strict() {
            return Err(ParseError::MalformedHeader(raw.to_vec()));
        }
        headers.push_field(field);
    }

    let framing = determine_framing(&headers)?;
    let (body, consumed) = match framing {
        Framing::None => (input[pos..].to_vec(), input.len()),
        other => read_body(input, pos, other)?,
    };

    Ok(ParsedResponse { status, reason, version, headers, body, consumed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(s: &[u8]) -> Result<ParsedRequest, ParseError> {
        parse_request(s)
    }

    #[test]
    fn simple_get() {
        let p = req(b"GET /x HTTP/1.1\r\nHost: example.com\r\n\r\n").unwrap();
        assert_eq!(p.method, Method::Get);
        assert_eq!(p.version, Version::Http11);
        assert_eq!(p.framing, Framing::None);
        assert_eq!(p.effective_host().unwrap(), b"example.com");
        assert_eq!(p.consumed, b"GET /x HTTP/1.1\r\nHost: example.com\r\n\r\n".len());
    }

    #[test]
    fn content_length_body() {
        let p = req(b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhelloEXTRA").unwrap();
        assert_eq!(p.body, b"hello");
        assert_eq!(p.framing, Framing::ContentLength(5));
        // EXTRA is pipelined data, not part of this message.
        assert_eq!(
            p.consumed,
            b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello".len()
        );
    }

    #[test]
    fn chunked_body() {
        let p = req(b"POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n")
            .unwrap();
        assert_eq!(p.body, b"abc");
        assert_eq!(p.framing, Framing::Chunked);
    }

    #[test]
    fn rejects_ws_before_colon() {
        let e = req(b"GET / HTTP/1.1\r\nHost : h\r\n\r\n").unwrap_err();
        assert!(matches!(e, ParseError::WhitespaceBeforeColon(_)));
    }

    #[test]
    fn rejects_cl_plus_te() {
        let e = req(b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n")
            .unwrap_err();
        assert_eq!(e, ParseError::ContentLengthWithTransferEncoding);
    }

    #[test]
    fn rejects_duplicate_differing_cl() {
        let e =
            req(b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\nContent-Length: 0\r\n\r\n")
                .unwrap_err();
        assert!(matches!(e, ParseError::InvalidContentLength(_)));
    }

    #[test]
    fn accepts_duplicate_identical_cl_as_list() {
        // `Content-Length: 5, 5` is the folded-duplicate recovery case.
        let p = req(b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 5, 5\r\n\r\nhello").unwrap();
        assert_eq!(p.framing, Framing::ContentLength(5));
    }

    #[test]
    fn rejects_bad_cl_values() {
        for v in [&b"+6"[..], b"6,9", b"0x10", b"ten", b""] {
            let mut m = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: ".to_vec();
            m.extend_from_slice(v);
            m.extend_from_slice(b"\r\n\r\n");
            assert!(matches!(req(&m).unwrap_err(), ParseError::InvalidContentLength(_)), "{v:?}");
        }
    }

    #[test]
    fn rejects_missing_host_on_11() {
        assert_eq!(req(b"GET / HTTP/1.1\r\n\r\n").unwrap_err(), ParseError::MissingHost);
        // but 1.0 has no such requirement
        assert!(req(b"GET / HTTP/1.0\r\n\r\n").is_ok());
    }

    #[test]
    fn rejects_multiple_host() {
        let e = req(b"GET / HTTP/1.1\r\nHost: a\r\nHost: b\r\n\r\n").unwrap_err();
        assert_eq!(e, ParseError::MultipleHost);
    }

    #[test]
    fn rejects_invalid_host_values() {
        for v in [&b"h1.com@h2.com"[..], b"h1.com, h2.com", b"h1.com/../h2.com"] {
            let mut m = b"GET / HTTP/1.1\r\nHost: ".to_vec();
            m.extend_from_slice(v);
            m.extend_from_slice(b"\r\n\r\n");
            let e = req(&m).unwrap_err();
            assert!(matches!(e, ParseError::InvalidHost(_)), "{v:?} -> {e:?}");
        }
    }

    #[test]
    fn rejects_invalid_versions() {
        for v in [&b"1.1/HTTP"[..], b"HTTP/3-1", b"hTTP/1.1"] {
            let mut m = b"GET / ".to_vec();
            m.extend_from_slice(v);
            m.extend_from_slice(b"\r\nHost: h\r\n\r\n");
            assert!(matches!(req(&m).unwrap_err(), ParseError::InvalidVersion(_)), "{v:?}");
        }
    }

    #[test]
    fn rejects_obs_fold() {
        let e = req(b"GET / HTTP/1.1\r\nHost: a.com\r\n\tb.com\r\n\r\n").unwrap_err();
        assert_eq!(e, ParseError::ObsFold);
    }

    #[test]
    fn rejects_obsolete_identity_coding() {
        let e = req(b"POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked, identity\r\n\r\n")
            .unwrap_err();
        assert!(matches!(e, ParseError::NonFinalChunked(_) | ParseError::UnknownTransferCoding(_)));
    }

    #[test]
    fn rejects_non_final_chunked() {
        let e = req(b"POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked, gzip\r\n\r\n")
            .unwrap_err();
        assert!(matches!(e, ParseError::NonFinalChunked(_)));
    }

    #[test]
    fn rejects_malformed_te_value() {
        let e = req(b"POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: \x0bchunked\r\n\r\n")
            .unwrap_err();
        assert!(matches!(e, ParseError::UnknownTransferCoding(_)));
    }

    #[test]
    fn absolute_form_host_precedence() {
        let p = req(b"GET http://h2.com/ HTTP/1.1\r\nHost: h1.com\r\n\r\n").unwrap();
        assert_eq!(p.effective_host().unwrap(), b"h2.com");
    }

    #[test]
    fn extra_spaces_in_request_line_rejected() {
        assert!(matches!(
            req(b"GET /  HTTP/1.1\r\nHost: h\r\n\r\n").unwrap_err(),
            ParseError::MalformedRequestLine(_)
        ));
        assert!(matches!(
            req(b"GET /?a=b 1.1/HTTP HTTP/1.0\r\nHost: h\r\n\r\n").unwrap_err(),
            ParseError::MalformedRequestLine(_)
        ));
    }

    #[test]
    fn body_truncation_reported() {
        let e = req(b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(e, ParseError::BodyTruncated { declared: 10, available: 3 });
    }

    #[test]
    fn response_parsing() {
        let r = parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(r.body, b"ok");
        assert_eq!(r.reason, b"OK");
    }

    #[test]
    fn response_without_framing_reads_to_eof() {
        let r = parse_response(b"HTTP/1.1 200 OK\r\n\r\neverything here").unwrap();
        assert_eq!(r.body, b"everything here");
    }

    #[test]
    fn response_chunked() {
        let r = parse_response(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nhi\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.body, b"hi");
    }

    #[test]
    fn response_bad_status() {
        assert!(parse_response(b"HTTP/1.1 2x0 OK\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 9999 OK\r\n\r\n").is_err());
    }
}
