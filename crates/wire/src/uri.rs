//! Request-target and `Host` parsing with Host-of-Troubles ambiguity knobs.
//!
//! RFC 7230 §5.3 defines four request-target forms; RFC 3986 §3.2 defines the
//! authority component. Host-of-Troubles attacks (paper §IV-B) exploit
//! implementations that resolve ambiguous host spellings differently:
//! `h1.com@h2.com` (userinfo vs. host), `h1.com, h2.com` (list), and
//! `h1.com/../h2.com` (path-looking suffixes). [`HostParseOptions`] makes
//! each resolution policy explicit so every simulated product states its
//! interpretation rather than hiding it in parsing code.

use std::fmt;

use crate::ascii;

/// The four request-target forms of RFC 7230 §5.3, plus `Invalid`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestTarget {
    /// `origin-form`: absolute path with optional query (`/where?q=now`).
    Origin {
        /// Path component, beginning with `/`.
        path: Vec<u8>,
        /// Query (bytes after `?`), if present.
        query: Option<Vec<u8>>,
    },
    /// `absolute-form`: a full URI (`http://example.com/path`).
    Absolute {
        /// URI scheme, verbatim (case preserved).
        scheme: Vec<u8>,
        /// Raw authority bytes between `//` and the next `/`, `?` or `#`.
        authority: Vec<u8>,
        /// Remainder (path + query), may be empty.
        rest: Vec<u8>,
    },
    /// `authority-form`: bare authority, used with `CONNECT`.
    Authority(Vec<u8>),
    /// `asterisk-form`: `*`, used with `OPTIONS`.
    Asterisk,
    /// Anything else, preserved verbatim.
    Invalid(Vec<u8>),
}

impl RequestTarget {
    /// Classifies raw request-target bytes.
    ///
    /// ```
    /// use hdiff_wire::RequestTarget;
    /// assert!(matches!(RequestTarget::classify(b"/a?b=1"), RequestTarget::Origin { .. }));
    /// assert!(matches!(RequestTarget::classify(b"http://h.com/"), RequestTarget::Absolute { .. }));
    /// assert_eq!(RequestTarget::classify(b"*"), RequestTarget::Asterisk);
    /// ```
    pub fn classify(raw: &[u8]) -> RequestTarget {
        if raw == b"*" {
            return RequestTarget::Asterisk;
        }
        if raw.first() == Some(&b'/') {
            let (path, query) = match raw.iter().position(|&b| b == b'?') {
                Some(i) => (raw[..i].to_vec(), Some(raw[i + 1..].to_vec())),
                None => (raw.to_vec(), None),
            };
            return RequestTarget::Origin { path, query };
        }
        if let Some(colon) = raw.iter().position(|&b| b == b':') {
            let scheme = &raw[..colon];
            if is_scheme(scheme) && raw[colon + 1..].starts_with(b"//") {
                let after = &raw[colon + 3..];
                let end = after
                    .iter()
                    .position(|&b| b == b'/' || b == b'?' || b == b'#')
                    .unwrap_or(after.len());
                return RequestTarget::Absolute {
                    scheme: scheme.to_vec(),
                    authority: after[..end].to_vec(),
                    rest: after[end..].to_vec(),
                };
            }
            // authority-form with a port, e.g. `example.com:443`.
            if !scheme.is_empty()
                && raw[colon + 1..].iter().all(u8::is_ascii_digit)
                && !raw[colon + 1..].is_empty()
                && looks_like_host(scheme)
            {
                return RequestTarget::Authority(raw.to_vec());
            }
        }
        if looks_like_host(raw) && !raw.is_empty() {
            return RequestTarget::Authority(raw.to_vec());
        }
        RequestTarget::Invalid(raw.to_vec())
    }

    /// The authority bytes carried by this target, if any.
    pub fn authority(&self) -> Option<&[u8]> {
        match self {
            RequestTarget::Absolute { authority, .. } => Some(authority),
            RequestTarget::Authority(a) => Some(a),
            _ => None,
        }
    }

    /// The scheme, if this is absolute-form.
    pub fn scheme(&self) -> Option<&[u8]> {
        match self {
            RequestTarget::Absolute { scheme, .. } => Some(scheme),
            _ => None,
        }
    }

    /// Whether this is absolute-form with an `http`/`https` scheme — the
    /// case proxies are required to rewrite when forwarding.
    pub fn is_http_absolute(&self) -> bool {
        matches!(self.scheme(), Some(s) if ascii::eq_ignore_case(s, b"http") || ascii::eq_ignore_case(s, b"https"))
    }

    /// Rewrites an absolute-form target to its origin-form (`rest`, or `/`
    /// when empty) — the canonical proxy forwarding transformation.
    pub fn to_origin_form(&self) -> Option<Vec<u8>> {
        match self {
            RequestTarget::Absolute { rest, .. } => {
                Some(if rest.is_empty() { b"/".to_vec() } else { rest.clone() })
            }
            _ => None,
        }
    }
}

fn is_scheme(s: &[u8]) -> bool {
    !s.is_empty()
        && s[0].is_ascii_alphabetic()
        && s.iter().all(|&b| b.is_ascii_alphanumeric() || b == b'+' || b == b'-' || b == b'.')
}

fn looks_like_host(s: &[u8]) -> bool {
    !s.is_empty()
        && s.iter().all(|&b| {
            b.is_ascii_alphanumeric() || matches!(b, b'.' | b'-' | b'_' | b'[' | b']' | b':')
        })
}

/// A parsed authority: `[userinfo@]host[:port]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Authority {
    /// Userinfo before `@`, if present.
    pub userinfo: Option<Vec<u8>>,
    /// The host component (lowercased for comparison happens elsewhere;
    /// bytes preserved here).
    pub host: Vec<u8>,
    /// Port digits after `:`, if present.
    pub port: Option<Vec<u8>>,
}

impl Authority {
    /// RFC 3986-conformant split: userinfo is everything before the *last*
    /// `@`; port is digits after the last `:` outside an IPv6 literal.
    pub fn parse(raw: &[u8]) -> Authority {
        let (userinfo, hostport) = match raw.iter().rposition(|&b| b == b'@') {
            Some(i) => (Some(raw[..i].to_vec()), &raw[i + 1..]),
            None => (None, raw),
        };
        let (host, port) = split_port(hostport);
        Authority { userinfo, host: host.to_vec(), port: port.map(<[u8]>::to_vec) }
    }

    /// The effective host an RFC-conformant implementation derives.
    pub fn effective_host(&self) -> &[u8] {
        &self.host
    }
}

impl fmt::Display for Authority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(u) = &self.userinfo {
            write!(f, "{}@", ascii::escape_bytes(u))?;
        }
        write!(f, "{}", ascii::escape_bytes(&self.host))?;
        if let Some(p) = &self.port {
            write!(f, ":{}", ascii::escape_bytes(p))?;
        }
        Ok(())
    }
}

fn split_port(hostport: &[u8]) -> (&[u8], Option<&[u8]>) {
    if hostport.first() == Some(&b'[') {
        // IPv6 literal: port comes after the closing bracket.
        if let Some(close) = hostport.iter().position(|&b| b == b']') {
            let rest = &hostport[close + 1..];
            if let Some(stripped) = rest.strip_prefix(b":") {
                return (&hostport[..close + 1], Some(stripped));
            }
            return (&hostport[..close + 1], None);
        }
        return (hostport, None);
    }
    match hostport.iter().rposition(|&b| b == b':') {
        Some(i) => (&hostport[..i], Some(&hostport[i + 1..])),
        None => (hostport, None),
    }
}

/// How an implementation resolves `user@host` spellings in a host position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AtSignPolicy {
    /// Reject the message (strict: `@` is not legal in `uri-host`).
    Reject,
    /// Treat everything after the last `@` as the host (RFC 3986 authority
    /// reading applied to the Host header).
    UseAfter,
    /// Treat everything before the first `@` as the host (naive reading —
    /// the front-end half of the `h1.com@h2.com` HoT gap).
    UseBefore,
    /// Pass the whole value through untouched (transparent forwarding).
    Whole,
}

/// How an implementation resolves comma-separated host lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CommaPolicy {
    /// Reject the message.
    Reject,
    /// Take the first element.
    TakeFirst,
    /// Take the last element.
    TakeLast,
    /// Keep the whole value.
    Whole,
}

/// How an implementation treats `/`-containing host values
/// (`h1.com/../h2.com`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SlashPolicy {
    /// Reject the message.
    Reject,
    /// Truncate at the first slash.
    Truncate,
    /// Keep the whole value.
    Whole,
}

/// Per-implementation `Host` interpretation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HostParseOptions {
    /// `@` handling.
    pub at_sign: AtSignPolicy,
    /// Comma-list handling.
    pub comma: CommaPolicy,
    /// Slash handling.
    pub slash: SlashPolicy,
    /// Whether an empty host value is accepted.
    pub allow_empty: bool,
}

impl HostParseOptions {
    /// RFC-strict policy: reject every ambiguous spelling.
    pub fn strict() -> HostParseOptions {
        HostParseOptions {
            at_sign: AtSignPolicy::Reject,
            comma: CommaPolicy::Reject,
            slash: SlashPolicy::Reject,
            allow_empty: true, // `Host:` with empty value is grammatical (uri-host can be empty reg-name)
        }
    }

    /// Fully transparent policy: take the value as-is.
    pub fn transparent() -> HostParseOptions {
        HostParseOptions {
            at_sign: AtSignPolicy::Whole,
            comma: CommaPolicy::Whole,
            slash: SlashPolicy::Whole,
            allow_empty: true,
        }
    }
}

impl Default for HostParseOptions {
    fn default() -> Self {
        HostParseOptions::strict()
    }
}

/// Error from [`interpret_host`] under a rejecting policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostError {
    /// Human-readable reason (lowercase, no punctuation).
    pub reason: &'static str,
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.reason)
    }
}

impl std::error::Error for HostError {}

/// Applies a [`HostParseOptions`] policy to a raw `Host` value, returning
/// the host identity the implementation would act on (port stripped).
///
/// ```
/// use hdiff_wire::uri::{interpret_host, AtSignPolicy, CommaPolicy, SlashPolicy};
/// use hdiff_wire::HostParseOptions;
/// let naive = HostParseOptions {
///     at_sign: AtSignPolicy::UseBefore,
///     comma: CommaPolicy::TakeFirst,
///     slash: SlashPolicy::Truncate,
///     allow_empty: true,
/// };
/// assert_eq!(interpret_host(b"h1.com@h2.com", &naive).unwrap(), b"h1.com");
/// let rfc = HostParseOptions { at_sign: AtSignPolicy::UseAfter, ..naive };
/// assert_eq!(interpret_host(b"h1.com@h2.com", &rfc).unwrap(), b"h2.com");
/// ```
pub fn interpret_host(raw: &[u8], opts: &HostParseOptions) -> Result<Vec<u8>, HostError> {
    let mut value = ascii::trim_ows(raw).to_vec();
    if value.is_empty() {
        return if opts.allow_empty {
            Ok(Vec::new())
        } else {
            Err(HostError { reason: "empty host value" })
        };
    }

    if value.contains(&b',') {
        match opts.comma {
            CommaPolicy::Reject => return Err(HostError { reason: "comma in host value" }),
            CommaPolicy::TakeFirst => {
                let i = value.iter().position(|&b| b == b',').expect("checked");
                value.truncate(i);
            }
            CommaPolicy::TakeLast => {
                let i = value.iter().rposition(|&b| b == b',').expect("checked");
                value = value[i + 1..].to_vec();
            }
            CommaPolicy::Whole => {}
        }
        value = ascii::trim_ows(&value).to_vec();
    }

    if value.contains(&b'@') {
        match opts.at_sign {
            AtSignPolicy::Reject => return Err(HostError { reason: "at sign in host value" }),
            AtSignPolicy::UseAfter => {
                let i = value.iter().rposition(|&b| b == b'@').expect("checked");
                value = value[i + 1..].to_vec();
            }
            AtSignPolicy::UseBefore => {
                let i = value.iter().position(|&b| b == b'@').expect("checked");
                value.truncate(i);
            }
            AtSignPolicy::Whole => {}
        }
    }

    if value.contains(&b'/') {
        match opts.slash {
            SlashPolicy::Reject => return Err(HostError { reason: "slash in host value" }),
            SlashPolicy::Truncate => {
                let i = value.iter().position(|&b| b == b'/').expect("checked");
                value.truncate(i);
            }
            SlashPolicy::Whole => {}
        }
    }

    // Strip the port for identity comparison. Userinfo handling already
    // happened above per policy, so only the port is split here.
    let (host, _port) = split_port(&value);
    let mut host = host.to_vec();
    host.make_ascii_lowercase();
    Ok(host)
}

/// Whether `s` is a strictly valid RFC 3986 `uri-host` (reg-name, IPv4, or
/// IP-literal). Percent-encoding is accepted in reg-names.
pub fn is_strict_uri_host(s: &[u8]) -> bool {
    if s.is_empty() {
        return true; // reg-name may be empty
    }
    if s.first() == Some(&b'[') {
        return s.last() == Some(&b']')
            && s[1..s.len() - 1].iter().all(|&b| b.is_ascii_hexdigit() || b == b':' || b == b'.');
    }
    let mut i = 0;
    while i < s.len() {
        let b = s[i];
        if b == b'%' {
            if i + 2 > s.len() || i + 2 > s.len() - 1 {
                return false;
            }
            if !(s[i + 1].is_ascii_hexdigit() && s[i + 2].is_ascii_hexdigit()) {
                return false;
            }
            i += 3;
            continue;
        }
        let unreserved = b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~');
        let sub_delim = matches!(
            b,
            b'!' | b'$' | b'&' | b'\'' | b'(' | b')' | b'*' | b'+' | b',' | b';' | b'='
        );
        if !(unreserved || sub_delim) {
            return false;
        }
        i += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_origin_form() {
        match RequestTarget::classify(b"/path?q=1") {
            RequestTarget::Origin { path, query } => {
                assert_eq!(path, b"/path");
                assert_eq!(query.as_deref(), Some(&b"q=1"[..]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn classify_absolute_form() {
        match RequestTarget::classify(b"http://h2.com/?a=1") {
            RequestTarget::Absolute { scheme, authority, rest } => {
                assert_eq!(scheme, b"http");
                assert_eq!(authority, b"h2.com");
                assert_eq!(rest, b"/?a=1");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn classify_non_http_scheme_absolute() {
        // Table II: `test://h2.com/?a=1` — the Varnish HoT vector.
        let t = RequestTarget::classify(b"test://h2.com/?a=1");
        assert_eq!(t.scheme(), Some(&b"test"[..]));
        assert!(!t.is_http_absolute());
        assert_eq!(t.authority(), Some(&b"h2.com"[..]));
    }

    #[test]
    fn classify_authority_and_asterisk() {
        assert_eq!(RequestTarget::classify(b"*"), RequestTarget::Asterisk);
        assert!(matches!(RequestTarget::classify(b"example.com:443"), RequestTarget::Authority(_)));
        assert!(matches!(RequestTarget::classify(b"h2.com"), RequestTarget::Authority(_)));
    }

    #[test]
    fn classify_invalid() {
        assert!(matches!(RequestTarget::classify(b"??"), RequestTarget::Invalid(_)));
        assert!(matches!(RequestTarget::classify(b""), RequestTarget::Invalid(_)));
    }

    #[test]
    fn to_origin_form_rewrite() {
        let t = RequestTarget::classify(b"http://h.com/a/b?c=1");
        assert_eq!(t.to_origin_form().unwrap(), b"/a/b?c=1");
        let bare = RequestTarget::classify(b"http://h.com");
        assert_eq!(bare.to_origin_form().unwrap(), b"/");
    }

    #[test]
    fn authority_userinfo_split_is_rfc_conformant() {
        // `h1@h2.com` — userinfo h1, host h2.com.
        let a = Authority::parse(b"h1@h2.com");
        assert_eq!(a.userinfo.as_deref(), Some(&b"h1"[..]));
        assert_eq!(a.host, b"h2.com");
        assert_eq!(a.port, None);
    }

    #[test]
    fn authority_port_split() {
        let a = Authority::parse(b"example.com:8080");
        assert_eq!(a.host, b"example.com");
        assert_eq!(a.port.as_deref(), Some(&b"8080"[..]));
    }

    #[test]
    fn authority_ipv6_literal() {
        let a = Authority::parse(b"[::1]:443");
        assert_eq!(a.host, b"[::1]");
        assert_eq!(a.port.as_deref(), Some(&b"443"[..]));
        let b = Authority::parse(b"[2001:db8::1]");
        assert_eq!(b.host, b"[2001:db8::1]");
        assert_eq!(b.port, None);
    }

    #[test]
    fn interpret_host_policies_disagree() {
        let naive = HostParseOptions {
            at_sign: AtSignPolicy::UseBefore,
            comma: CommaPolicy::TakeFirst,
            slash: SlashPolicy::Truncate,
            allow_empty: true,
        };
        let rfc = HostParseOptions {
            at_sign: AtSignPolicy::UseAfter,
            comma: CommaPolicy::TakeLast,
            slash: SlashPolicy::Truncate,
            allow_empty: true,
        };
        // The three Table II invalid-Host spellings.
        assert_eq!(interpret_host(b"h1.com@h2.com", &naive).unwrap(), b"h1.com");
        assert_eq!(interpret_host(b"h1.com@h2.com", &rfc).unwrap(), b"h2.com");
        assert_eq!(interpret_host(b"h1.com, h2.com", &naive).unwrap(), b"h1.com");
        assert_eq!(interpret_host(b"h1.com, h2.com", &rfc).unwrap(), b"h2.com");
        assert_eq!(interpret_host(b"h1.com/../h2.com", &naive).unwrap(), b"h1.com");
    }

    #[test]
    fn strict_policy_rejects_ambiguity() {
        let strict = HostParseOptions::strict();
        assert!(interpret_host(b"h1.com@h2.com", &strict).is_err());
        assert!(interpret_host(b"h1.com, h2.com", &strict).is_err());
        assert!(interpret_host(b"h1.com/x", &strict).is_err());
        assert_eq!(interpret_host(b"H1.COM:80", &strict).unwrap(), b"h1.com");
    }

    #[test]
    fn transparent_policy_keeps_everything() {
        let t = HostParseOptions::transparent();
        assert_eq!(interpret_host(b"h1.com@h2.com", &t).unwrap(), b"h1.com@h2.com");
    }

    #[test]
    fn strict_uri_host_validation() {
        assert!(is_strict_uri_host(b"example.com"));
        assert!(is_strict_uri_host(b"127.0.0.1"));
        assert!(is_strict_uri_host(b"[::1]"));
        assert!(is_strict_uri_host(b"a%41b"));
        assert!(is_strict_uri_host(b""));
        assert!(!is_strict_uri_host(b"h1.com@h2.com"));
        assert!(!is_strict_uri_host(b"h1.com/x"));
        assert!(!is_strict_uri_host(b"h1.com h2.com"));
        assert!(!is_strict_uri_host(b"a%4"));
        assert!(!is_strict_uri_host(b"a%zz"));
    }
}
