//! HTTP request methods (RFC 7231 §4 plus extension tokens).

use std::fmt;

/// An HTTP request method.
///
/// Standard methods are enumerated; anything else (including deliberately
/// malformed tokens produced by the mutation engine) is carried verbatim in
/// [`Method::Extension`].
///
/// ```
/// use hdiff_wire::Method;
/// assert_eq!(Method::from_bytes(b"GET"), Method::Get);
/// assert_eq!(Method::Get.as_str(), "GET");
/// assert!(Method::from_bytes(b"gEt").is_extension());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET` — retrieve a representation.
    Get,
    /// `HEAD` — `GET` without the body.
    Head,
    /// `POST` — process the enclosed representation.
    Post,
    /// `PUT` — replace the target resource.
    Put,
    /// `DELETE` — remove the target resource.
    Delete,
    /// `OPTIONS` — communication options probe.
    Options,
    /// `TRACE` — message loop-back test.
    Trace,
    /// `CONNECT` — tunnel establishment.
    Connect,
    /// `PATCH` — partial modification (RFC 5789).
    Patch,
    /// Any other token, preserved byte-for-byte. Method names are
    /// case-sensitive per RFC 7231, so `gEt` lands here.
    Extension(Vec<u8>),
}

impl Method {
    /// Parses a method from its wire bytes. Never fails: unknown tokens
    /// become [`Method::Extension`].
    pub fn from_bytes(b: &[u8]) -> Method {
        match b {
            b"GET" => Method::Get,
            b"HEAD" => Method::Head,
            b"POST" => Method::Post,
            b"PUT" => Method::Put,
            b"DELETE" => Method::Delete,
            b"OPTIONS" => Method::Options,
            b"TRACE" => Method::Trace,
            b"CONNECT" => Method::Connect,
            b"PATCH" => Method::Patch,
            other => Method::Extension(other.to_vec()),
        }
    }

    /// The wire bytes of this method.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Method::Get => b"GET",
            Method::Head => b"HEAD",
            Method::Post => b"POST",
            Method::Put => b"PUT",
            Method::Delete => b"DELETE",
            Method::Options => b"OPTIONS",
            Method::Trace => b"TRACE",
            Method::Connect => b"CONNECT",
            Method::Patch => b"PATCH",
            Method::Extension(v) => v,
        }
    }

    /// The method as a string (lossy for non-UTF-8 extension tokens).
    pub fn as_str(&self) -> &str {
        match self {
            Method::Extension(v) => std::str::from_utf8(v).unwrap_or("<bin>"),
            _ => std::str::from_utf8(self.as_bytes()).expect("standard methods are ASCII"),
        }
    }

    /// Whether this is a recognized standard method.
    pub fn is_standard(&self) -> bool {
        !matches!(self, Method::Extension(_))
    }

    /// Whether this is an extension (unrecognized) method token.
    pub fn is_extension(&self) -> bool {
        matches!(self, Method::Extension(_))
    }

    /// Whether responses to this method conventionally have no body
    /// semantics for the request payload (`GET`/`HEAD` — the "fat request"
    /// ambiguity of Table II).
    pub fn body_is_unexpected(&self) -> bool {
        matches!(self, Method::Get | Method::Head)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Method {
    fn from(s: &str) -> Self {
        Method::from_bytes(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_standard_methods() {
        for m in [
            Method::Get,
            Method::Head,
            Method::Post,
            Method::Put,
            Method::Delete,
            Method::Options,
            Method::Trace,
            Method::Connect,
            Method::Patch,
        ] {
            assert_eq!(Method::from_bytes(m.as_bytes()), m);
            assert!(m.is_standard());
        }
    }

    #[test]
    fn methods_are_case_sensitive() {
        assert_eq!(Method::from_bytes(b"get"), Method::Extension(b"get".to_vec()));
    }

    #[test]
    fn fat_request_detection() {
        assert!(Method::Get.body_is_unexpected());
        assert!(Method::Head.body_is_unexpected());
        assert!(!Method::Post.body_is_unexpected());
    }

    #[test]
    fn display_matches_wire() {
        assert_eq!(Method::Options.to_string(), "OPTIONS");
        assert_eq!(Method::from("QUERY").to_string(), "QUERY");
    }
}
