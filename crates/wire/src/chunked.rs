//! Chunked transfer coding (RFC 7230 §4.1) with configurable error recovery.
//!
//! The encoder always produces conformant output. The decoder takes
//! [`ChunkedDecodeOptions`] because the paper's *Bad chunk-size value*
//! finding (§IV-B) hinges on proxies that "repair" malformed chunked bodies:
//! Haproxy and Squid parse an over-long chunk-size with wrapping arithmetic
//! and then reconstruct a body whose framing no longer matches the bytes —
//! the root of an HRS exploit.

use std::fmt;

use crate::ascii;

/// How a decoder treats a chunk-size that overflows 64 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum OverflowBehavior {
    /// Reject the message (RFC-conformant).
    #[default]
    Reject,
    /// Wrap modulo 2^64 — the integer-overflow repair bug.
    Wrap,
    /// Saturate to the number of remaining body bytes (a "repair to what is
    /// actually there" strategy).
    ClampToRemaining,
}

/// Options controlling lenient chunked decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ChunkedDecodeOptions {
    /// Overflow handling for oversized chunk-size values.
    pub overflow: OverflowBehavior,
    /// Accept a `0x` prefix on chunk-size (non-conformant leniency).
    pub allow_0x_prefix: bool,
    /// Stop parsing the size at the first non-hex byte instead of rejecting
    /// the line (so `0xfgh` / `5;ext` read as 0x0f…/5).
    pub stop_at_invalid_digit: bool,
    /// Reject NUL bytes inside chunk-data (some parsers treat NUL as a
    /// terminator or error; RFC allows any OCTET).
    pub reject_nul_in_data: bool,
    /// If a chunk claims more data than remains, consume whatever is left
    /// instead of failing (another repair strategy).
    pub truncate_short_final_chunk: bool,
}

impl ChunkedDecodeOptions {
    /// RFC-conformant strict decoding.
    pub fn strict() -> ChunkedDecodeOptions {
        ChunkedDecodeOptions {
            overflow: OverflowBehavior::Reject,
            allow_0x_prefix: false,
            stop_at_invalid_digit: false,
            reject_nul_in_data: false,
            truncate_short_final_chunk: false,
        }
    }
}

impl Default for ChunkedDecodeOptions {
    fn default() -> Self {
        ChunkedDecodeOptions::strict()
    }
}

/// Error from [`decode_chunked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkedError {
    /// A chunk-size line was not valid hexadecimal.
    InvalidSize(Vec<u8>),
    /// Chunk-size overflowed under [`OverflowBehavior::Reject`].
    SizeOverflow(Vec<u8>),
    /// A chunk-ext did not match RFC 7230 §4.1.1 syntax.
    InvalidExtension(Vec<u8>),
    /// Body ended before the declared chunk data (plus CRLF) arrived.
    Truncated,
    /// Chunk data was not followed by CRLF.
    MissingDataCrlf,
    /// A NUL byte appeared in chunk data under `reject_nul_in_data`.
    NulInData,
}

impl fmt::Display for ChunkedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkedError::InvalidSize(s) => {
                write!(f, "invalid chunk size {:?}", ascii::escape_bytes(s))
            }
            ChunkedError::SizeOverflow(s) => {
                write!(f, "chunk size overflow {:?}", ascii::escape_bytes(s))
            }
            ChunkedError::InvalidExtension(s) => {
                write!(f, "invalid chunk extension {:?}", ascii::escape_bytes(s))
            }
            ChunkedError::Truncated => f.write_str("chunked body truncated"),
            ChunkedError::MissingDataCrlf => f.write_str("chunk data not terminated by crlf"),
            ChunkedError::NulInData => f.write_str("nul byte in chunk data"),
        }
    }
}

impl std::error::Error for ChunkedError {}

/// Result of decoding: payload plus how many input bytes were consumed and
/// whether the framing had to be repaired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedChunked {
    /// The reassembled payload.
    pub payload: Vec<u8>,
    /// Bytes of input consumed, including the terminating empty chunk and
    /// trailer.
    pub consumed: usize,
    /// True if any lenient option had to fire to finish decoding.
    pub repaired: bool,
}

/// Encodes a payload as a single-chunk chunked body.
///
/// ```
/// assert_eq!(hdiff_wire::encode_chunked(b"abc"), b"3\r\nabc\r\n0\r\n\r\n");
/// ```
pub fn encode_chunked(payload: &[u8]) -> Vec<u8> {
    encode_chunked_with(payload, payload.len().max(1))
}

/// Encodes a payload splitting it into chunks of at most `chunk_size` bytes.
///
/// # Panics
///
/// Panics if `chunk_size` is zero.
pub fn encode_chunked_with(payload: &[u8], chunk_size: usize) -> Vec<u8> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let mut out = Vec::with_capacity(payload.len() + 16);
    for chunk in payload.chunks(chunk_size) {
        out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        out.extend_from_slice(chunk);
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"0\r\n\r\n");
    out
}

/// Decodes a chunked body from `input` under the given options.
///
/// # Errors
///
/// Returns a [`ChunkedError`] when the framing is invalid and the options do
/// not permit repairing it.
pub fn decode_chunked(
    input: &[u8],
    opts: &ChunkedDecodeOptions,
) -> Result<DecodedChunked, ChunkedError> {
    let mut pos = 0usize;
    let mut payload = Vec::new();
    let mut repaired = false;

    loop {
        let line_end = find_crlf(&input[pos..]).ok_or(ChunkedError::Truncated)?;
        let line = &input[pos..pos + line_end];
        pos += line_end + 2;

        // chunk-ext: never contributes to the payload, but a conformant
        // recipient still has to *parse* it (RFC 7230 §4.1.1), so strict
        // decoding validates the ext syntax instead of discarding the
        // tail of the line unseen.
        let (size_part, ext) = match line.iter().position(|&b| b == b';') {
            Some(i) => (&line[..i], Some(&line[i..])),
            None => (line, None),
        };
        let mut size_part = ascii::trim_ows(size_part);
        if opts.allow_0x_prefix {
            if let Some(stripped) = strip_0x(size_part) {
                size_part = stripped;
                repaired = true;
            }
        }

        let size = parse_size(size_part, opts, input.len() - pos, &mut repaired)?;

        if let Some(ext) = ext {
            if !valid_chunk_ext(ext) {
                if opts.stop_at_invalid_digit {
                    // The same leniency that reads `5;ext` as 5 repairs a
                    // malformed ext by ignoring it.
                    repaired = true;
                } else {
                    return Err(ChunkedError::InvalidExtension(line.to_vec()));
                }
            }
        }

        if size == 0 {
            // Trailer section: zero or more header lines, then empty line.
            loop {
                let t_end = find_crlf(&input[pos..]).ok_or(ChunkedError::Truncated)?;
                let trailer = &input[pos..pos + t_end];
                pos += t_end + 2;
                if trailer.is_empty() {
                    return Ok(DecodedChunked { payload, consumed: pos, repaired });
                }
            }
        }

        let size_usize = usize::try_from(size).unwrap_or(usize::MAX);
        let available = input.len().saturating_sub(pos);
        let take = if size_usize > available {
            if opts.truncate_short_final_chunk {
                repaired = true;
                available
            } else {
                return Err(ChunkedError::Truncated);
            }
        } else {
            size_usize
        };

        let data = &input[pos..pos + take];
        if opts.reject_nul_in_data && data.contains(&0) {
            return Err(ChunkedError::NulInData);
        }
        payload.extend_from_slice(data);
        pos += take;

        if take < size_usize {
            // Repaired a truncated chunk: consume the rest and finish.
            return Ok(DecodedChunked { payload, consumed: pos, repaired: true });
        }

        if input.len() < pos + 2 || &input[pos..pos + 2] != b"\r\n" {
            if opts.truncate_short_final_chunk {
                return Ok(DecodedChunked { payload, consumed: pos, repaired: true });
            }
            return Err(ChunkedError::MissingDataCrlf);
        }
        pos += 2;
    }
}

/// Validates a chunk-ext per RFC 7230 §4.1.1 (with the errata-permitted
/// BWS): `*( BWS ";" BWS chunk-ext-name [ BWS "=" BWS chunk-ext-val ] )`
/// where `chunk-ext-name` is a token and `chunk-ext-val` a token or
/// quoted-string. `s` starts at the first `;` of the line; trailing BWS
/// is tolerated, mirroring the OWS trim on the size side.
fn valid_chunk_ext(mut s: &[u8]) -> bool {
    loop {
        s = skip_bws(s);
        if s.is_empty() {
            return true;
        }
        if s[0] != b';' {
            return false;
        }
        s = skip_bws(&s[1..]);
        let name_len = token_len(s);
        if name_len == 0 {
            return false;
        }
        s = &s[name_len..];
        let after_name = skip_bws(s);
        if after_name.first() == Some(&b'=') {
            s = skip_bws(&after_name[1..]);
            if s.first() == Some(&b'"') {
                match quoted_string_len(s) {
                    Some(n) => s = &s[n..],
                    None => return false,
                }
            } else {
                let val_len = token_len(s);
                if val_len == 0 {
                    return false;
                }
                s = &s[val_len..];
            }
        }
    }
}

fn skip_bws(s: &[u8]) -> &[u8] {
    let n = s.iter().take_while(|&&b| b == b' ' || b == b'\t').count();
    &s[n..]
}

fn token_len(s: &[u8]) -> usize {
    s.iter().take_while(|&&b| ascii::is_tchar(b)).count()
}

/// Length of a quoted-string starting at `s[0] == '"'`, or `None` if it
/// is unterminated or contains a byte outside qdtext / quoted-pair.
fn quoted_string_len(s: &[u8]) -> Option<usize> {
    let mut i = 1;
    while i < s.len() {
        match s[i] {
            b'"' => return Some(i + 1),
            b'\\' => {
                let escaped = *s.get(i + 1)?;
                let ok = escaped == b'\t'
                    || escaped == b' '
                    || (0x21..=0x7e).contains(&escaped)
                    || escaped >= 0x80;
                if !ok {
                    return None;
                }
                i += 2;
            }
            b'\t' | b' ' => i += 1,
            c if (0x21..=0x7e).contains(&c) || c >= 0x80 => i += 1,
            _ => return None,
        }
    }
    None
}

fn strip_0x(s: &[u8]) -> Option<&[u8]> {
    if s.len() > 2 && (s.starts_with(b"0x") || s.starts_with(b"0X")) {
        Some(&s[2..])
    } else {
        None
    }
}

fn parse_size(
    s: &[u8],
    opts: &ChunkedDecodeOptions,
    remaining: usize,
    repaired: &mut bool,
) -> Result<u64, ChunkedError> {
    let digits: &[u8] = if opts.stop_at_invalid_digit {
        let end = s.iter().position(|b| !b.is_ascii_hexdigit()).unwrap_or(s.len());
        if end < s.len() {
            *repaired = true;
        }
        &s[..end]
    } else {
        s
    };
    if digits.is_empty() || !digits.iter().all(u8::is_ascii_hexdigit) {
        return Err(ChunkedError::InvalidSize(s.to_vec()));
    }
    match ascii::parse_hex_strict(digits) {
        Some(v) => Ok(v),
        None => match opts.overflow {
            OverflowBehavior::Reject => Err(ChunkedError::SizeOverflow(s.to_vec())),
            OverflowBehavior::Wrap => {
                *repaired = true;
                Ok(ascii::parse_hex_wrapping(digits).expect("digits validated"))
            }
            OverflowBehavior::ClampToRemaining => {
                *repaired = true;
                Ok(remaining as u64)
            }
        },
    }
}

fn find_crlf(s: &[u8]) -> Option<usize> {
    s.windows(2).position(|w| w == b"\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_single_chunk() {
        assert_eq!(encode_chunked(b"hello"), b"5\r\nhello\r\n0\r\n\r\n");
        assert_eq!(encode_chunked(b""), b"0\r\n\r\n");
    }

    #[test]
    fn encode_multi_chunk() {
        assert_eq!(encode_chunked_with(b"abcdef", 4), b"4\r\nabcd\r\n2\r\nef\r\n0\r\n\r\n");
    }

    #[test]
    fn strict_round_trip() {
        let opts = ChunkedDecodeOptions::strict();
        for payload in [&b""[..], b"a", b"hello world", &[0u8, 1, 2, 255]] {
            let enc = encode_chunked(payload);
            let dec = decode_chunked(&enc, &opts).unwrap();
            assert_eq!(dec.payload, payload);
            assert_eq!(dec.consumed, enc.len());
            assert!(!dec.repaired);
        }
    }

    #[test]
    fn chunk_extension_is_ignored() {
        let dec =
            decode_chunked(b"3;name=val\r\nabc\r\n0\r\n\r\n", &ChunkedDecodeOptions::strict())
                .unwrap();
        assert_eq!(dec.payload, b"abc");
        assert!(!dec.repaired);
    }

    #[test]
    fn strict_accepts_wellformed_ext_unrepaired() {
        let opts = ChunkedDecodeOptions::strict();
        for body in [
            &b"3;ext=1\r\nabc\r\n0\r\n\r\n"[..],
            b"3;name\r\nabc\r\n0\r\n\r\n",
            b"3;a=1;b=2;c\r\nabc\r\n0\r\n\r\n",
            b"3;q=\"quoted val\"\r\nabc\r\n0\r\n\r\n",
            b"3;q=\"esc\\\"aped\"\r\nabc\r\n0\r\n\r\n",
            b"3 ; a = 1 ; b\r\nabc\r\n0\r\n\r\n",
            b"3\r\nabc\r\n0;last=ext\r\n\r\n",
        ] {
            let dec = decode_chunked(body, &opts)
                .unwrap_or_else(|e| panic!("{:?}: {e}", ascii::escape_bytes(body)));
            assert_eq!(dec.payload, b"abc", "{:?}", ascii::escape_bytes(body));
            assert!(!dec.repaired, "{:?}", ascii::escape_bytes(body));
        }
    }

    #[test]
    fn strict_rejects_malformed_ext() {
        let opts = ChunkedDecodeOptions::strict();
        for body in [
            &b"3;\r\nabc\r\n0\r\n\r\n"[..],
            b"3;=v\r\nabc\r\n0\r\n\r\n",
            b"3;a==\r\nabc\r\n0\r\n\r\n",
            b"3;a=\r\nabc\r\n0\r\n\r\n",
            b"3;a b\r\nabc\r\n0\r\n\r\n",
            b"3;a=\"unterminated\r\nabc\r\n0\r\n\r\n",
            b"3;a=\"bad\x01byte\"\r\nabc\r\n0\r\n\r\n",
            b"3;;\r\nabc\r\n0\r\n\r\n",
        ] {
            let err =
                decode_chunked(body, &opts).expect_err(&format!("{:?}", ascii::escape_bytes(body)));
            assert!(
                matches!(err, ChunkedError::InvalidExtension(_)),
                "{:?}: {err}",
                ascii::escape_bytes(body)
            );
        }
    }

    #[test]
    fn lenient_digit_stop_repairs_malformed_ext() {
        let opts =
            ChunkedDecodeOptions { stop_at_invalid_digit: true, ..ChunkedDecodeOptions::strict() };
        let dec = decode_chunked(b"3;=junk;;\r\nabc\r\n0\r\n\r\n", &opts).unwrap();
        assert_eq!(dec.payload, b"abc");
        assert!(dec.repaired);
        // Well-formed ext stays unrepaired even on the lenient path.
        let dec = decode_chunked(b"3;ext=1\r\nabc\r\n0\r\n\r\n", &opts).unwrap();
        assert!(!dec.repaired);
    }

    #[test]
    fn trailer_headers_are_consumed() {
        let dec =
            decode_chunked(b"1\r\nx\r\n0\r\nX-Trailer: 1\r\n\r\n", &ChunkedDecodeOptions::strict())
                .unwrap();
        assert_eq!(dec.payload, b"x");
    }

    #[test]
    fn strict_rejects_invalid_hex() {
        // Table II: `0xfgh\r\nabc\r\n9\r\n`.
        let err = decode_chunked(b"0xfgh\r\nabc\r\n", &ChunkedDecodeOptions::strict()).unwrap_err();
        assert!(matches!(err, ChunkedError::InvalidSize(_)));
    }

    #[test]
    fn strict_rejects_overflow() {
        let body = b"1000000000000000a\r\nabc\r\n0\r\n\r\n";
        let err = decode_chunked(body, &ChunkedDecodeOptions::strict()).unwrap_err();
        // 17 hex digits overflow u64.
        assert!(matches!(err, ChunkedError::SizeOverflow(_) | ChunkedError::Truncated));
    }

    #[test]
    fn wrapping_repair_reproduces_the_haproxy_squid_bug() {
        // 0x1000000000000000a wraps to 10 (0xa): the proxy "repairs" a huge
        // chunk-size to 10 and reads 10 bytes — not the 3 actually framed.
        let body = b"1000000000000000a\r\nabc\r\n0\r\n\r\nXX";
        let opts = ChunkedDecodeOptions {
            overflow: OverflowBehavior::Wrap,
            truncate_short_final_chunk: true,
            ..ChunkedDecodeOptions::strict()
        };
        let dec = decode_chunked(body, &opts).unwrap();
        assert!(dec.repaired);
        // It consumed 10 bytes of "data": "abc\r\n0\r\n\r\n".
        assert_eq!(dec.payload, b"abc\r\n0\r\n\r\n");
    }

    #[test]
    fn clamp_repair() {
        let body = b"ffffffffffffffffff\r\nab\r\n";
        let opts = ChunkedDecodeOptions {
            overflow: OverflowBehavior::ClampToRemaining,
            truncate_short_final_chunk: true,
            ..ChunkedDecodeOptions::strict()
        };
        let dec = decode_chunked(body, &opts).unwrap();
        assert!(dec.repaired);
        assert_eq!(dec.payload, b"ab\r\n");
    }

    #[test]
    fn nul_in_data_policy() {
        // Table II: `3\r\na\x00c\r\n0\r\n\r\n`.
        let body = b"3\r\na\x00c\r\n0\r\n\r\n";
        assert_eq!(
            decode_chunked(body, &ChunkedDecodeOptions::strict()).unwrap().payload,
            b"a\x00c"
        );
        let nul_reject =
            ChunkedDecodeOptions { reject_nul_in_data: true, ..ChunkedDecodeOptions::strict() };
        assert_eq!(decode_chunked(body, &nul_reject).unwrap_err(), ChunkedError::NulInData);
    }

    #[test]
    fn truncated_inputs() {
        let opts = ChunkedDecodeOptions::strict();
        assert_eq!(decode_chunked(b"5\r\nab", &opts).unwrap_err(), ChunkedError::Truncated);
        assert_eq!(decode_chunked(b"5", &opts).unwrap_err(), ChunkedError::Truncated);
        assert_eq!(decode_chunked(b"", &opts).unwrap_err(), ChunkedError::Truncated);
        assert_eq!(decode_chunked(b"2\r\nabXX", &opts).unwrap_err(), ChunkedError::MissingDataCrlf);
    }

    #[test]
    fn consumed_excludes_pipelined_bytes() {
        let mut body = encode_chunked(b"abc");
        body.extend_from_slice(b"GET /next HTTP/1.1\r\n");
        let dec = decode_chunked(&body, &ChunkedDecodeOptions::strict()).unwrap();
        assert_eq!(&body[dec.consumed..], b"GET /next HTTP/1.1\r\n");
    }
}
