//! HTTP response representation.

use std::fmt;

use crate::header::Headers;

/// An HTTP status code, kept as a bare `u16` newtype so simulated products
/// can emit any code (including non-IANA ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 400 Bad Request — the RFC-mandated rejection code for most of the
    /// malformed messages HDiff generates.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 408 Request Timeout — what a back-end sends when framing leaves it
    /// waiting for body bytes that never arrive.
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// 411 Length Required.
    pub const LENGTH_REQUIRED: StatusCode = StatusCode(411);
    /// 413 Payload Too Large (header/body oversize).
    pub const PAYLOAD_TOO_LARGE: StatusCode = StatusCode(413);
    /// 417 Expectation Failed.
    pub const EXPECTATION_FAILED: StatusCode = StatusCode(417);
    /// 421 Misdirected Request.
    pub const MISDIRECTED: StatusCode = StatusCode(421);
    /// 426 Upgrade Required.
    pub const UPGRADE_REQUIRED: StatusCode = StatusCode(426);
    /// 500 Internal Server Error.
    pub const INTERNAL_ERROR: StatusCode = StatusCode(500);
    /// 501 Not Implemented.
    pub const NOT_IMPLEMENTED: StatusCode = StatusCode(501);
    /// 502 Bad Gateway — a proxy's report of an unusable upstream reply.
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    /// 505 HTTP Version Not Supported.
    pub const VERSION_NOT_SUPPORTED: StatusCode = StatusCode(505);

    /// The numeric code.
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// Whether this is a 2xx success code.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Whether this is a 4xx client error.
    pub fn is_client_error(self) -> bool {
        (400..500).contains(&self.0)
    }

    /// Whether this is a 5xx server error.
    pub fn is_server_error(self) -> bool {
        (500..600).contains(&self.0)
    }

    /// Whether this is any error class (4xx or 5xx) — what the CPDoS model
    /// looks for in a cached response.
    pub fn is_error(self) -> bool {
        self.is_client_error() || self.is_server_error()
    }

    /// A canonical reason phrase for common codes; empty otherwise.
    pub fn reason(self) -> &'static str {
        match self.0 {
            100 => "Continue",
            200 => "OK",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            408 => "Request Timeout",
            411 => "Length Required",
            413 => "Payload Too Large",
            417 => "Expectation Failed",
            421 => "Misdirected Request",
            426 => "Upgrade Required",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            502 => "Bad Gateway",
            505 => "HTTP Version Not Supported",
            _ => "",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for StatusCode {
    fn from(v: u16) -> Self {
        StatusCode(v)
    }
}

/// A byte-exact HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code of the status line.
    pub status: StatusCode,
    /// Reason phrase (may be empty).
    pub reason: Vec<u8>,
    /// Version token on the status line.
    pub version: Vec<u8>,
    /// Header fields in wire order.
    pub headers: Headers,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Builds a response with the canonical reason phrase and HTTP/1.1.
    pub fn new(status: StatusCode) -> Response {
        Response {
            status,
            reason: status.reason().as_bytes().to_vec(),
            version: b"HTTP/1.1".to_vec(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Builds a response with a body and a matching `Content-Length`.
    pub fn with_body(status: StatusCode, body: impl Into<Vec<u8>>) -> Response {
        let body = body.into();
        let mut r = Response::new(status);
        r.headers.push("Content-Length", body.len().to_string());
        r.body = body;
        r
    }

    /// Serializes the response: status line, headers, blank line, body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.version);
        out.push(b' ');
        out.extend_from_slice(self.status.0.to_string().as_bytes());
        if !self.reason.is_empty() {
            out.push(b' ');
            out.extend_from_slice(&self.reason);
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.headers.to_bytes());
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status, String::from_utf8_lossy(&self.reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classes() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::BAD_REQUEST.is_client_error());
        assert!(StatusCode::BAD_GATEWAY.is_server_error());
        assert!(StatusCode::BAD_REQUEST.is_error());
        assert!(StatusCode::INTERNAL_ERROR.is_error());
        assert!(!StatusCode::OK.is_error());
    }

    #[test]
    fn serialization() {
        let r = Response::with_body(StatusCode::OK, "hi");
        assert_eq!(r.to_bytes(), b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi");
    }

    #[test]
    fn empty_reason_omits_space() {
        let mut r = Response::new(StatusCode(299));
        r.reason.clear();
        assert!(r.to_bytes().starts_with(b"HTTP/1.1 299\r\n"));
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(StatusCode::BAD_REQUEST.reason(), "Bad Request");
        assert_eq!(StatusCode(299).reason(), "");
        assert_eq!(StatusCode::from(417).reason(), "Expectation Failed");
    }
}
