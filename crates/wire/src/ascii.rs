//! ASCII classification helpers shared by parsers and generators.
//!
//! These implement the character classes of RFC 7230 §3.2.6 and RFC 5234
//! appendix B.1. They are deliberately standalone functions on `u8` so both
//! the strict parser and the lenient product simulations can reuse them.

/// Returns `true` if `b` is an RFC 7230 `tchar` (a token character).
///
/// ```
/// assert!(hdiff_wire::ascii::is_tchar(b'a'));
/// assert!(!hdiff_wire::ascii::is_tchar(b':'));
/// ```
pub fn is_tchar(b: u8) -> bool {
    matches!(
        b,
        b'!' | b'#'
            | b'$'
            | b'%'
            | b'&'
            | b'\''
            | b'*'
            | b'+'
            | b'-'
            | b'.'
            | b'^'
            | b'_'
            | b'`'
            | b'|'
            | b'~'
    ) || b.is_ascii_alphanumeric()
}

/// Returns `true` if every byte of `s` is a `tchar` and `s` is non-empty.
pub fn is_token(s: &[u8]) -> bool {
    !s.is_empty() && s.iter().all(|&b| is_tchar(b))
}

/// Returns `true` for optional whitespace bytes (`SP` / `HTAB`, RFC 7230 `OWS`).
pub fn is_ows(b: u8) -> bool {
    b == b' ' || b == b'\t'
}

/// Returns `true` for RFC 7230 `VCHAR` (visible USASCII).
pub fn is_vchar(b: u8) -> bool {
    (0x21..=0x7e).contains(&b)
}

/// Returns `true` for a byte allowed inside a header field value
/// (`field-vchar` plus `SP`/`HTAB` between visible characters).
pub fn is_field_vchar(b: u8) -> bool {
    is_vchar(b) || b >= 0x80
}

/// Returns `true` for ASCII hexadecimal digits.
pub fn is_hex_digit(b: u8) -> bool {
    b.is_ascii_hexdigit()
}

/// Trims leading and trailing OWS (`SP`/`HTAB`) from a byte slice.
///
/// ```
/// assert_eq!(hdiff_wire::ascii::trim_ows(b"  x\t"), b"x");
/// ```
pub fn trim_ows(s: &[u8]) -> &[u8] {
    let start = s.iter().position(|&b| !is_ows(b)).unwrap_or(s.len());
    let end = s.iter().rposition(|&b| !is_ows(b)).map_or(start, |i| i + 1);
    &s[start..end]
}

/// ASCII case-insensitive equality on byte slices.
///
/// ```
/// assert!(hdiff_wire::ascii::eq_ignore_case(b"Host", b"hOST"));
/// ```
pub fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.eq_ignore_ascii_case(y))
}

/// Lowercases a byte slice into an owned vector (ASCII only).
pub fn to_lower(s: &[u8]) -> Vec<u8> {
    s.to_ascii_lowercase()
}

/// Renders bytes for human-readable reports: printable ASCII passes through,
/// everything else becomes `\xNN`.
///
/// ```
/// assert_eq!(hdiff_wire::ascii::escape_bytes(b"a\x0bb"), "a\\x0bb");
/// ```
pub fn escape_bytes(s: &[u8]) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s {
        match b {
            b'\\' => out.push_str("\\\\"),
            b'\r' => out.push_str("\\r"),
            b'\n' => out.push_str("\\n"),
            b'\t' => out.push_str("\\t"),
            0x20..=0x7e => out.push(b as char),
            _ => out.push_str(&format!("\\x{b:02x}")),
        }
    }
    out
}

/// Parses an ASCII decimal unsigned integer strictly (no sign, no
/// whitespace, at least one digit). Returns `None` on overflow or any
/// non-digit byte — this is the RFC-conformant `Content-Length` reading.
pub fn parse_dec_strict(s: &[u8]) -> Option<u64> {
    if s.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    for &b in s {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
    }
    Some(v)
}

/// Lenient decimal parse used by permissive product models: skips leading
/// whitespace, accepts an optional `+` sign, stops at the first non-digit.
/// Returns `None` only if no digit was consumed.
pub fn parse_dec_lenient(s: &[u8]) -> Option<u64> {
    let s = trim_ows(s);
    let s = s.strip_prefix(b"+").unwrap_or(s);
    let mut v: u64 = 0;
    let mut any = false;
    for &b in s {
        if !b.is_ascii_digit() {
            break;
        }
        any = true;
        v = v.saturating_mul(10).saturating_add(u64::from(b - b'0'));
    }
    any.then_some(v)
}

/// Parses an ASCII hexadecimal unsigned integer strictly; `None` on overflow
/// or invalid digit. This is the RFC-conformant `chunk-size` reading.
pub fn parse_hex_strict(s: &[u8]) -> Option<u64> {
    if s.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    for &b in s {
        let d = (b as char).to_digit(16)?;
        v = v.checked_mul(16)?.checked_add(u64::from(d))?;
    }
    Some(v)
}

/// Hexadecimal parse that *wraps on overflow* instead of failing — the
/// integer-overflow "repair" behavior the paper observed in Haproxy and
/// Squid chunk-size handling (§IV-B, *Bad chunk-size value*).
pub fn parse_hex_wrapping(s: &[u8]) -> Option<u64> {
    let mut v: u64 = 0;
    let mut any = false;
    for &b in s {
        let d = (b as char).to_digit(16)?;
        any = true;
        v = v.wrapping_mul(16).wrapping_add(u64::from(d));
    }
    any.then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tchar_accepts_token_symbols() {
        for b in b"!#$%&'*+-.^_`|~" {
            assert!(is_tchar(*b), "{}", *b as char);
        }
        assert!(is_tchar(b'G'));
        assert!(is_tchar(b'7'));
    }

    #[test]
    fn tchar_rejects_separators() {
        for b in b"()<>@,;:\\\"/[]?={} \t" {
            assert!(!is_tchar(*b), "{}", *b as char);
        }
        assert!(!is_tchar(0x0b));
        assert!(!is_tchar(0x80));
    }

    #[test]
    fn token_requires_nonempty() {
        assert!(!is_token(b""));
        assert!(is_token(b"Content-Length"));
        assert!(!is_token(b"Content Length"));
    }

    #[test]
    fn trim_ows_both_ends() {
        assert_eq!(trim_ows(b"\t a b \t"), b"a b");
        assert_eq!(trim_ows(b"   "), b"");
        assert_eq!(trim_ows(b""), b"");
        assert_eq!(trim_ows(b"x"), b"x");
    }

    #[test]
    fn case_insensitive_eq() {
        assert!(eq_ignore_case(b"TRANSFER-ENCODING", b"transfer-encoding"));
        assert!(!eq_ignore_case(b"Host", b"Hos"));
    }

    #[test]
    fn escape_renders_controls() {
        assert_eq!(escape_bytes(b"GET / HTTP/1.1\r\n"), "GET / HTTP/1.1\\r\\n");
        assert_eq!(escape_bytes(&[0x00, 0xff]), "\\x00\\xff");
    }

    #[test]
    fn strict_decimal() {
        assert_eq!(parse_dec_strict(b"0"), Some(0));
        assert_eq!(parse_dec_strict(b"42"), Some(42));
        assert_eq!(parse_dec_strict(b"+42"), None);
        assert_eq!(parse_dec_strict(b" 42"), None);
        assert_eq!(parse_dec_strict(b"4 2"), None);
        assert_eq!(parse_dec_strict(b""), None);
        assert_eq!(parse_dec_strict(b"99999999999999999999999"), None);
    }

    #[test]
    fn lenient_decimal() {
        assert_eq!(parse_dec_lenient(b"+6"), Some(6));
        assert_eq!(parse_dec_lenient(b" 10"), Some(10));
        assert_eq!(parse_dec_lenient(b"6,9"), Some(6));
        assert_eq!(parse_dec_lenient(b"abc"), None);
    }

    #[test]
    fn strict_hex() {
        assert_eq!(parse_hex_strict(b"ff"), Some(255));
        assert_eq!(parse_hex_strict(b"0"), Some(0));
        assert_eq!(parse_hex_strict(b"fgh"), None);
        assert_eq!(parse_hex_strict(b"ffffffffffffffff1"), None);
    }

    #[test]
    fn wrapping_hex_overflows_like_a_buggy_proxy() {
        // 2^64 = 0x1_0000_0000_0000_0000 wraps to 0.
        assert_eq!(parse_hex_wrapping(b"10000000000000000"), Some(0));
        // 2^64 + 0xa wraps to 10 — the "big number repaired to a" example.
        assert_eq!(parse_hex_wrapping(b"1000000000000000a"), Some(10));
        assert_eq!(parse_hex_wrapping(b"ff"), Some(255));
        assert_eq!(parse_hex_wrapping(b"xyz"), None);
    }
}
