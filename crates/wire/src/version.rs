//! HTTP version handling, including the malformed versions HDiff generates.
//!
//! Table II of the paper lists *invalid HTTP-version* (`1.1/HTTP`,
//! `HTTP/3-1`, `hTTP/1.1`) and *lower/higher HTTP-version* (`HTTP/0.9`,
//! `HTTP/2.0`) as attack vectors, so the wire model must be able to carry a
//! version that is not `HTTP-name "/" DIGIT "." DIGIT` at all.

use std::fmt;

use crate::ascii;

/// An HTTP version as it appears on the request line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Version {
    /// `HTTP/0.9` — the pre-header protocol; a bare `GET path` line.
    Http09,
    /// `HTTP/1.0`.
    Http10,
    /// `HTTP/1.1`.
    Http11,
    /// `HTTP/2.0` as a literal request-line token (a smuggling vector; real
    /// HTTP/2 is binary-framed and out of scope, as in the paper).
    Http20,
    /// Any other `HTTP/D.D` version (e.g. `HTTP/1.2`).
    Other(u8, u8),
    /// A token in version position that does not match the grammar at all
    /// (`1.1/HTTP`, `HTTP/3-1`, `hTTP/1.1`, …), preserved verbatim.
    Invalid(Vec<u8>),
}

impl Version {
    /// Parses version bytes. Grammar-violating input is preserved as
    /// [`Version::Invalid`] rather than rejected, because HDiff needs to
    /// carry it to the target implementations.
    ///
    /// ```
    /// use hdiff_wire::Version;
    /// assert_eq!(Version::from_bytes(b"HTTP/1.1"), Version::Http11);
    /// assert!(matches!(Version::from_bytes(b"1.1/HTTP"), Version::Invalid(_)));
    /// ```
    pub fn from_bytes(b: &[u8]) -> Version {
        match b {
            b"HTTP/0.9" => return Version::Http09,
            b"HTTP/1.0" => return Version::Http10,
            b"HTTP/1.1" => return Version::Http11,
            b"HTTP/2.0" => return Version::Http20,
            _ => {}
        }
        // HTTP-name is case-sensitive %x48.54.54.50.
        if b.len() == 8
            && &b[..5] == b"HTTP/"
            && b[5].is_ascii_digit()
            && b[6] == b'.'
            && b[7].is_ascii_digit()
        {
            return Version::Other(b[5] - b'0', b[7] - b'0');
        }
        Version::Invalid(b.to_vec())
    }

    /// The wire bytes for this version.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Version::Http09 => b"HTTP/0.9".to_vec(),
            Version::Http10 => b"HTTP/1.0".to_vec(),
            Version::Http11 => b"HTTP/1.1".to_vec(),
            Version::Http20 => b"HTTP/2.0".to_vec(),
            Version::Other(maj, min) => format!("HTTP/{maj}.{min}").into_bytes(),
            Version::Invalid(raw) => raw.clone(),
        }
    }

    /// Whether the version matches the RFC 7230 `HTTP-version` grammar.
    pub fn is_grammatical(&self) -> bool {
        !matches!(self, Version::Invalid(_))
    }

    /// `(major, minor)` if grammatical.
    pub fn numbers(&self) -> Option<(u8, u8)> {
        match self {
            Version::Http09 => Some((0, 9)),
            Version::Http10 => Some((1, 0)),
            Version::Http11 => Some((1, 1)),
            Version::Http20 => Some((2, 0)),
            Version::Other(a, b) => Some((*a, *b)),
            Version::Invalid(_) => None,
        }
    }

    /// Whether this version is older than HTTP/1.1 (relevant to
    /// `Transfer-Encoding`, which was introduced in 1.1, and to cacheability
    /// heuristics several proxies apply).
    pub fn is_pre_1_1(&self) -> bool {
        matches!(self.numbers(), Some((0, _)) | Some((1, 0)))
    }

    /// Whether this version is newer than HTTP/1.1 as a request-line token.
    pub fn is_post_1_1(&self) -> bool {
        matches!(self.numbers(), Some((maj, _)) if maj >= 2)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Version::Invalid(raw) => write!(f, "{}", ascii::escape_bytes(raw)),
            other => write!(f, "{}", String::from_utf8_lossy(&other.to_bytes())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_versions_round_trip() {
        for (bytes, v) in [
            (&b"HTTP/0.9"[..], Version::Http09),
            (b"HTTP/1.0", Version::Http10),
            (b"HTTP/1.1", Version::Http11),
            (b"HTTP/2.0", Version::Http20),
        ] {
            assert_eq!(Version::from_bytes(bytes), v);
            assert_eq!(v.to_bytes(), bytes);
        }
    }

    #[test]
    fn other_grammatical_versions() {
        assert_eq!(Version::from_bytes(b"HTTP/1.2"), Version::Other(1, 2));
        assert_eq!(Version::Other(3, 0).to_bytes(), b"HTTP/3.0");
        assert!(Version::Other(1, 2).is_grammatical());
    }

    #[test]
    fn paper_invalid_versions_are_preserved() {
        for raw in [&b"1.1/HTTP"[..], b"HTTP/3-1", b"hTTP/1.1", b"HTTP/11", b"http/1.1"] {
            let v = Version::from_bytes(raw);
            assert!(matches!(v, Version::Invalid(_)), "{raw:?}");
            assert_eq!(v.to_bytes(), raw);
            assert!(!v.is_grammatical());
        }
    }

    #[test]
    fn version_ordering_helpers() {
        assert!(Version::Http09.is_pre_1_1());
        assert!(Version::Http10.is_pre_1_1());
        assert!(!Version::Http11.is_pre_1_1());
        assert!(Version::Http20.is_post_1_1());
        assert!(!Version::Http11.is_post_1_1());
        assert!(!Version::Invalid(b"x".to_vec()).is_pre_1_1());
    }

    #[test]
    fn display_escapes_invalid() {
        let v = Version::Invalid(b"HTTP/\x0b1.1".to_vec());
        assert_eq!(v.to_string(), "HTTP/\\x0b1.1");
    }
}
