//! Byte-exact HTTP request representation and builder.

use std::fmt;

use crate::ascii;
use crate::header::{HeaderField, Headers};
use crate::method::Method;
use crate::version::Version;

/// A byte-exact HTTP/1.x request.
///
/// The request line is stored as three raw components plus an optional
/// whole-line override ([`Request::set_raw_request_line`]) for shapes that do
/// not split into three tokens at all (extra spaces, missing version,
/// HTTP/0.9 simple requests, proxy-"repaired" lines such as
/// `GET /?a=b 1.1/HTTP HTTP/1.0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    method: Vec<u8>,
    target: Vec<u8>,
    version: Vec<u8>,
    raw_request_line: Option<Vec<u8>>,
    /// Header fields in wire order.
    pub headers: Headers,
    /// Raw body bytes exactly as they will be written after the blank line.
    pub body: Vec<u8>,
}

impl Request {
    /// Starts building a request. See [`RequestBuilder`].
    pub fn builder() -> RequestBuilder {
        RequestBuilder::default()
    }

    /// A minimal valid `GET / HTTP/1.1` request with the given `Host`.
    ///
    /// ```
    /// let r = hdiff_wire::Request::get("example.com");
    /// assert!(r.to_bytes().ends_with(b"Host: example.com\r\n\r\n"));
    /// ```
    pub fn get(host: &str) -> Request {
        Request::builder()
            .method(Method::Get)
            .target("/")
            .version(Version::Http11)
            .header("Host", host)
            .build()
    }

    /// The method bytes as sent on the wire.
    pub fn method_bytes(&self) -> &[u8] {
        &self.method
    }

    /// The parsed method (extension tokens preserved).
    pub fn method(&self) -> Method {
        Method::from_bytes(&self.method)
    }

    /// The request-target bytes as sent.
    pub fn target(&self) -> &[u8] {
        &self.target
    }

    /// The version bytes as sent.
    pub fn version_bytes(&self) -> &[u8] {
        &self.version
    }

    /// The parsed version (invalid tokens preserved).
    pub fn version(&self) -> Version {
        Version::from_bytes(&self.version)
    }

    /// Replaces the method token.
    pub fn set_method(&mut self, m: impl AsRef<[u8]>) {
        self.method = m.as_ref().to_vec();
        self.raw_request_line = None;
    }

    /// Replaces the request-target.
    pub fn set_target(&mut self, t: impl AsRef<[u8]>) {
        self.target = t.as_ref().to_vec();
        self.raw_request_line = None;
    }

    /// Replaces the version token.
    pub fn set_version(&mut self, v: impl AsRef<[u8]>) {
        self.version = v.as_ref().to_vec();
        self.raw_request_line = None;
    }

    /// Overrides the entire request line with raw bytes (no CRLF). Used for
    /// request lines that do not decompose into `method SP target SP version`.
    pub fn set_raw_request_line(&mut self, line: impl Into<Vec<u8>>) {
        self.raw_request_line = Some(line.into());
    }

    /// The request line bytes (no CRLF), honoring any raw override.
    pub fn request_line(&self) -> Vec<u8> {
        if let Some(raw) = &self.raw_request_line {
            return raw.clone();
        }
        let mut line =
            Vec::with_capacity(self.method.len() + self.target.len() + self.version.len() + 2);
        line.extend_from_slice(&self.method);
        line.push(b' ');
        line.extend_from_slice(&self.target);
        if !self.version.is_empty() {
            line.push(b' ');
            line.extend_from_slice(&self.version);
        }
        line
    }

    /// Whether the request line was overridden with raw bytes.
    pub fn has_raw_request_line(&self) -> bool {
        self.raw_request_line.is_some()
    }

    /// Serializes the full request: request line, headers, blank line, body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let line = self.request_line();
        let headers = self.headers.to_bytes();
        let mut out = Vec::with_capacity(line.len() + 2 + headers.len() + 2 + self.body.len());
        out.extend_from_slice(&line);
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&headers);
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Convenience: first `Host` header value (trimmed), if present.
    pub fn host(&self) -> Option<&[u8]> {
        self.headers.first(b"Host").map(HeaderField::value)
    }

    /// Convenience: all `Content-Length` values in order.
    pub fn content_lengths(&self) -> Vec<&[u8]> {
        self.headers.all(b"Content-Length").map(HeaderField::value).collect()
    }

    /// Convenience: all `Transfer-Encoding` values in order.
    pub fn transfer_encodings(&self) -> Vec<&[u8]> {
        self.headers.all(b"Transfer-Encoding").map(HeaderField::value).collect()
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&ascii::escape_bytes(&self.to_bytes()))
    }
}

/// Builder for [`Request`]. Non-consuming per the builder guideline; call
/// [`RequestBuilder::build`] to produce the request.
///
/// ```
/// use hdiff_wire::{Request, Method, Version};
/// let r = Request::builder()
///     .method(Method::Post)
///     .target("/submit")
///     .version(Version::Http11)
///     .header("Host", "example.com")
///     .header("Content-Length", "3")
///     .body(b"abc".to_vec())
///     .build();
/// assert_eq!(r.content_lengths(), vec![&b"3"[..]]);
/// ```
#[derive(Debug, Clone)]
pub struct RequestBuilder {
    req: Request,
}

impl Default for RequestBuilder {
    fn default() -> Self {
        RequestBuilder {
            req: Request {
                method: b"GET".to_vec(),
                target: b"/".to_vec(),
                version: b"HTTP/1.1".to_vec(),
                raw_request_line: None,
                headers: Headers::new(),
                body: Vec::new(),
            },
        }
    }
}

impl RequestBuilder {
    /// Sets the method from a [`Method`].
    pub fn method(&mut self, m: Method) -> &mut Self {
        self.req.method = m.as_bytes().to_vec();
        self
    }

    /// Sets the method from raw bytes (may be malformed).
    pub fn method_raw(&mut self, m: impl AsRef<[u8]>) -> &mut Self {
        self.req.method = m.as_ref().to_vec();
        self
    }

    /// Sets the request-target.
    pub fn target(&mut self, t: impl AsRef<[u8]>) -> &mut Self {
        self.req.target = t.as_ref().to_vec();
        self
    }

    /// Sets the version from a [`Version`].
    pub fn version(&mut self, v: Version) -> &mut Self {
        self.req.version = v.to_bytes();
        self
    }

    /// Sets the version from raw bytes (may be malformed).
    pub fn version_raw(&mut self, v: impl AsRef<[u8]>) -> &mut Self {
        self.req.version = v.as_ref().to_vec();
        self
    }

    /// Appends a well-formed header.
    pub fn header(&mut self, name: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> &mut Self {
        self.req.headers.push(name, value);
        self
    }

    /// Appends a raw header line verbatim (may be malformed).
    pub fn header_raw(&mut self, raw: impl Into<Vec<u8>>) -> &mut Self {
        self.req.headers.push_raw(raw);
        self
    }

    /// Sets the body bytes.
    pub fn body(&mut self, body: impl Into<Vec<u8>>) -> &mut Self {
        self.req.body = body.into();
        self
    }

    /// Overrides the whole request line with raw bytes.
    pub fn raw_request_line(&mut self, line: impl Into<Vec<u8>>) -> &mut Self {
        self.req.raw_request_line = Some(line.into());
        self
    }

    /// Produces the request (the builder can be reused).
    pub fn build(&self) -> Request {
        self.req.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_in_wire_order() {
        let r = Request::builder()
            .method(Method::Post)
            .target("/a")
            .version(Version::Http11)
            .header("Host", "h1.com")
            .header_raw(b"Content-Length : 5".to_vec())
            .body(b"hello".to_vec())
            .build();
        assert_eq!(
            r.to_bytes(),
            b"POST /a HTTP/1.1\r\nHost: h1.com\r\nContent-Length : 5\r\n\r\nhello"
        );
    }

    #[test]
    fn raw_request_line_override() {
        let mut r = Request::get("example.com");
        r.set_raw_request_line(b"GET /?a=b 1.1/HTTP HTTP/1.0".to_vec());
        assert!(r.to_bytes().starts_with(b"GET /?a=b 1.1/HTTP HTTP/1.0\r\n"));
        assert!(r.has_raw_request_line());
    }

    #[test]
    fn setting_components_clears_override() {
        let mut r = Request::get("example.com");
        r.set_raw_request_line(b"garbage".to_vec());
        r.set_target(b"/x");
        assert!(r.to_bytes().starts_with(b"GET /x HTTP/1.1\r\n"));
    }

    #[test]
    fn empty_version_omits_trailing_space() {
        // HTTP/0.9 simple request: "GET /path" with no version token.
        let r = Request::builder().target("/p").version_raw(b"").build();
        assert_eq!(r.request_line(), b"GET /p");
    }

    #[test]
    fn convenience_accessors() {
        let r = Request::builder()
            .header("Host", "a.com")
            .header("Content-Length", "1")
            .header("Content-Length", "2")
            .header("Transfer-Encoding", "chunked")
            .build();
        assert_eq!(r.host(), Some(&b"a.com"[..]));
        assert_eq!(r.content_lengths(), vec![&b"1"[..], b"2"]);
        assert_eq!(r.transfer_encodings(), vec![&b"chunked"[..]]);
        assert_eq!(r.method(), Method::Get);
        assert_eq!(r.version(), Version::Http11);
    }
}
