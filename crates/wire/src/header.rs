//! Ordered, duplicate-preserving, byte-exact header fields.
//!
//! A [`HeaderField`] stores the *raw header line* (without the CRLF). This is
//! essential: the attacks in the paper hinge on bytes a structured map would
//! normalize away — whitespace between field-name and colon
//! (`Content-Length : 10`), control characters inside values
//! (`Transfer-Encoding:\x0bchunked`), obs-fold continuations, and repeated
//! fields. Accessors provide *interpretations* of the raw line; different
//! product simulations choose different interpretations.

use std::fmt;

use crate::ascii;

/// One header field as a raw line (no trailing CRLF).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeaderField {
    raw: Vec<u8>,
}

impl HeaderField {
    /// Builds a well-formed `name: value` line.
    ///
    /// ```
    /// use hdiff_wire::HeaderField;
    /// let h = HeaderField::new("Host", "example.com");
    /// assert_eq!(h.raw(), b"Host: example.com");
    /// ```
    pub fn new(name: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> HeaderField {
        let name = name.as_ref();
        let value = value.as_ref();
        let mut raw = Vec::with_capacity(name.len() + 2 + value.len());
        raw.extend_from_slice(name);
        raw.extend_from_slice(b": ");
        raw.extend_from_slice(value);
        HeaderField { raw }
    }

    /// Wraps an arbitrary raw header line verbatim. The line may be
    /// malformed in any way; interpretation is deferred to accessors.
    pub fn from_raw(raw: impl Into<Vec<u8>>) -> HeaderField {
        HeaderField { raw: raw.into() }
    }

    /// The raw line bytes (no CRLF).
    pub fn raw(&self) -> &[u8] {
        &self.raw
    }

    /// Consumes the field, returning the raw line.
    pub fn into_raw(self) -> Vec<u8> {
        self.raw
    }

    /// Position of the first colon, if any.
    fn colon(&self) -> Option<usize> {
        self.raw.iter().position(|&b| b == b':')
    }

    /// The bytes before the first colon, verbatim — possibly including
    /// trailing whitespace or control bytes. Returns the whole line when no
    /// colon is present.
    pub fn name_raw(&self) -> &[u8] {
        match self.colon() {
            Some(i) => &self.raw[..i],
            None => &self.raw,
        }
    }

    /// The name with surrounding OWS trimmed — the *lenient* reading a
    /// product like IIS applies to `Content-Length : 10` (§IV-B).
    pub fn name_trimmed(&self) -> &[u8] {
        ascii::trim_ows(self.name_raw())
    }

    /// The bytes after the first colon with OWS trimmed (the usual value
    /// reading). Empty when no colon exists.
    pub fn value(&self) -> &[u8] {
        match self.colon() {
            Some(i) => ascii::trim_ows(&self.raw[i + 1..]),
            None => b"",
        }
    }

    /// The bytes after the first colon verbatim (leading separators intact);
    /// lenient parsers differ on how much of this they strip.
    pub fn value_raw(&self) -> &[u8] {
        match self.colon() {
            Some(i) => &self.raw[i + 1..],
            None => b"",
        }
    }

    /// Whether the raw name is a valid RFC 7230 token immediately followed
    /// by the colon (i.e. the line is grammatical at the name level).
    pub fn name_is_strict(&self) -> bool {
        self.colon().is_some() && ascii::is_token(self.name_raw())
    }

    /// Whether there is whitespace between the field name and the colon —
    /// the explicit MUST-reject case of RFC 7230 §3.2.4.
    pub fn has_ws_before_colon(&self) -> bool {
        let name = self.name_raw();
        self.colon().is_some() && name.last().is_some_and(|&b| ascii::is_ows(b))
    }

    /// Case-insensitive match of the *trimmed* name against `name`.
    pub fn is(&self, name: &[u8]) -> bool {
        ascii::eq_ignore_case(self.name_trimmed(), name)
    }

    /// Case-insensitive match of the *strict* (untrimmed) name.
    pub fn is_strict(&self, name: &[u8]) -> bool {
        ascii::eq_ignore_case(self.name_raw(), name)
    }
}

impl fmt::Display for HeaderField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&ascii::escape_bytes(&self.raw))
    }
}

/// An ordered list of header fields, duplicates preserved.
///
/// ```
/// use hdiff_wire::Headers;
/// let mut h = Headers::new();
/// h.push("Host", "a.com");
/// h.push("Host", "b.com");
/// assert_eq!(h.all(b"host").count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    fields: Vec<HeaderField>,
}

impl Headers {
    /// Creates an empty header list.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Appends a well-formed `name: value` field.
    pub fn push(&mut self, name: impl AsRef<[u8]>, value: impl AsRef<[u8]>) {
        self.fields.push(HeaderField::new(name, value));
    }

    /// Appends a raw header line verbatim.
    pub fn push_raw(&mut self, raw: impl Into<Vec<u8>>) {
        self.fields.push(HeaderField::from_raw(raw));
    }

    /// Appends an already-built field.
    pub fn push_field(&mut self, field: HeaderField) {
        self.fields.push(field);
    }

    /// Iterates over fields in wire order.
    pub fn iter(&self) -> std::slice::Iter<'_, HeaderField> {
        self.fields.iter()
    }

    /// Mutable iteration in wire order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, HeaderField> {
        self.fields.iter_mut()
    }

    /// All fields whose trimmed name matches `name` case-insensitively.
    pub fn all<'s>(&'s self, name: &[u8]) -> impl Iterator<Item = &'s HeaderField> + 's {
        let name = name.to_vec();
        self.fields.iter().filter(move |f| f.is(&name))
    }

    /// The first field matching `name` (trimmed, case-insensitive).
    pub fn first(&self, name: &[u8]) -> Option<&HeaderField> {
        self.all(name).next()
    }

    /// The last field matching `name`.
    pub fn last(&self, name: &[u8]) -> Option<&HeaderField> {
        self.fields.iter().rev().find(|f| f.is(name))
    }

    /// Count of fields matching `name`.
    pub fn count(&self, name: &[u8]) -> usize {
        self.all(name).count()
    }

    /// Removes every field matching `name` (trimmed, case-insensitive),
    /// returning how many were removed.
    pub fn remove(&mut self, name: &[u8]) -> usize {
        let before = self.fields.len();
        self.fields.retain(|f| !f.is(name));
        before - self.fields.len()
    }

    /// Replaces all occurrences of `name` with a single `name: value` field
    /// appended at the end (the "replace duplicated field-values with a
    /// single valid value" recovery of RFC 7230 §3.3.2).
    pub fn set(&mut self, name: impl AsRef<[u8]>, value: impl AsRef<[u8]>) {
        self.remove(name.as_ref());
        self.push(name, value);
    }

    /// Serializes all fields, each terminated by CRLF.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for f in &self.fields {
            out.extend_from_slice(f.raw());
            out.extend_from_slice(b"\r\n");
        }
        out
    }

    /// Total serialized size in bytes (used by header-oversize checks).
    pub fn wire_len(&self) -> usize {
        self.fields.iter().map(|f| f.raw().len() + 2).sum()
    }
}

impl FromIterator<HeaderField> for Headers {
    fn from_iter<T: IntoIterator<Item = HeaderField>>(iter: T) -> Self {
        Headers { fields: iter.into_iter().collect() }
    }
}

impl Extend<HeaderField> for Headers {
    fn extend<T: IntoIterator<Item = HeaderField>>(&mut self, iter: T) {
        self.fields.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Headers {
    type Item = &'a HeaderField;
    type IntoIter = std::slice::Iter<'a, HeaderField>;
    fn into_iter(self) -> Self::IntoIter {
        self.fields.iter()
    }
}

impl IntoIterator for Headers {
    type Item = HeaderField;
    type IntoIter = std::vec::IntoIter<HeaderField>;
    fn into_iter(self) -> Self::IntoIter {
        self.fields.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_field_round_trip() {
        let h = HeaderField::new("Content-Length", "10");
        assert_eq!(h.name_raw(), b"Content-Length");
        assert_eq!(h.value(), b"10");
        assert!(h.name_is_strict());
        assert!(!h.has_ws_before_colon());
    }

    #[test]
    fn ws_before_colon_detected() {
        let h = HeaderField::from_raw(b"Content-Length : 10".to_vec());
        assert!(h.has_ws_before_colon());
        assert!(!h.name_is_strict());
        assert_eq!(h.name_trimmed(), b"Content-Length");
        assert_eq!(h.value(), b"10");
        // The strict reading keeps the space in the name.
        assert_eq!(h.name_raw(), b"Content-Length ");
    }

    #[test]
    fn control_byte_value_is_preserved() {
        let h = HeaderField::from_raw(b"Transfer-Encoding:\x0bchunked".to_vec());
        assert_eq!(h.value_raw(), b"\x0bchunked");
        // OWS-trim does not strip \x0b — it is not SP/HTAB.
        assert_eq!(h.value(), b"\x0bchunked");
        assert!(h.is(b"transfer-encoding"));
    }

    #[test]
    fn line_without_colon() {
        let h = HeaderField::from_raw(b"garbage-line".to_vec());
        assert_eq!(h.name_raw(), b"garbage-line");
        assert_eq!(h.value(), b"");
        assert!(!h.name_is_strict());
    }

    #[test]
    fn headers_preserve_order_and_duplicates() {
        let mut hs = Headers::new();
        hs.push("Host", "a.com");
        hs.push("X-Test", "1");
        hs.push("Host", "b.com");
        assert_eq!(hs.len(), 3);
        assert_eq!(hs.count(b"Host"), 2);
        assert_eq!(hs.first(b"host").unwrap().value(), b"a.com");
        assert_eq!(hs.last(b"HOST").unwrap().value(), b"b.com");
        let order: Vec<_> = hs.iter().map(|f| f.name_trimmed().to_vec()).collect();
        assert_eq!(order, vec![b"Host".to_vec(), b"X-Test".to_vec(), b"Host".to_vec()]);
    }

    #[test]
    fn set_collapses_duplicates() {
        let mut hs = Headers::new();
        hs.push("Content-Length", "10");
        hs.push("Content-Length", "0");
        hs.set("Content-Length", "10");
        assert_eq!(hs.count(b"Content-Length"), 1);
        assert_eq!(hs.first(b"content-length").unwrap().value(), b"10");
    }

    #[test]
    fn serialization_is_byte_exact() {
        let mut hs = Headers::new();
        hs.push_raw(b"Host : evil.com".to_vec());
        hs.push("A", "b");
        assert_eq!(hs.to_bytes(), b"Host : evil.com\r\nA: b\r\n");
        assert_eq!(hs.wire_len(), hs.to_bytes().len());
    }
}
