//! Property-based tests over the wire model's invariants.

use proptest::prelude::*;

use hdiff_wire::ascii;
use hdiff_wire::{parse_request, HeaderField, Headers, Method, Request, Version};

fn header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,15}"
}

fn header_value() -> impl Strategy<Value = String> {
    "[ -~]{0,30}".prop_map(|s| s.trim().to_string())
}

proptest! {
    /// Headers preserve wire order and duplicate count through
    /// serialization and strict re-parsing.
    #[test]
    fn headers_survive_round_trip(
        names in proptest::collection::vec(header_name(), 1..8),
        values in proptest::collection::vec(header_value(), 1..8),
    ) {
        let mut req = Request::builder()
            .method(Method::Get)
            .target("/")
            .version(Version::Http11)
            .build();
        req.headers.push("Host", "h1.com");
        let pairs: Vec<(String, String)> = names
            .iter()
            .zip(values.iter())
            // Framing and Host headers change parse semantics; skip them.
            .filter(|(n, _)| {
                !n.eq_ignore_ascii_case("Content-Length")
                    && !n.eq_ignore_ascii_case("Transfer-Encoding")
                    && !n.eq_ignore_ascii_case("Host")
            })
            .map(|(n, v)| (n.clone(), v.clone()))
            .collect();
        for (n, v) in &pairs {
            req.headers.push(n, v);
        }
        let parsed = parse_request(&req.to_bytes()).unwrap();
        // One Host plus every generated pair, in order.
        prop_assert_eq!(parsed.headers.len(), 1 + pairs.len());
        for (i, (n, v)) in pairs.iter().enumerate() {
            let field = parsed.headers.iter().nth(i + 1).unwrap();
            prop_assert_eq!(field.name_trimmed(), n.as_bytes());
            prop_assert_eq!(field.value(), v.as_bytes());
        }
    }

    /// `HeaderField::new` always produces a strict, ws-free line whose
    /// accessors return the inputs.
    #[test]
    fn header_field_constructor_is_strict(name in header_name(), value in header_value()) {
        let f = HeaderField::new(&name, &value);
        prop_assert!(f.name_is_strict());
        prop_assert!(!f.has_ws_before_colon());
        prop_assert_eq!(f.name_raw(), name.as_bytes());
        prop_assert_eq!(f.value(), value.as_bytes());
    }

    /// `trim_ows` is idempotent and only removes SP/HTAB at the ends.
    #[test]
    fn trim_ows_idempotent(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let once = ascii::trim_ows(&bytes);
        let twice = ascii::trim_ows(once);
        prop_assert_eq!(once, twice);
        if !once.is_empty() {
            prop_assert!(!ascii::is_ows(once[0]));
            prop_assert!(!ascii::is_ows(*once.last().unwrap()));
        }
    }

    /// Strict decimal parsing agrees with Rust's parser on its domain.
    #[test]
    fn strict_decimal_agrees_with_std(n in any::<u64>()) {
        let s = n.to_string();
        prop_assert_eq!(ascii::parse_dec_strict(s.as_bytes()), Some(n));
    }

    /// Strict hex parsing agrees with Rust's parser on its domain.
    #[test]
    fn strict_hex_agrees_with_std(n in any::<u64>()) {
        let s = format!("{n:x}");
        prop_assert_eq!(ascii::parse_hex_strict(s.as_bytes()), Some(n));
        // And wrapping parse agrees on non-overflowing input.
        prop_assert_eq!(ascii::parse_hex_wrapping(s.as_bytes()), Some(n));
    }

    /// Version round trip: canonical tokens survive parse → to_bytes.
    #[test]
    fn version_round_trip(maj in 0u8..10, min in 0u8..10) {
        let token = format!("HTTP/{maj}.{min}");
        let v = Version::from_bytes(token.as_bytes());
        prop_assert!(v.is_grammatical());
        prop_assert_eq!(v.to_bytes(), token.as_bytes());
    }

    /// The strict parser never claims to consume more than the input, on
    /// arbitrary bytes.
    #[test]
    fn parser_consumption_is_bounded(input in proptest::collection::vec(any::<u8>(), 0..300)) {
        if let Ok(parsed) = parse_request(&input) {
            prop_assert!(parsed.consumed <= input.len());
        }
    }

    /// escape_bytes output is always printable ASCII.
    #[test]
    fn escape_is_printable(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let s = ascii::escape_bytes(&bytes);
        prop_assert!(s.bytes().all(|b| (0x20..=0x7e).contains(&b)));
    }
}

#[test]
fn headers_extend_and_collect() {
    let fields = vec![HeaderField::new("A", "1"), HeaderField::new("B", "2")];
    let collected: Headers = fields.clone().into_iter().collect();
    assert_eq!(collected.len(), 2);
    let mut extended = Headers::new();
    extended.extend(fields);
    assert_eq!(extended.to_bytes(), collected.to_bytes());
}
