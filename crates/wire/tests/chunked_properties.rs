//! Property-based tests over the chunked transfer coding.
//!
//! Two invariant families: (1) encode → strict-decode is the identity for
//! every payload and chunking width, with exact `consumed` accounting and
//! no repair flag; (2) malformed chunk-size lines are rejected by the
//! strict decoder — and when a lenient option accepts one instead, the
//! result is always marked `repaired`.

use proptest::prelude::*;

use hdiff_wire::chunked::encode_chunked_with;
use hdiff_wire::{
    decode_chunked, encode_chunked, ChunkedDecodeOptions, ChunkedError, OverflowBehavior,
};

proptest! {
    /// Round trip: any payload, any chunk width, strict decode returns
    /// the payload, consumes exactly the encoding, and repairs nothing.
    #[test]
    fn encode_then_strict_decode_is_identity(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        width in 1usize..40,
    ) {
        let enc = encode_chunked_with(&payload, width);
        let dec = decode_chunked(&enc, &ChunkedDecodeOptions::strict()).unwrap();
        prop_assert_eq!(&dec.payload, &payload);
        prop_assert_eq!(dec.consumed, enc.len());
        prop_assert!(!dec.repaired);
    }

    /// Pipelined bytes after the terminating chunk are never consumed.
    #[test]
    fn decode_never_consumes_pipelined_bytes(
        payload in proptest::collection::vec(any::<u8>(), 0..100),
        trailer in proptest::collection::vec(any::<u8>(), 0..50),
    ) {
        let mut stream = encode_chunked(&payload);
        let body_len = stream.len();
        stream.extend_from_slice(&trailer);
        let dec = decode_chunked(&stream, &ChunkedDecodeOptions::strict()).unwrap();
        prop_assert_eq!(dec.consumed, body_len);
        prop_assert_eq!(&stream[dec.consumed..], &trailer[..]);
    }

    /// A chunk-size line containing a non-hex byte is rejected outright
    /// by the strict decoder.
    #[test]
    fn strict_rejects_malformed_size_lines(
        size_line in "[g-zG-Z!@#%&*_=+]{1,8}",
        data in proptest::collection::vec(any::<u8>(), 0..30),
    ) {
        let mut body = size_line.as_bytes().to_vec();
        body.extend_from_slice(b"\r\n");
        body.extend_from_slice(&data);
        body.extend_from_slice(b"\r\n0\r\n\r\n");
        let err = decode_chunked(&body, &ChunkedDecodeOptions::strict()).unwrap_err();
        prop_assert!(
            matches!(err, ChunkedError::InvalidSize(_)),
            "{size_line:?} -> {err:?}"
        );
    }

    /// A hex size wider than 16 digits overflows u64: strict decoding
    /// rejects it (as overflow, or as truncation when the fantasy size
    /// exceeds the bytes present).
    #[test]
    fn strict_rejects_overflowing_sizes(
        prefix in "[1-9a-f]",
        tail in "[0-9a-f]{16,24}",
    ) {
        let mut body = format!("{prefix}{tail}\r\n").into_bytes();
        body.extend_from_slice(b"abc\r\n0\r\n\r\n");
        let err = decode_chunked(&body, &ChunkedDecodeOptions::strict()).unwrap_err();
        prop_assert!(
            matches!(err, ChunkedError::SizeOverflow(_) | ChunkedError::Truncated),
            "{err:?}"
        );
    }

    /// Leniency is never silent: whenever a lenient decoder accepts a
    /// size line the strict decoder rejects, the result carries the
    /// `repaired` marker.
    #[test]
    fn lenient_acceptance_of_strict_rejects_is_always_marked_repaired(
        junk in "(0x[0-9a-f]{1,4}|[0-9a-f]{1,3}[g-z!]{1,3})",
        data in proptest::collection::vec(any::<u8>(), 0..20),
    ) {
        let mut body = junk.as_bytes().to_vec();
        body.extend_from_slice(b"\r\n");
        body.extend_from_slice(&data);
        body.extend_from_slice(b"\r\n0\r\n\r\n");
        prop_assume!(decode_chunked(&body, &ChunkedDecodeOptions::strict()).is_err());
        let lenient = ChunkedDecodeOptions {
            overflow: OverflowBehavior::Wrap,
            allow_0x_prefix: true,
            stop_at_invalid_digit: true,
            truncate_short_final_chunk: true,
            ..ChunkedDecodeOptions::strict()
        };
        if let Ok(dec) = decode_chunked(&body, &lenient) {
            prop_assert!(dec.repaired, "lenient decode of {junk:?} not marked repaired");
        }
    }

    /// Encoding is compositional with itself: decoding a multi-chunk
    /// encoding equals decoding the single-chunk encoding of the same
    /// payload.
    #[test]
    fn chunk_width_is_invisible_to_the_payload(
        payload in proptest::collection::vec(any::<u8>(), 1..120),
        w1 in 1usize..30,
        w2 in 1usize..30,
    ) {
        let opts = ChunkedDecodeOptions::strict();
        let a = decode_chunked(&encode_chunked_with(&payload, w1), &opts).unwrap();
        let b = decode_chunked(&encode_chunked_with(&payload, w2), &opts).unwrap();
        prop_assert_eq!(a.payload, b.payload);
    }
}
