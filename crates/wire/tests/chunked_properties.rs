//! Property-based tests over the chunked transfer coding.
//!
//! Two invariant families: (1) encode → strict-decode is the identity for
//! every payload and chunking width, with exact `consumed` accounting and
//! no repair flag; (2) malformed chunk-size lines are rejected by the
//! strict decoder — and when a lenient option accepts one instead, the
//! result is always marked `repaired`.

use proptest::prelude::*;

use hdiff_wire::chunked::encode_chunked_with;
use hdiff_wire::{
    decode_chunked, encode_chunked, ChunkedDecodeOptions, ChunkedError, OverflowBehavior,
};

proptest! {
    /// Round trip: any payload, any chunk width, strict decode returns
    /// the payload, consumes exactly the encoding, and repairs nothing.
    #[test]
    fn encode_then_strict_decode_is_identity(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        width in 1usize..40,
    ) {
        let enc = encode_chunked_with(&payload, width);
        let dec = decode_chunked(&enc, &ChunkedDecodeOptions::strict()).unwrap();
        prop_assert_eq!(&dec.payload, &payload);
        prop_assert_eq!(dec.consumed, enc.len());
        prop_assert!(!dec.repaired);
    }

    /// Pipelined bytes after the terminating chunk are never consumed.
    #[test]
    fn decode_never_consumes_pipelined_bytes(
        payload in proptest::collection::vec(any::<u8>(), 0..100),
        trailer in proptest::collection::vec(any::<u8>(), 0..50),
    ) {
        let mut stream = encode_chunked(&payload);
        let body_len = stream.len();
        stream.extend_from_slice(&trailer);
        let dec = decode_chunked(&stream, &ChunkedDecodeOptions::strict()).unwrap();
        prop_assert_eq!(dec.consumed, body_len);
        prop_assert_eq!(&stream[dec.consumed..], &trailer[..]);
    }

    /// A chunk-size line containing a non-hex byte is rejected outright
    /// by the strict decoder.
    #[test]
    fn strict_rejects_malformed_size_lines(
        size_line in "[g-zG-Z!@#%&*_=+]{1,8}",
        data in proptest::collection::vec(any::<u8>(), 0..30),
    ) {
        let mut body = size_line.as_bytes().to_vec();
        body.extend_from_slice(b"\r\n");
        body.extend_from_slice(&data);
        body.extend_from_slice(b"\r\n0\r\n\r\n");
        let err = decode_chunked(&body, &ChunkedDecodeOptions::strict()).unwrap_err();
        prop_assert!(
            matches!(err, ChunkedError::InvalidSize(_)),
            "{size_line:?} -> {err:?}"
        );
    }

    /// A hex size wider than 16 digits overflows u64: strict decoding
    /// rejects it (as overflow, or as truncation when the fantasy size
    /// exceeds the bytes present).
    #[test]
    fn strict_rejects_overflowing_sizes(
        prefix in "[1-9a-f]",
        tail in "[0-9a-f]{16,24}",
    ) {
        let mut body = format!("{prefix}{tail}\r\n").into_bytes();
        body.extend_from_slice(b"abc\r\n0\r\n\r\n");
        let err = decode_chunked(&body, &ChunkedDecodeOptions::strict()).unwrap_err();
        prop_assert!(
            matches!(err, ChunkedError::SizeOverflow(_) | ChunkedError::Truncated),
            "{err:?}"
        );
    }

    /// Leniency is never silent: whenever a lenient decoder accepts a
    /// size line the strict decoder rejects, the result carries the
    /// `repaired` marker.
    #[test]
    fn lenient_acceptance_of_strict_rejects_is_always_marked_repaired(
        junk in "(0x[0-9a-f]{1,4}|[0-9a-f]{1,3}[g-z!]{1,3})",
        data in proptest::collection::vec(any::<u8>(), 0..20),
    ) {
        let mut body = junk.as_bytes().to_vec();
        body.extend_from_slice(b"\r\n");
        body.extend_from_slice(&data);
        body.extend_from_slice(b"\r\n0\r\n\r\n");
        prop_assume!(decode_chunked(&body, &ChunkedDecodeOptions::strict()).is_err());
        let lenient = ChunkedDecodeOptions {
            overflow: OverflowBehavior::Wrap,
            allow_0x_prefix: true,
            stop_at_invalid_digit: true,
            truncate_short_final_chunk: true,
            ..ChunkedDecodeOptions::strict()
        };
        if let Ok(dec) = decode_chunked(&body, &lenient) {
            prop_assert!(dec.repaired, "lenient decode of {junk:?} not marked repaired");
        }
    }

    /// Any well-formed chunk-ext — token names, token or quoted-string
    /// values, BWS sprinkled at every errata-permitted position — is
    /// accepted by the strict decoder without setting the repair flag,
    /// and never leaks into the payload.
    #[test]
    fn strict_accepts_arbitrary_wellformed_chunk_ext_unrepaired(
        payload in proptest::collection::vec(any::<u8>(), 1..60),
        names in proptest::collection::vec("[A-Za-z0-9!#$%&'*+.^_|~-]{1,8}", 1..5),
        vals in proptest::collection::vec("[A-Za-z0-9._-]{1,8}", 5),
        quoted in proptest::collection::vec("[A-Za-z0-9 \t;=,]{0,10}", 5),
        kinds in proptest::collection::vec(0u8..3, 5),
        pads in proptest::collection::vec("[ \t]{0,2}", 16),
    ) {
        let pad = |i: usize| pads[i % pads.len()].as_str();
        let mut ext = String::new();
        for (i, name) in names.iter().enumerate() {
            ext.push_str(pad(4 * i));
            ext.push(';');
            ext.push_str(pad(4 * i + 1));
            ext.push_str(name);
            match kinds[i % kinds.len()] {
                0 => {}
                k => {
                    ext.push_str(pad(4 * i + 2));
                    ext.push('=');
                    ext.push_str(pad(4 * i + 3));
                    if k == 1 {
                        ext.push_str(&vals[i % vals.len()]);
                    } else {
                        ext.push('"');
                        ext.push_str(&quoted[i % quoted.len()]);
                        ext.push('"');
                    }
                }
            }
        }
        let mut body = format!("{:x}{ext}\r\n", payload.len()).into_bytes();
        body.extend_from_slice(&payload);
        body.extend_from_slice(b"\r\n0\r\n\r\n");
        let dec = decode_chunked(&body, &ChunkedDecodeOptions::strict()).unwrap();
        prop_assert_eq!(&dec.payload, &payload);
        prop_assert_eq!(dec.consumed, body.len());
        prop_assert!(!dec.repaired, "ext {:?} marked repaired", ext);
    }

    /// A chunk-ext whose second member starts with a delimiter instead
    /// of a token is rejected by the strict decoder as an invalid
    /// extension — and the `stop_at_invalid_digit` leniency that ignores
    /// the ext instead always marks the result repaired.
    #[test]
    fn strict_rejects_malformed_chunk_ext_and_leniency_marks_repair(
        name in "[A-Za-z0-9]{1,6}",
        bad in "[;=@,()\\[\\]\"]{1,4}",
        data in proptest::collection::vec(any::<u8>(), 0..20),
    ) {
        let mut body = format!("{:x};{name};{bad}\r\n", data.len()).into_bytes();
        body.extend_from_slice(&data);
        body.extend_from_slice(b"\r\n0\r\n\r\n");
        let err = decode_chunked(&body, &ChunkedDecodeOptions::strict()).unwrap_err();
        prop_assert!(matches!(err, ChunkedError::InvalidExtension(_)), "{err:?}");
        let lenient = ChunkedDecodeOptions {
            stop_at_invalid_digit: true,
            ..ChunkedDecodeOptions::strict()
        };
        let dec = decode_chunked(&body, &lenient).unwrap();
        prop_assert_eq!(&dec.payload, &data);
        prop_assert!(dec.repaired, "ignored malformed ext must be marked repaired");
    }

    /// Encoding is compositional with itself: decoding a multi-chunk
    /// encoding equals decoding the single-chunk encoding of the same
    /// payload.
    #[test]
    fn chunk_width_is_invisible_to_the_payload(
        payload in proptest::collection::vec(any::<u8>(), 1..120),
        w1 in 1usize..30,
        w2 in 1usize..30,
    ) {
        let opts = ChunkedDecodeOptions::strict();
        let a = decode_chunked(&encode_chunked_with(&payload, w1), &opts).unwrap();
        let b = decode_chunked(&encode_chunked_with(&payload, w2), &opts).unwrap();
        prop_assert_eq!(a.payload, b.payload);
    }
}
