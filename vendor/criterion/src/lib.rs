//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the slice of criterion's API the workspace's benches use:
//! `Criterion`, `benchmark_group` / `bench_function` / `bench_with_input`
//! / `sample_size` / `finish`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. It times each routine
//! for a fixed number of iterations and prints mean wall-clock time per
//! iteration — no statistics, plots, or baseline comparison.

use std::fmt;
use std::time::Instant;

/// Number of timed iterations per benchmark (after one warm-up).
const DEFAULT_SAMPLES: usize = 30;

/// Entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), samples: DEFAULT_SAMPLES }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, DEFAULT_SAMPLES, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.samples, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; reporting happens per benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_nanos: f64,
}

impl Bencher {
    /// Times `routine`, running one warm-up pass then `samples` timed passes.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn run_bench<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { samples, mean_nanos: 0.0 };
    f(&mut b);
    println!("{name:<50} {}", format_nanos(b.mean_nanos));
}

fn format_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} us/iter", ns / 1e3)
    } else {
        format!("{ns:>10.0} ns/iter")
    }
}

/// Collects benchmark functions into a runner (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
