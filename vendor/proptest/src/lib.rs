//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! reimplements the slice of proptest's API the workspace uses: the
//! `proptest!` macro, `prop_assert*` / `prop_assume!`, `any::<T>()`,
//! integer-range and regex-string strategies, `prop_map`, and
//! `proptest::collection::vec`. Differences from upstream:
//!
//! * **No shrinking** — a failing case reports its inputs but is not
//!   minimized.
//! * **Deterministic** — case N of test T always sees the same inputs
//!   (seeded from the test path and case index), so failures reproduce
//!   without a persistence file.
//! * **Regex strategies** support the subset the tests use: literals,
//!   escapes (`\r` `\n` `\t` `\\` `\.`), character classes with ranges,
//!   groups, alternation, and the `?` `*` `+` `{m}` `{m,n}` quantifiers.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub use strategy::{Map, Strategy};

pub mod arbitrary;
pub use arbitrary::{any, Arbitrary};

pub mod collection;
pub mod string;

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, seeded from the test path and case index so
    /// every run of the suite sees identical inputs.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform usize in `[min, max]`.
    pub fn in_range(&mut self, min: usize, max: usize) -> usize {
        min + self.below((max - min + 1) as u64) as usize
    }
}

/// Run configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A property failure or rejection (from `prop_assume!`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; the message explains why.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Whether this is an assume-rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => f.write_str("inputs rejected by prop_assume!"),
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                let span = (e as u64).wrapping_sub(s as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                s.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_matching(self, rng)
    }
}

/// The property-test entry macro. Mirrors proptest's surface for the
/// forms the workspace uses (optional `#![proptest_config(..)]`, then
/// `#[test] fn name(pat in strategy, ..) { body }` items).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match result {
                    Ok(()) => {}
                    Err(e) if e.is_rejection() => {}
                    Err(e) => panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    ),
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&($a), &($b));
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&($a), &($b));
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&($a), &($b));
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
