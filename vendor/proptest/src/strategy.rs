//! The `Strategy` trait and combinators.

use crate::TestRng;

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
