//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length.
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.in_range(self.size.min, self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vector strategy over `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
