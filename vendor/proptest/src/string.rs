//! Regex-subset string strategies.
//!
//! Supports the pattern language the workspace's properties use:
//! literals, escapes (`\r` `\n` `\t` `\\` `\.` `\-` `\[` `\]`),
//! character classes with ranges (`[a-z0-9]`, `[ -~\r\n]`), groups,
//! alternation, and the `?` `*` `+` `{m}` `{m,n}` quantifiers.
//! Unbounded quantifiers are capped at 8 repetitions.

use crate::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Inclusive character ranges; single chars are (c, c).
    Class(Vec<(char, char)>),
    /// Alternation of sequences.
    Group(Vec<Vec<(Node, Quant)>>),
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    min: u32,
    max: u32,
}

const ONCE: Quant = Quant { min: 1, max: 1 };

/// Generates a string matching `pattern`. Panics on syntax outside the
/// supported subset — that is a bug in the test, not an input condition.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let alts = parse_alternation(&chars, &mut pos);
    assert!(pos == chars.len(), "unparsed regex trailer in {pattern:?}");
    let mut out = String::new();
    emit_alts(&alts, rng, &mut out);
    out
}

fn emit_alts(alts: &[Vec<(Node, Quant)>], rng: &mut TestRng, out: &mut String) {
    let seq = &alts[rng.below(alts.len() as u64) as usize];
    for (node, quant) in seq {
        let n = quant.min + rng.below(u64::from(quant.max - quant.min) + 1) as u32;
        for _ in 0..n {
            match node {
                Node::Literal(c) => out.push(*c),
                Node::Class(ranges) => {
                    // Weight each range by its width for a uniform draw
                    // over the class's full alphabet.
                    let total: u64 =
                        ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
                    let mut pick = rng.below(total);
                    for (lo, hi) in ranges {
                        let width = (*hi as u64) - (*lo as u64) + 1;
                        if pick < width {
                            out.push(char::from_u32(*lo as u32 + pick as u32).unwrap());
                            break;
                        }
                        pick -= width;
                    }
                }
                Node::Group(inner) => emit_alts(inner, rng, out),
            }
        }
    }
}

fn parse_alternation(chars: &[char], pos: &mut usize) -> Vec<Vec<(Node, Quant)>> {
    let mut alts = vec![parse_sequence(chars, pos)];
    while *pos < chars.len() && chars[*pos] == '|' {
        *pos += 1;
        alts.push(parse_sequence(chars, pos));
    }
    alts
}

fn parse_sequence(chars: &[char], pos: &mut usize) -> Vec<(Node, Quant)> {
    let mut seq = Vec::new();
    while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
        let node = parse_atom(chars, pos);
        let quant = parse_quant(chars, pos);
        seq.push((node, quant));
    }
    seq
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let alts = parse_alternation(chars, pos);
            assert!(*pos < chars.len() && chars[*pos] == ')', "unterminated group");
            *pos += 1;
            Node::Group(alts)
        }
        '[' => {
            *pos += 1;
            let mut ranges = Vec::new();
            while *pos < chars.len() && chars[*pos] != ']' {
                let lo = parse_class_char(chars, pos);
                if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                    *pos += 1;
                    let hi = parse_class_char(chars, pos);
                    assert!(lo <= hi, "inverted class range");
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
            assert!(*pos < chars.len(), "unterminated character class");
            *pos += 1;
            Node::Class(ranges)
        }
        '\\' => {
            *pos += 1;
            let c = escape_value(chars[*pos]);
            *pos += 1;
            Node::Literal(c)
        }
        '.' => {
            *pos += 1;
            // Any printable ASCII stands in for "any char".
            Node::Class(vec![(' ', '~')])
        }
        c => {
            *pos += 1;
            Node::Literal(c)
        }
    }
}

fn parse_class_char(chars: &[char], pos: &mut usize) -> char {
    if chars[*pos] == '\\' {
        *pos += 1;
        let c = escape_value(chars[*pos]);
        *pos += 1;
        c
    } else {
        let c = chars[*pos];
        *pos += 1;
        c
    }
}

fn escape_value(c: char) -> char {
    match c {
        'r' => '\r',
        'n' => '\n',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

fn parse_quant(chars: &[char], pos: &mut usize) -> Quant {
    if *pos >= chars.len() {
        return ONCE;
    }
    match chars[*pos] {
        '?' => {
            *pos += 1;
            Quant { min: 0, max: 1 }
        }
        '*' => {
            *pos += 1;
            Quant { min: 0, max: UNBOUNDED_CAP }
        }
        '+' => {
            *pos += 1;
            Quant { min: 1, max: UNBOUNDED_CAP }
        }
        '{' => {
            *pos += 1;
            let min = parse_number(chars, pos);
            let max = if chars[*pos] == ',' {
                *pos += 1;
                if chars[*pos] == '}' {
                    min + UNBOUNDED_CAP
                } else {
                    parse_number(chars, pos)
                }
            } else {
                min
            };
            assert!(chars[*pos] == '}', "unterminated quantifier");
            *pos += 1;
            Quant { min, max }
        }
        _ => ONCE,
    }
}

fn parse_number(chars: &[char], pos: &mut usize) -> u32 {
    let start = *pos;
    while chars[*pos].is_ascii_digit() {
        *pos += 1;
    }
    chars[start..*pos].iter().collect::<String>().parse().expect("number in quantifier")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, case: u32) -> String {
        let mut rng = TestRng::for_case("string::tests", case);
        generate_matching(pattern, &mut rng)
    }

    #[test]
    fn hostname_pattern() {
        for case in 0..200 {
            let s = gen("[a-z][a-z0-9]{0,10}(\\.[a-z]{2,3})?", case);
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'));
        }
    }

    #[test]
    fn printable_with_crlf() {
        for case in 0..200 {
            let s = gen("[ -~\\r\\n]{0,200}", case);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\r' || c == '\n'));
        }
    }

    #[test]
    fn token_pattern() {
        for case in 0..200 {
            let s = gen("[A-Za-z][A-Za-z0-9-]{0,15}", case);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.len() <= 16);
        }
    }

    #[test]
    fn alternation_and_plus() {
        for case in 0..50 {
            let s = gen("(ab|cd)+", case);
            assert!(!s.is_empty() && s.len() % 2 == 0);
        }
    }

    #[test]
    fn deterministic_per_case() {
        assert_eq!(gen("[a-z]{8}", 7), gen("[a-z]{8}", 7));
    }
}
