//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this vendored crate
//! implements the slice of the rand 0.8 API the workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges,
//! `Rng::gen_bool`, and `Rng::gen` — on top of a SplitMix64 core. The
//! generator is fully deterministic per seed, which is all HDiff requires
//! (the paper's pipeline is reproducible per seed); the stream does NOT
//! match upstream `StdRng`, so regenerated corpora differ from runs made
//! with the published crate.

/// Core RNG abstraction: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable construction (the only constructor HDiff uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, mirroring upstream rand.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` without modulo bias worth caring about
/// for test-generation purposes (bounds here are tiny next to 2^64).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    rng.next_u64() % bound
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// The user-facing convenience trait (rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // 53-bit resolution, plenty for test-case generation.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014). Small, fast, passes
            // BigCrush; determinism is what matters here.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u8 = r.gen_range(0x21..=0x7e);
            assert!((0x21..=0x7e).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).map(|_| r.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| r.gen_bool(1.0)).all(|b| b));
    }
}
