//! Offline stand-in for serde's derive macros.
//!
//! The build environment has no registry access, so the workspace vendors
//! a serde facade (see `vendor/serde`). Nothing in this repository
//! serializes through serde's data model — persistence uses the explicit
//! JSON codec in `hdiff-diff` — so the derives only need to make
//! `#[derive(serde::Serialize, serde::Deserialize)]` compile. They expand
//! to marker-trait impls for the annotated type.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier of the type a derive is attached to, skipping
/// attributes, doc comments, visibility and the struct/enum keyword.
/// Returns the ident plus the generics parameter names (if any).
fn type_ident(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the following attribute group.
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    if let Some(TokenTree::Ident(name)) = iter.next() {
                        let mut generics = Vec::new();
                        if let Some(TokenTree::Punct(p)) = iter.peek() {
                            if p.as_char() == '<' {
                                let _ = iter.next();
                                let mut depth = 1usize;
                                let mut expect_param = true;
                                let mut lifetime = false;
                                for tt in iter.by_ref() {
                                    match tt {
                                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                                        TokenTree::Punct(p) if p.as_char() == '>' => {
                                            depth -= 1;
                                            if depth == 0 {
                                                break;
                                            }
                                        }
                                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                                            expect_param = true;
                                            lifetime = false;
                                        }
                                        TokenTree::Punct(p)
                                            if p.as_char() == '\'' && depth == 1 =>
                                        {
                                            lifetime = true;
                                        }
                                        TokenTree::Ident(g) if depth == 1 && expect_param => {
                                            let gs = g.to_string();
                                            if gs != "const" {
                                                generics.push(if lifetime {
                                                    format!("'{gs}")
                                                } else {
                                                    gs
                                                });
                                            }
                                            expect_param = false;
                                            lifetime = false;
                                        }
                                        _ => {}
                                    }
                                }
                            }
                        }
                        return Some((name.to_string(), generics));
                    }
                    return None;
                }
                // `pub`, `pub(crate)` etc. — keep scanning.
            }
            _ => {}
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str, lifetime: bool) -> TokenStream {
    let Some((name, generics)) = type_ident(input) else {
        return TokenStream::new();
    };
    let mut params: Vec<String> = Vec::new();
    if lifetime {
        params.push("'de".to_string());
    }
    params.extend(generics.iter().cloned());
    let impl_params =
        if params.is_empty() { String::new() } else { format!("<{}>", params.join(", ")) };
    let ty_params =
        if generics.is_empty() { String::new() } else { format!("<{}>", generics.join(", ")) };
    let trait_args = if lifetime { "<'de>" } else { "" };
    let out = format!("impl{impl_params} {trait_path}{trait_args} for {name}{ty_params} {{}}");
    out.parse().unwrap_or_default()
}

/// No-op `Serialize` derive: emits a marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize", false)
}

/// No-op `Deserialize` derive: emits a marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize", true)
}
