//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides just enough surface for `#[derive(serde::Serialize,
//! serde::Deserialize)]` to compile: two marker traits and the no-op
//! derive macros from `vendor/serde_derive`. Nothing in the workspace
//! drives serde's data model — on-disk persistence (campaign checkpoints)
//! goes through the explicit JSON codec in `hdiff-diff::checkpoint`.
//!
//! If real serialization through serde is ever needed, replace this
//! directory with the published crate and delete nothing else: the trait
//! names and derive spellings are identical.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
