//! HDiff — semi-automatic discovery of semantic gap attacks in HTTP
//! implementations.
//!
//! This crate is the facade over the HDiff workspace. It re-exports the
//! orchestration API from [`hdiff_core`] and the individual subsystem crates
//! for users who need lower-level access.
//!
//! See the repository `README.md` for the architecture overview and
//! `DESIGN.md` for the system inventory.

pub use hdiff_core::*;

pub use hdiff_abnf as abnf;
pub use hdiff_analyzer as analyzer;
pub use hdiff_cookie as cookie;
pub use hdiff_corpus as corpus;
pub use hdiff_diff as diff;
pub use hdiff_fleet as fleet;
pub use hdiff_fuzz as fuzz;
pub use hdiff_gen as gen;
pub use hdiff_h2 as h2;
pub use hdiff_net as net;
pub use hdiff_obs as obs;
pub use hdiff_servers as servers;
pub use hdiff_sr as sr;
pub use hdiff_wire as wire;
