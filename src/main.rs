//! `hdiff` — command-line front end for the HDiff pipeline.
//!
//! ```text
//! hdiff run [--quick]        full pipeline: stats, Table I, Figure 7
//! hdiff stats                corpus/extraction statistics (§IV-B)
//! hdiff table1               Table I verdict matrix
//! hdiff table2               Table II attack-vector inventory
//! hdiff figure7              Figure 7 pair grids
//! hdiff findings [--csv]     every finding (text or CSV)
//! hdiff probe <file>         interpret a raw request file under all ten
//!                            product models and the strict baseline
//! hdiff probe <host:port>    send a catalog vector to a live server and
//!                            pretty-print the raw response
//! hdiff replay [--all] <p>   re-execute recorded replay bundles and diff
//!                            verdicts + behavior digests
//! hdiff golden regen <dir>   rebuild the minimized golden bundle corpus
//! hdiff run --frontend h2    downgrade-desync campaign: h2 seed vectors
//!                            through the downgrade front ends
//! hdiff run --protocol cookie  RFC 6265 cookie workload through the
//!                            generic protocol campaign driver
//! hdiff probe --frontend h2 <host:port>   sweep the h2 seed corpus
//!                            against a live h2c endpoint
//! hdiff golden regen-h2 <dir> rebuild the golden h2 downgrade bundles
//! hdiff run --shards N       run the campaign through the crash-tolerant
//!                            sharded fleet (supervisor + N workers)
//! hdiff worker ...           internal: one shard of a fleet campaign
//! ```

use std::path::Path;
use std::process::ExitCode;

use hdiff::report;
use hdiff::{HDiff, HdiffConfig};

/// Reads the value of a `--flag N` pair, reporting parse failures.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("{flag} needs a value"));
    };
    raw.parse::<T>().map(Some).map_err(|_| format!("{flag}: invalid value {raw:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("run");
    let quick = args.iter().any(|a| a == "--quick");
    let mut config = if quick { HdiffConfig::quick() } else { HdiffConfig::full() };
    match flag_value::<usize>(&args, "--threads") {
        Ok(Some(n)) => config.threads = n,
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    match flag_value::<u8>(&args, "--fault-rate") {
        Ok(Some(pct)) if pct <= 100 => config.fault_rate = pct,
        Ok(Some(pct)) => {
            eprintln!("--fault-rate: {pct} is not a percentage");
            return ExitCode::FAILURE;
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if args.iter().any(|a| a == "--coverage-guided") {
        config.coverage_guided = true;
    }
    let transport = match flag_value::<String>(&args, "--transport") {
        Ok(Some(raw)) => match hdiff::diff::Transport::parse(&raw) {
            Some(t) => Some(t),
            None => {
                eprintln!("--transport: unknown transport {raw:?} (expected: sim, tcp, tcp-async)");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => None,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(t) = transport {
        config.transport = t;
    }
    let frontend = match flag_value::<String>(&args, "--frontend") {
        Ok(Some(raw)) => match hdiff::diff::Frontend::parse(&raw) {
            Some(f) => Some(f),
            None => {
                eprintln!("--frontend: unknown frontend {raw:?} (expected: h1, h2)");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => None,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(f) = frontend {
        config.frontend = f;
    }
    match flag_value::<String>(&args, "--protocol") {
        Ok(Some(name)) => {
            if name != "http" && protocol_by_name(&name).is_none() {
                eprintln!("--protocol: unknown workload {name:?} (expected: http, cookie)");
                return ExitCode::FAILURE;
            }
            config.protocol = name;
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if config.protocol != "http" && config.frontend == hdiff::diff::Frontend::H2 {
        eprintln!("--protocol {} does not combine with --frontend h2", config.protocol);
        return ExitCode::FAILURE;
    }
    if args.iter().any(|a| a == "--no-telemetry") {
        config.telemetry = false;
    }
    match flag_value::<u32>(&args, "--shards") {
        Ok(Some(n)) => config.shards = n,
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    match flag_value::<u8>(&args, "--fleet-chaos") {
        Ok(Some(pct)) if pct <= 100 => config.fleet_chaos = pct,
        Ok(Some(pct)) => {
            eprintln!("--fleet-chaos: {pct} is not a percentage");
            return ExitCode::FAILURE;
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    match flag_value::<usize>(&args, "--checkpoint-every") {
        Ok(Some(n)) if n > 0 => config.checkpoint_every = n,
        Ok(Some(_)) => {
            eprintln!("--checkpoint-every: must be at least 1");
            return ExitCode::FAILURE;
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let (trace_out, summary_out, fleet_dir) = match (
        flag_value::<String>(&args, "--trace-out"),
        flag_value::<String>(&args, "--summary-out"),
        flag_value::<String>(&args, "--fleet-dir"),
    ) {
        (Ok(t), Ok(s), Ok(d)) => (t, s, d),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let sinks = TelemetrySinks { trace_out, summary_out, fleet_dir };

    match command {
        "worker" => run_worker_cli(&args),
        "run" if config.frontend == hdiff::diff::Frontend::H2 => run_downgrade_cli(&args, &config),
        "run" if config.protocol != "http" => run_protocol_cli(&args, &config),
        "run" => {
            let r = run_pipeline(config, &sinks);
            println!("{}", report::render_stats(&r));
            println!("{}", report::render_table1(&r.summary));
            println!("{}", report::render_figure7(&r.summary));
            println!("{}", report::render_resilience(&r.summary));
            ExitCode::SUCCESS
        }
        "stats" => {
            let r = run_pipeline(config, &sinks);
            println!("{}", report::render_stats(&r));
            ExitCode::SUCCESS
        }
        "table1" => {
            let r = run_pipeline(config, &sinks);
            println!("{}", report::render_table1(&r.summary));
            println!("{}", report::render_sr_violations(&r.summary));
            ExitCode::SUCCESS
        }
        "table2" => {
            let r = run_pipeline(config, &sinks);
            println!("{}", report::render_table2(&r.summary));
            ExitCode::SUCCESS
        }
        "figure7" => {
            let r = run_pipeline(config, &sinks);
            println!("{}", report::render_figure7(&r.summary));
            ExitCode::SUCCESS
        }
        "exploits" => {
            let r = run_pipeline(config, &sinks);
            println!("{}", report::render_exploits(&r, 20));
            ExitCode::SUCCESS
        }
        "report" => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with('-')) else {
                eprintln!("usage: hdiff report <summary.json | trace.jsonl>");
                return ExitCode::FAILURE;
            };
            match hdiff::diff::load_report(Path::new(path)) {
                Ok(input) => {
                    println!("{}", hdiff::obs::render_report(&input));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot report on {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "findings" => {
            let r = run_pipeline(config, &sinks);
            if args.iter().any(|a| a == "--csv") {
                print!("{}", report::render_findings_csv(&r.summary));
            } else {
                for f in &r.summary.findings {
                    println!("{f}");
                }
            }
            ExitCode::SUCCESS
        }
        "probe" => {
            let Some(target) = args
                .iter()
                .enumerate()
                .skip(1)
                .find(|(i, a)| !a.starts_with('-') && args[i - 1] != "--frontend")
                .map(|(_, a)| a)
            else {
                eprintln!("usage: hdiff probe [--frontend h2] <raw-request-file | host:port>");
                return ExitCode::FAILURE;
            };
            if config.frontend == hdiff::diff::Frontend::H2 {
                if Path::new(target).exists() || !target.contains(':') {
                    eprintln!("--frontend h2 probes a live host:port (h2c prior knowledge)");
                    return ExitCode::FAILURE;
                }
                return probe_live_h2(target);
            }
            if !Path::new(target).exists() && target.contains(':') {
                return probe_live(target);
            }
            match std::fs::read(target) {
                Ok(bytes) => {
                    probe(&bytes);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot read {target}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "fuzz" => run_fuzz_cli(&args, transport),
        "replay" => {
            let Some(path) = args
                .iter()
                .enumerate()
                .skip(1)
                .find(|(i, a)| !a.starts_with('-') && args[i - 1] != "--transport")
                .map(|(_, a)| a)
            else {
                eprintln!(
                    "usage: hdiff replay [--all] [--transport sim|tcp|tcp-async] <bundle.json | directory>"
                );
                return ExitCode::FAILURE;
            };
            replay(Path::new(path), transport)
        }
        "golden" => {
            let (Some(sub), Some(dir)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: hdiff golden <regen | regen-h2> <directory>");
                return ExitCode::FAILURE;
            };
            match sub.as_str() {
                "regen" => golden_regen(Path::new(dir)),
                "regen-h2" => golden_regen_h2(Path::new(dir)),
                _ => {
                    eprintln!("unknown golden subcommand {sub:?} (expected: regen, regen-h2)");
                    ExitCode::FAILURE
                }
            }
        }
        "--help" | "-h" | "help" => {
            print_help();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}");
            print_help();
            ExitCode::FAILURE
        }
    }
}

/// Where campaign telemetry goes besides the summary itself, plus the
/// fleet working directory when one was requested.
struct TelemetrySinks {
    trace_out: Option<String>,
    summary_out: Option<String>,
    fleet_dir: Option<String>,
}

/// Runs the pipeline honoring the telemetry sinks: `--trace-out` turns on
/// raw event capture and writes the replay-stable JSONL event log;
/// `--summary-out` writes the machine-readable campaign summary. With
/// `--shards N` (N > 0) the campaign runs through the sharded fleet
/// fabric instead of in-process.
fn run_pipeline(config: HdiffConfig, sinks: &TelemetrySinks) -> hdiff::PipelineReport {
    if sinks.trace_out.is_some() {
        hdiff::obs::set_trace(true);
    }
    let r = if config.shards > 0 {
        let mut fleet = match &sinks.fleet_dir {
            Some(dir) => {
                let mut f = hdiff::fleet::FleetConfig::new(config.shards, dir);
                f.keep_dir = true;
                f
            }
            None => hdiff::fleet::FleetConfig::new(
                config.shards,
                std::env::temp_dir().join(format!("hdiff-fleet-{}", std::process::id())),
            ),
        };
        fleet.chaos_rate = config.fleet_chaos;
        match hdiff::fleet::run_fleet(&config, &fleet) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fleet campaign failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        HDiff::new(config).run()
    };
    if let Some(path) = &sinks.summary_out {
        match hdiff::diff::write_summary(Path::new(path), &r.summary) {
            Ok(()) => eprintln!("summary written to {path}"),
            Err(e) => eprintln!("cannot write summary to {path}: {e}"),
        }
    }
    if let Some(path) = &sinks.trace_out {
        match hdiff::diff::write_trace(Path::new(path), &r.summary.telemetry.merged) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => eprintln!("cannot write trace to {path}: {e}"),
        }
    }
    r
}

fn print_help() {
    println!(
        "hdiff — semantic gap attack discovery (DSN 2022 reproduction)\n\n\
         options (any command):\n\
         \x20 --quick          small corpus for fast runs\n\
         \x20 --threads N      worker threads (0 = one per core)\n\
         \x20 --fault-rate N   inject faults into N% of hop decisions\n\
         \x20 --transport T    run cases over `sim` (in-process, default),\n\
         \x20                  `tcp` (blocking loopback sockets), or\n\
         \x20                  `tcp-async` (multiplexed event-loop sockets\n\
         \x20                  with pooled keep-alive connections)\n\
         \x20 --frontend F     campaign client protocol: `h1` (default) or\n\
         \x20                  `h2` (HTTP/2 into the downgrade front ends)\n\
         \x20 --protocol P     campaign workload: `http` (default, the full\n\
         \x20                  pipeline) or `cookie` (RFC 6265 profiles\n\
         \x20                  through the generic protocol driver)\n\
         \x20 --no-telemetry   skip span/counter/histogram collection\n\
         \x20 --summary-out F  write the machine-readable summary JSON to F\n\
         \x20 --trace-out F    record raw events, write JSONL trace to F\n\n\
         commands:\n\
         \x20 run [--quick]    full pipeline: stats, Table I, Figure 7\n\
         \x20 stats            corpus/extraction statistics\n\
         \x20 table1           Table I verdict matrix\n\
         \x20 table2           Table II attack-vector inventory\n\
         \x20 figure7          Figure 7 pair grids\n\
         \x20 findings [--csv] list every finding\n\
         \x20 report <path>    profile a recorded summary JSON or JSONL trace\n\
         \x20 exploits         exploit write-ups with payloads\n\
         \x20 probe <file>     interpret a raw request under all products\n\
         \x20 probe <host:port>   send a catalog vector to a live server\n\
         \x20 probe --frontend h2 <host:port>  sweep the h2 downgrade seed\n\
         \x20                  corpus against a live h2c endpoint\n\
         \x20 replay [--all] <p>  re-execute replay bundle(s), diff verdicts\n\
         \x20 golden regen <dir>  rebuild the minimized golden corpus\n\
         \x20 golden regen-h2 <dir>  rebuild the golden h2 downgrade bundles\n\
         \x20 run --frontend h2   downgrade-desync campaign over the h2 seed\n\
         \x20                  vectors [--promote-dir D] [--min-classes N]\n\
         \x20 run --protocol cookie  cookie workload campaign over the RFC\n\
         \x20                  6265 profile matrix [--promote-dir D]\n\
         \x20                  [--min-classes N]\n\
         \x20 fuzz [...]       coverage-guided fuzzing over connection streams:\n\
         \x20                  [--seconds N | --iters N] [--seed S]\n\
         \x20                  [--promote-dir D] [--seed-corpus D] [--min-novel N]\n\n\
         generation options:\n\
         \x20 --coverage-guided  bias ABNF generation toward cold alternations\n\n\
         fleet options (sharded multi-process campaigns):\n\
         \x20 --shards N           run the campaign as N worker processes\n\
         \x20                      (0 = in-process, the default)\n\
         \x20 --fleet-chaos N      SIGKILL N% of worker incarnations on a\n\
         \x20                      deterministic schedule (recovery drill)\n\
         \x20 --fleet-dir D        keep shard checkpoints under D\n\
         \x20 --checkpoint-every N cases per shard checkpoint (default 64)"
    );
}

/// Replays one bundle file or every `*.json` bundle in a directory;
/// fails when any replay drifts from its recorded verdicts or digests.
/// A `--transport` override re-executes recorded bundles over that
/// transport instead of the one they were recorded with.
fn replay(path: &Path, transport: Option<hdiff::diff::Transport>) -> ExitCode {
    use hdiff::diff::{ReplayBundle, Workflow};

    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    let mut paths: Vec<std::path::PathBuf> = if path.is_dir() {
        match std::fs::read_dir(path) {
            Ok(entries) => entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "json"))
                .collect(),
            Err(e) => {
                eprintln!("cannot replay {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        vec![path.to_path_buf()]
    };
    paths.sort();
    let mut reports: Vec<(std::path::PathBuf, hdiff::diff::ReplayReport)> = Vec::new();
    for p in paths {
        match ReplayBundle::load(&p) {
            Ok(mut bundle) => {
                // Protocol-keyed bundles route back to the workload that
                // recorded them; classic bundles replay through the h1/h2
                // machinery (honoring a --transport override).
                let report = if let Some(name) = bundle.protocol.clone() {
                    match protocol_by_name(&name) {
                        Some(proto) => bundle.replay_protocol(proto.as_ref()),
                        None => {
                            eprintln!(
                                "cannot replay {}: unknown protocol workload {name:?}",
                                p.display()
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    if let Some(t) = transport {
                        bundle.transport = t;
                    }
                    bundle.replay(&workflow, &profiles, None)
                };
                reports.push((p, report));
            }
            Err(e) => {
                eprintln!("cannot load {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if reports.is_empty() {
        eprintln!("no replay bundles found in {}", path.display());
        return ExitCode::FAILURE;
    }
    let mut failed = 0usize;
    for (p, report) in &reports {
        println!("{}  [{}]", report.summary(), p.display());
        if !report.passed() {
            failed += 1;
            for f in &report.missing {
                println!("  missing    : {f}");
            }
            for f in &report.unexpected {
                println!("  unexpected : {f}");
            }
        }
    }
    println!("{} bundle(s), {} failed", reports.len(), failed);
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `hdiff fuzz` — coverage-guided differential fuzzing over connection
/// streams. Runs a deterministic seeded session, prints the session
/// stats and every promoted divergence, then renders the telemetry
/// report. With `--min-novel N`, exits nonzero unless at least N novel
/// behavior-digest views were observed (the CI smoke gate).
fn run_fuzz_cli(args: &[String], transport: Option<hdiff::diff::Transport>) -> ExitCode {
    use hdiff::fuzz::{FuzzBudget, FuzzEngine, FuzzOptions};

    let parse = || -> Result<(FuzzOptions, u64), String> {
        let mut opts = FuzzOptions::default();
        if let Some(seed) = flag_value::<u64>(args, "--seed")? {
            opts.seed = seed;
        }
        match (flag_value::<u64>(args, "--seconds")?, flag_value::<u64>(args, "--iters")?) {
            (Some(_), Some(_)) => return Err("--seconds and --iters are exclusive".to_string()),
            (Some(s), None) => opts.budget = FuzzBudget::Seconds(s),
            (None, Some(n)) => opts.budget = FuzzBudget::Iters(n),
            (None, None) => {}
        }
        if let Some(n) = flag_value::<usize>(args, "--threads")? {
            opts.threads = n;
        }
        if let Some(t) = transport {
            opts.transport = t;
        }
        if let Some(dir) = flag_value::<String>(args, "--promote-dir")? {
            opts.promote_dir = Some(dir.into());
        }
        if let Some(dir) = flag_value::<String>(args, "--seed-corpus")? {
            if !std::path::Path::new(&dir).is_dir() {
                return Err(format!("--seed-corpus: not a directory: {dir}"));
            }
            opts.seed_corpus = Some(dir.into());
        }
        let min_novel = flag_value::<u64>(args, "--min-novel")?.unwrap_or(0);
        Ok((opts, min_novel))
    };
    let (opts, min_novel) = match parse() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: hdiff fuzz [--seconds N | --iters N] [--seed S] [--threads N] \
                 [--transport sim|tcp|tcp-async] [--promote-dir D] [--seed-corpus D] \
                 [--min-novel N]"
            );
            return ExitCode::FAILURE;
        }
    };
    let engine = FuzzEngine::standard(opts);
    let r = engine.run();
    println!("{}", r.render());
    println!(
        "{}",
        hdiff::obs::render_report(&hdiff::obs::ReportInput {
            title: format!("fuzz session (seed {})", engine.options().seed),
            telemetry: r.telemetry.clone(),
            slowest: Vec::new(),
            top_n: 10,
        })
    );
    if r.novel_digest_views < min_novel {
        eprintln!(
            "fuzz: only {} novel behavior-digest view(s), expected at least {min_novel}",
            r.novel_digest_views
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `hdiff run --frontend h2` — the downgrade-desync campaign: every h2
/// seed vector is encoded as an h2c client connection, translated to
/// HTTP/1.1 by the three front-end profiles, and the reconstructed
/// bytes re-interpreted by the backend matrix. `--transport tcp` serves
/// the fronts over loopback sockets instead of in-process (the
/// translation must stay byte-identical). With `--min-classes N`, exits
/// nonzero unless at least N distinct downgrade classes were detected
/// (the CI gate).
fn run_downgrade_cli(args: &[String], config: &HdiffConfig) -> ExitCode {
    use hdiff::diff::{run_downgrade_campaign, DowngradeCampaignOptions, Transport};

    let (promote_dir, min_classes) = match (
        flag_value::<String>(args, "--promote-dir"),
        flag_value::<usize>(args, "--min-classes"),
    ) {
        (Ok(d), Ok(m)) => (d, m.unwrap_or(0)),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let tcp = match config.transport {
        Transport::Sim => false,
        Transport::Tcp => true,
        Transport::TcpAsync => {
            eprintln!("--frontend h2 runs over --transport sim or tcp");
            return ExitCode::FAILURE;
        }
    };
    let opts = DowngradeCampaignOptions {
        threads: config.threads,
        tcp,
        promote_dir: promote_dir.map(Into::into),
    };
    let summary = match run_downgrade_campaign(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("downgrade campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "== downgrade campaign (h2 front ends, {} transport) ==",
        if tcp { "tcp" } else { "sim" }
    );
    println!("cases    : {}", summary.cases);
    println!("findings : {}", summary.findings.len());
    for f in &summary.findings {
        println!("  {f}");
    }
    println!("classes  : {} ({})", summary.classes.len(), summary.classes.join(", "));
    for p in &summary.promoted {
        println!("promoted : {}", p.display());
    }
    if summary.classes.len() < min_classes {
        eprintln!(
            "downgrade campaign detected {} class(es), expected at least {min_classes}",
            summary.classes.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Resolves a named [`hdiff::diff::Protocol`] workload. `"http"` is not
/// listed here: it runs through the full bespoke pipeline (analyzer,
/// generator, fault campaign), not the generic driver.
fn protocol_by_name(name: &str) -> Option<Box<dyn hdiff::diff::Protocol>> {
    match name {
        "cookie" => Some(Box::new(hdiff::cookie::CookieProtocol::standard())),
        _ => None,
    }
}

/// `hdiff run --protocol <name>` — a protocol workload campaign through
/// the generic driver: the workload's seed corpus fans out over its
/// behavioral profile matrix, findings merge deterministically, and with
/// `--promote-dir` the first finding of each divergence class is
/// minimized and frozen as a protocol-keyed replay bundle. With
/// `--min-classes N`, exits nonzero unless at least N distinct classes
/// were detected (the CI gate).
fn run_protocol_cli(args: &[String], config: &HdiffConfig) -> ExitCode {
    use hdiff::diff::{run_protocol_campaign, ProtocolCampaignOptions, Transport};

    let (promote_dir, min_classes) = match (
        flag_value::<String>(args, "--promote-dir"),
        flag_value::<usize>(args, "--min-classes"),
    ) {
        (Ok(d), Ok(m)) => (d, m.unwrap_or(0)),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if config.transport != Transport::Sim {
        eprintln!("--protocol {} runs over --transport sim", config.protocol);
        return ExitCode::FAILURE;
    }
    let Some(protocol) = protocol_by_name(&config.protocol) else {
        eprintln!("unknown protocol workload {:?}", config.protocol);
        return ExitCode::FAILURE;
    };
    let opts = ProtocolCampaignOptions {
        threads: config.threads,
        promote_dir: promote_dir.map(Into::into),
    };
    let summary = match run_protocol_campaign(protocol.as_ref(), &opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{} campaign failed: {e}", config.protocol);
            return ExitCode::FAILURE;
        }
    };
    println!("== {} campaign (generic protocol driver, sim transport) ==", summary.protocol);
    println!("cases    : {}", summary.cases);
    println!("findings : {}", summary.findings.len());
    for f in &summary.findings {
        println!("  {f}");
    }
    println!("classes  : {} ({})", summary.classes.len(), summary.classes.join(", "));
    for p in &summary.promoted {
        println!("promoted : {}", p.display());
    }
    if summary.classes.len() < min_classes {
        eprintln!(
            "{} campaign detected {} class(es), expected at least {min_classes}",
            summary.protocol,
            summary.classes.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Regenerates the golden replay corpus from the Table II catalog.
fn golden_regen(dir: &Path) -> ExitCode {
    use hdiff::diff::{replay::regen_golden, Workflow};

    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    match regen_golden(dir, &workflow, &profiles) {
        Ok(paths) => {
            for p in &paths {
                println!("wrote {}", p.display());
            }
            println!("{} bundle(s) regenerated", paths.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("golden regen failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Regenerates the golden h2 downgrade bundle corpus (the promoted
/// output of a deterministic single-threaded sim campaign).
fn golden_regen_h2(dir: &Path) -> ExitCode {
    match hdiff::diff::regen_h2_golden(dir) {
        Ok(paths) => {
            for p in &paths {
                println!("wrote {}", p.display());
            }
            println!("{} bundle(s) regenerated", paths.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("golden regen-h2 failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `hdiff worker` — one shard of a fleet campaign (spawned by the
/// supervisor; see `hdiff run --shards N`).
fn run_worker_cli(args: &[String]) -> ExitCode {
    use std::time::Duration;

    let parse = || -> Result<hdiff::fleet::WorkerOptions, String> {
        let shard_arg = flag_value::<String>(args, "--shard")?
            .ok_or_else(|| "--shard is required".to_string())?;
        let shard = hdiff::diff::ShardSpec::parse(&shard_arg)
            .ok_or_else(|| format!("--shard: invalid spec {shard_arg:?}"))?;
        let checkpoint = flag_value::<String>(args, "--checkpoint")?
            .ok_or_else(|| "--checkpoint is required".to_string())?;
        let config_path = flag_value::<String>(args, "--config")?
            .ok_or_else(|| "--config is required".to_string())?;
        let bytes =
            std::fs::read(&config_path).map_err(|e| format!("cannot read {config_path}: {e}"))?;
        let config = HdiffConfig::from_json(&bytes).map_err(|e| format!("{config_path}: {e}"))?;
        Ok(hdiff::fleet::WorkerOptions {
            shard,
            checkpoint: checkpoint.into(),
            config,
            corpus: flag_value::<String>(args, "--corpus")?.map(Into::into),
            min_generation: flag_value::<u64>(args, "--min-generation")?.unwrap_or(0),
            alive_interval: Duration::from_millis(
                flag_value::<u64>(args, "--alive-interval-ms")?.unwrap_or(1000),
            ),
            chaos_pause: Duration::from_millis(
                flag_value::<u64>(args, "--chaos-pause-ms")?.unwrap_or(0),
            ),
            stall: args.iter().any(|a| a == "--stall"),
        })
    };
    let opts = match parse() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: hdiff worker --shard i/k:start..end --checkpoint F --config F \
                 [--corpus F] [--min-generation G] [--alive-interval-ms N]"
            );
            return ExitCode::FAILURE;
        }
    };
    let shard = opts.shard;
    match hdiff::fleet::run_worker(opts) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hdiff worker {shard}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `hdiff probe <host:port>` exit code: the TCP connection never opened.
const PROBE_EXIT_CONNECT: u8 = 2;
/// `hdiff probe <host:port>` exit code: the server accepted but the read
/// timed out with nothing arriving.
const PROBE_EXIT_TIMEOUT: u8 = 3;
/// `hdiff probe <host:port>` exit code: the live server's response status
/// class diverges from the RFC-strict baseline's interpretation.
const PROBE_EXIT_DIVERGENCE: u8 = 4;

/// Repetitions per catalog vector in the live-probe sweep — enough for
/// stable p50/p99 quantiles without hammering the target.
const PROBE_REPS: usize = 8;

/// Sweeps the entire Table II catalog against a live `host:port`,
/// reusing one pooled keep-alive connection across vectors (reconnecting
/// only when the server closes it), and reports per-vector RTT p50/p99
/// plus agreement with the RFC-strict baseline's interpretation.
/// Transient connect failures are retried with backoff; terminal
/// outcomes map to distinct exit codes so scripts can branch: 0 = every
/// answered vector agrees with the strict baseline,
/// [`PROBE_EXIT_CONNECT`], [`PROBE_EXIT_TIMEOUT`],
/// [`PROBE_EXIT_DIVERGENCE`].
fn probe_live(target: &str) -> ExitCode {
    use hdiff::net::{io_timeout, ConnPool, NetClientConfig};
    use std::io::ErrorKind;
    use std::net::ToSocketAddrs;
    use std::time::Instant;

    const RETRIES: u32 = 3;

    let addr = match target.to_socket_addrs().map(|mut a| a.next()) {
        Ok(Some(addr)) => addr,
        _ => {
            eprintln!("cannot resolve {target}");
            return ExitCode::from(PROBE_EXIT_CONNECT);
        }
    };
    let catalog = hdiff::gen::catalog::catalog();
    if catalog.is_empty() {
        eprintln!("catalog is empty");
        return ExitCode::FAILURE;
    }
    // One pooled keep-alive connection serves the whole sweep; a vector
    // the server answers slowly (or not at all) costs one quarter of the
    // shared timeout instead of the full 500ms default.
    let config = NetClientConfig { read_timeout: io_timeout() / 4, ..NetClientConfig::default() };
    let mut pool = ConnPool::with_config(addr, 1, config);

    // Fail fast (with retries) if the target is not accepting at all.
    let mut attempt = 0u32;
    loop {
        match pool.request(b"GET / HTTP/1.1\r\nHost: probe\r\n\r\n") {
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::ConnectionRefused && attempt < RETRIES => {
                attempt += 1;
                let backoff = io_timeout() / 4 * (1 << attempt);
                eprintln!("attempt {attempt} failed ({e}); retrying in {backoff:?}");
                std::thread::sleep(backoff);
            }
            Err(e) if e.kind() == ErrorKind::ConnectionRefused => {
                eprintln!("cannot connect to {target} after {attempt} retries: {e}");
                return ExitCode::from(PROBE_EXIT_CONNECT);
            }
            // Reachable but not speaking framed HTTP to the warmup probe:
            // the sweep itself will classify each vector.
            Err(_) => break,
        }
    }

    println!("probing {target}: full catalog sweep, {PROBE_REPS} reps/vector over one keep-alive connection\n");
    println!("{:<26} {:<6} {:>9} {:>9} {:<8} verdict", "vector", "reps", "p50", "p99", "status");
    let mut divergences = 0usize;
    let mut answered = 0usize;
    let mut silent = 0usize;
    for entry in &catalog {
        for (idx, (request, _note)) in entry.requests.iter().enumerate() {
            let bytes = request.to_bytes();
            let label = if entry.requests.len() == 1 {
                entry.id.to_string()
            } else {
                format!("{}#{}", entry.id, idx)
            };
            let mut rtts_ns: Vec<u64> = Vec::with_capacity(PROBE_REPS);
            let mut last_status: Option<u16> = None;
            for _ in 0..PROBE_REPS {
                let started = Instant::now();
                match pool.request(&bytes) {
                    Ok(parsed) => {
                        rtts_ns
                            .push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                        last_status = Some(parsed.status.as_u16());
                    }
                    // No framed answer (timeout, close, garbage): one
                    // attempt is the observation; repeating would spend
                    // the timeout budget seven more times for nothing.
                    Err(_) => break,
                }
            }
            let baseline = hdiff::servers::interpret(
                &hdiff::servers::ParserProfile::strict("baseline"),
                &bytes,
            );
            let expected = baseline.outcome.status();
            let verdict = match last_status {
                Some(live) if live / 100 == expected / 100 => {
                    answered += 1;
                    "agrees".to_string()
                }
                Some(_) => {
                    answered += 1;
                    divergences += 1;
                    format!("DIVERGES (baseline {expected})")
                }
                None => {
                    silent += 1;
                    "no framed response".to_string()
                }
            };
            println!(
                "{:<26} {:<6} {:>9} {:>9} {:<8} {}",
                label,
                rtts_ns.len(),
                quantile_ms(&mut rtts_ns, 50),
                quantile_ms(&mut rtts_ns, 99),
                last_status.map_or_else(|| "-".to_string(), |s| s.to_string()),
                verdict,
            );
        }
    }
    let stats = pool.stats();
    println!(
        "\n{} vectors answered, {} silent, {} divergent; pool: {} reuse hits, {} connects, {} evictions",
        answered, silent, divergences, stats.hits, stats.misses, stats.evictions
    );
    if divergences > 0 {
        ExitCode::from(PROBE_EXIT_DIVERGENCE)
    } else if answered == 0 {
        eprintln!("no vector produced a framed response before the timeout");
        ExitCode::from(PROBE_EXIT_TIMEOUT)
    } else {
        ExitCode::SUCCESS
    }
}

/// Sweeps the h2 downgrade seed corpus against a live cleartext HTTP/2
/// (prior knowledge) endpoint: each vector is one client connection
/// (write, FIN, read to EOF), and the per-stream response statuses are
/// compared — by status class — against what each modeled front-end
/// profile predicts (200 echo when the request downgrades, the reject
/// status otherwise). A target whose behavior matches no modeled front
/// on some vector is a divergence. Exit codes mirror the h1 probe:
/// 0 = every answered vector matches at least one front,
/// [`PROBE_EXIT_CONNECT`], [`PROBE_EXIT_TIMEOUT`],
/// [`PROBE_EXIT_DIVERGENCE`].
fn probe_live_h2(target: &str) -> ExitCode {
    use hdiff::h2::{encode_client_connection, parse_server_connection, EncodeOptions};
    use hdiff::net::io_timeout;
    use std::io::{Read, Write};
    use std::net::{Shutdown, TcpStream, ToSocketAddrs};

    let addr = match target.to_socket_addrs().map(|mut a| a.next()) {
        Ok(Some(addr)) => addr,
        _ => {
            eprintln!("cannot resolve {target}");
            return ExitCode::from(PROBE_EXIT_CONNECT);
        }
    };
    let fronts = hdiff::servers::fronts();
    let vectors = hdiff::diff::seed_vectors();
    println!("probing {target}: {} h2 downgrade vectors (h2c prior knowledge)\n", vectors.len());
    println!("{:<24} {:<10} verdict", "vector", "statuses");
    let mut answered = 0usize;
    let mut silent = 0usize;
    let mut divergent = 0usize;
    let mut connect_failures = 0usize;
    for vector in &vectors {
        let bytes = encode_client_connection(&vector.requests, &EncodeOptions::default());
        let raw = match TcpStream::connect(addr) {
            Ok(mut stream) => {
                let _ = stream.set_read_timeout(Some(io_timeout()));
                let mut raw = Vec::new();
                if stream.write_all(&bytes).is_ok() {
                    let _ = stream.shutdown(Shutdown::Write);
                    let _ = stream.read_to_end(&mut raw);
                }
                raw
            }
            Err(e) => {
                eprintln!("cannot connect to {target}: {e}");
                connect_failures += 1;
                continue;
            }
        };
        let live: Vec<u16> = match parse_server_connection(&raw) {
            Ok(responses) if !responses.is_empty() => {
                responses.iter().map(|(_, r)| r.status).collect()
            }
            _ => {
                silent += 1;
                println!("{:<24} {:<10} no h2 response frames", vector.id, "-");
                continue;
            }
        };
        answered += 1;
        let class_signature =
            |statuses: &[u16]| -> Vec<u16> { statuses.iter().map(|s| s / 100).collect() };
        let predicted = |front: &hdiff::servers::DowngradeProfile| -> Vec<u16> {
            vector
                .requests
                .iter()
                .map(|r| {
                    let o = front.downgrade(r);
                    if o.h1.is_some() {
                        200
                    } else {
                        o.reject.as_ref().map_or(500, |(status, _)| *status)
                    }
                })
                .collect()
        };
        let matches: Vec<&str> = fronts
            .iter()
            .filter(|f| class_signature(&predicted(f)) == class_signature(&live))
            .map(|f| f.name.as_str())
            .collect();
        let statuses = live.iter().map(u16::to_string).collect::<Vec<_>>().join(",");
        if matches.is_empty() {
            divergent += 1;
            println!("{:<24} {:<10} DIVERGES (matches no modeled front)", vector.id, statuses);
        } else {
            println!("{:<24} {:<10} matches {}", vector.id, statuses, matches.join("/"));
        }
    }
    println!("\n{answered} vectors answered, {silent} silent, {divergent} divergent");
    if connect_failures == vectors.len() {
        ExitCode::from(PROBE_EXIT_CONNECT)
    } else if divergent > 0 {
        ExitCode::from(PROBE_EXIT_DIVERGENCE)
    } else if answered == 0 {
        eprintln!("no vector produced h2 response frames before the timeout");
        ExitCode::from(PROBE_EXIT_TIMEOUT)
    } else {
        ExitCode::SUCCESS
    }
}

/// Formats the `pct`-th percentile of `rtts_ns` (sorting in place) as
/// milliseconds, `-` when no samples arrived.
fn quantile_ms(rtts_ns: &mut [u64], pct: usize) -> String {
    if rtts_ns.is_empty() {
        return "-".to_string();
    }
    rtts_ns.sort_unstable();
    let idx = (rtts_ns.len() * pct / 100).min(rtts_ns.len() - 1);
    format!("{:.3}ms", rtts_ns[idx] as f64 / 1e6)
}

/// Interprets raw request bytes under every product and the baseline.
fn probe(bytes: &[u8]) {
    use hdiff::servers::{interpret, ParserProfile};
    use hdiff::wire::ascii;

    println!("request ({} bytes):", bytes.len());
    println!("  {}\n", ascii::escape_bytes(bytes));
    println!("{:<12} {:<7} {:<22} {:<26} notes", "product", "status", "host", "framing");
    let mut profiles = vec![ParserProfile::strict("baseline")];
    profiles.extend(hdiff::servers::products());
    for p in profiles {
        let i = interpret(&p, bytes);
        println!(
            "{:<12} {:<7} {:<22} {:<26} {}",
            p.name,
            i.outcome.status(),
            i.host.as_deref().map(ascii::escape_bytes).unwrap_or_else(|| "-".into()),
            format!("{:?}", i.framing),
            i.notes.join("; "),
        );
    }
}
