//! HoT-focused hunt: send ambiguous-host requests through every chain and
//! print the host each party believes it is serving — the disagreement
//! grid behind Figure 7's HoT panel.
//!
//! ```sh
//! cargo run --release --example host_of_troubles
//! ```

use hdiff::diff::Workflow;
use hdiff::gen::TestCase;
use hdiff::servers::{interpret, products};
use hdiff::wire::{Method, Request, Version};

fn host_of(profile: &hdiff::servers::ParserProfile, bytes: &[u8]) -> String {
    let i = interpret(profile, bytes);
    if !i.outcome.is_accept() {
        return format!("({})", i.outcome.status());
    }
    i.host.map(|h| String::from_utf8_lossy(&h).into_owned()).unwrap_or_else(|| "-".to_string())
}

fn main() {
    println!("HDiff Host-of-Troubles hunt\n");

    let vectors: Vec<(&str, Request)> = vec![
        ("absolute-URI with foreign scheme", {
            let mut b = Request::builder();
            b.method(Method::Get)
                .target("test://h2.com/?a=1")
                .version(Version::Http11)
                .header("Host", "h1.com");
            b.build()
        }),
        ("http absolute-URI vs Host", {
            let mut b = Request::builder();
            b.method(Method::Get)
                .target("http://h2.com/")
                .version(Version::Http11)
                .header("Host", "h1.com");
            b.build()
        }),
        ("userinfo spelling h1.com@h2.com", {
            let mut b = Request::builder();
            b.header("Host", "h1.com@h2.com");
            b.build()
        }),
        ("comma list h1.com, h2.com", {
            let mut b = Request::builder();
            b.header("Host", "h1.com, h2.com");
            b.build()
        }),
        ("two Host headers", {
            let mut b = Request::builder();
            b.header("Host", "h1.com").header("Host", "h2.com");
            b.build()
        }),
    ];

    // Per-implementation host views (direct interpretation).
    println!("{:<36} per-product host view", "vector");
    for (name, req) in &vectors {
        let bytes = req.to_bytes();
        print!("{name:<36} ");
        for p in products() {
            print!("{}={} ", p.name, host_of(&p, &bytes));
        }
        println!();
    }

    // Pair analysis through the workflow.
    println!("\nexploitable pairs (proxy view != backend view, both accept):");
    let workflow = Workflow::standard();
    for (name, req) in &vectors {
        let outcome = workflow.run_case(&TestCase::generated(1, req.clone(), *name));
        for chain in &outcome.chains {
            let Some(first) = chain.proxy_results.first() else { continue };
            if !first.interpretation.outcome.is_accept() {
                continue;
            }
            for replay in &chain.replays {
                let Some(reply) = replay.replies.first() else { continue };
                if !reply.interpretation.outcome.is_accept() {
                    continue;
                }
                if first.interpretation.host != reply.interpretation.host {
                    println!(
                        "  [{name}] {} sees {:?}, {} sees {:?}",
                        chain.proxy,
                        String::from_utf8_lossy(
                            first.interpretation.host.as_deref().unwrap_or(b"-")
                        ),
                        replay.backend,
                        String::from_utf8_lossy(
                            reply.interpretation.host.as_deref().unwrap_or(b"-")
                        ),
                    );
                }
            }
        }
    }
}
