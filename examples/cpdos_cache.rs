//! CPDoS hunt with an explicit cache-poisoning demonstration: drive an
//! error-inducing request through a proxy chain, then show that a normal
//! user's follow-up request is answered from the poisoned cache.
//!
//! ```sh
//! cargo run --release --example cpdos_cache
//! ```

use hdiff::servers::cache::CacheKey;
use hdiff::servers::{product, ProductId, Proxy, Server};
use hdiff::wire::Request;

fn main() {
    println!("HDiff CPDoS hunt — poisoning the nginx cache via version repair\n");

    // The attacker's request: invalid HTTP-version that nginx "repairs" by
    // appending its own version after the bad token.
    let mut attack = Request::get("victim.com");
    attack.set_version(b"1.1/HTTP");
    let attack_bytes = attack.to_bytes();
    println!("attacker sends:\n  {}\n", hdiff::wire::ascii::escape_bytes(&attack_bytes));

    let mut proxy = Proxy::new(product(ProductId::Nginx));
    let backend = Server::new(product(ProductId::Apache));

    let result = proxy.forward(&attack_bytes);
    let forwarded =
        result.action.forwarded().expect("nginx accepts and repairs the bad version").to_vec();
    println!("nginx repairs and forwards:\n  {}\n", hdiff::wire::ascii::escape_bytes(&forwarded));

    let reply = backend.handle(&forwarded);
    println!(
        "apache (backend) answers: {} {}\n",
        reply.response.status,
        String::from_utf8_lossy(&reply.response.body)
    );
    assert!(reply.response.status.is_error(), "backend must reject the repaired line");

    // The proxy caches the error under the victim's key.
    let key = CacheKey::new(
        result.interpretation.host.clone().unwrap_or_default(),
        result.interpretation.target.clone(),
    );
    let decision = proxy.cache.store(
        key.clone(),
        &result.interpretation.method,
        &result.interpretation.version,
        &reply.response,
    );
    println!("nginx cache store decision: {decision:?}");

    // An innocent user now asks for the same resource.
    let innocent = Request::get("victim.com");
    let innocent_interp =
        hdiff::servers::interpret(&product(ProductId::Nginx), &innocent.to_bytes());
    let innocent_key = CacheKey::new(
        innocent_interp.host.clone().unwrap_or_default(),
        innocent_interp.target.clone(),
    );
    match proxy.cache.lookup(&innocent_key) {
        Some(poisoned) => {
            println!(
                "\ninnocent GET /victim.com is served from cache: {} — DENIAL OF SERVICE",
                poisoned.status
            );
            assert!(poisoned.status.is_error());
        }
        None => println!("\ncache miss — no poisoning (unexpected)"),
    }

    println!("\npoisoned entries in the nginx cache: {}", proxy.cache.poisoned_entries().len());
}
