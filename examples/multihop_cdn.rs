//! Multi-hop (CDN-style) chains: the paper notes that pairs which look
//! safe in a two-party deployment "may lead to exploitable attacks when
//! chained with other HTTP implementations, such as using CDN as a
//! front-end server". This example walks ambiguous requests through
//! three-party chains and prints each hop's view.
//!
//! ```sh
//! cargo run --release --example multihop_cdn
//! ```

use hdiff::servers::{product, run_multihop, ProductId};
use hdiff::wire::{Method, Request, Version};

fn show(label: &str, chain: &[ProductId], origin: ProductId, req: &Request) {
    let proxies: Vec<_> = chain.iter().map(|id| product(*id)).collect();
    let result = run_multihop(&proxies, &product(origin), &req.to_bytes());
    let chain_names: Vec<&str> = chain.iter().map(|id| id.name()).collect();
    println!("## {label}");
    println!("   chain: client -> {} -> {origin}", chain_names.join(" -> "));
    match result.rejected_at {
        Some(i) => println!("   blocked at hop {} ({})", i, result.hops[i].name),
        None => {
            for (who, host) in result.host_views() {
                println!(
                    "   {who:<10} believes host = {}",
                    host.map(|h| String::from_utf8_lossy(&h).into_owned())
                        .unwrap_or_else(|| "-".to_string())
                );
            }
            if let Some(reply) = result.origin_replies.first() {
                println!("   origin status: {}", reply.response.status);
            }
        }
    }
    println!();
}

fn main() {
    println!("HDiff multi-hop chains\n");

    let mut ambiguous_host = Request::builder();
    ambiguous_host
        .method(Method::Get)
        .target("/")
        .version(Version::Http11)
        .header("Host", "h1.com@h2.com");
    let ambiguous_host = ambiguous_host.build();

    // Direct varnish→weblogic: the HoT gap exists.
    show(
        "userinfo host, varnish front (gap: h1.com@h2.com vs h2.com)",
        &[ProductId::Varnish],
        ProductId::Weblogic,
        &ambiguous_host,
    );

    // A strict apache hop between them stops the attack.
    show(
        "same request with a strict apache hop in the middle",
        &[ProductId::Varnish, ProductId::Apache],
        ProductId::Weblogic,
        &ambiguous_host,
    );

    // A CDN-ish haproxy front in front of nginx extends the reach: the
    // ambiguity survives two transparent hops.
    show(
        "two transparent hops (haproxy -> nginx) still deliver the ambiguity",
        &[ProductId::Haproxy, ProductId::Nginx],
        ProductId::Weblogic,
        &ambiguous_host,
    );

    // Version-repair CPDoS through a chain: nginx repairs, varnish forwards
    // the repaired line, the origin rejects — and the error is cacheable at
    // the front.
    let mut bad_version = Request::get("victim.com");
    bad_version.set_version(b"1.1/HTTP");
    show(
        "invalid version repaired by nginx, relayed by varnish",
        &[ProductId::Nginx, ProductId::Varnish],
        ProductId::Apache,
        &bad_version,
    );
}
