//! HRS-focused hunt: replay the paper's §IV-B request-smuggling vectors
//! through every proxy→back-end chain and show exactly where the streams
//! desynchronize.
//!
//! ```sh
//! cargo run --release --example smuggling_hunt
//! ```

use hdiff::diff::{detect_case, Workflow};
use hdiff::gen::{catalog, AttackClass, Origin, TestCase};
use hdiff::servers::products;
use hdiff::wire::ascii;

fn main() {
    println!("HDiff smuggling hunt — HRS vectors from Table II\n");
    let workflow = Workflow::standard();
    let profiles = products();

    let mut uuid = 1u64;
    let mut total = 0usize;
    for entry in catalog::catalog() {
        if !entry.classes.contains(&AttackClass::Hrs) {
            continue;
        }
        println!("## {} — {}", entry.id, entry.description);
        for (req, note) in &entry.requests {
            let case = TestCase {
                uuid,
                request: req.clone(),
                assertions: Vec::new(),
                origin: Origin::Catalog(entry.id.to_string()),
                note: note.clone(),
            };
            uuid += 1;
            let outcome = workflow.run_case(&case);
            let findings = detect_case(&profiles, &outcome);
            let hrs: Vec<_> =
                findings.into_iter().filter(|f| f.class == AttackClass::Hrs).collect();
            if hrs.is_empty() {
                continue;
            }
            total += hrs.len();
            println!("  payload: {note}");
            println!("    {}", ascii::escape_bytes(&outcome.bytes));
            for f in hrs.iter().take(4) {
                println!("    -> {f}");
            }
        }
        println!();
    }
    println!("total HRS findings across catalog vectors: {total}");
}
