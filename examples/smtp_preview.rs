//! Generalization preview: the paper's §V proposes extending HDiff "to
//! different protocols and systematically discover semantic gap attacks",
//! naming the email domain explicitly. This example runs the Documentation
//! Analyzer unchanged over an SMTP (RFC 5321) excerpt: the sentiment SR
//! finder, Text2Rule converter and ABNF extractor are protocol-agnostic —
//! only the field dictionary and seed values are HTTP-specific.
//!
//! ```sh
//! cargo run --release --example smtp_preview
//! ```

use hdiff::abnf::{extract_abnf, Grammar};
use hdiff::analyzer::{sentences, SentimentClassifier};
use hdiff::gen::{AbnfGenerator, GenOptions, PredefinedRules};

fn main() {
    let doc = hdiff::corpus::extension_documents().remove(0);
    println!("analyzing {} ({} words)\n", doc.tag.to_uppercase(), doc.word_count());

    // Syntax track: extract and close the SMTP grammar.
    let (rules, stats) = extract_abnf(&doc.full_text());
    println!(
        "ABNF extraction: {} rules ({} prose-flagged, {} rejected as prose)",
        stats.extracted, stats.prose_rules, stats.rejected_prose
    );
    let grammar = Grammar::from_rules(&doc.tag, rules);
    println!("undefined references: {:?}\n", grammar.undefined_references());

    // Generate SMTP protocol elements straight from the extracted grammar.
    let mut generator = AbnfGenerator::new(
        grammar.clone(),
        GenOptions { predefined: PredefinedRules::empty(), ..GenOptions::default() },
    );
    println!("generated protocol elements:");
    for rule in ["mailbox", "path", "mail-command", "rcpt-command", "domain"] {
        if let Some(v) = generator.generate(rule) {
            println!("  {rule:<13} {:?}", String::from_utf8_lossy(&v));
        }
    }

    // Semantics track: the sentiment SR finder works unchanged.
    let classifier = SentimentClassifier::new();
    let sents = sentences(&doc.full_text());
    let candidates = classifier.find_candidates(&sents);
    println!(
        "\nSR finder: {} of {} sentences are requirement candidates; top five:",
        candidates.len(),
        sents.len()
    );
    for c in candidates.iter().take(5) {
        let text = if c.sentence.text.len() > 100 {
            format!("{}…", &c.sentence.text[..100])
        } else {
            c.sentence.text.clone()
        };
        println!("  [{:.1}] {text}", c.score);
    }

    println!(
        "\nTo complete the port, supply the four manual inputs of Fig. 3 for\n\
         SMTP: seed templates over MAIL/RCPT/DATA, semantic definitions,\n\
         detection models, and predefined values for mailbox/domain leaves."
    );
}
