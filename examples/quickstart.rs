//! Quickstart: run the full HDiff pipeline on the embedded RFC corpus and
//! print the paper's tables.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hdiff::report;
use hdiff::{HDiff, HdiffConfig};

fn main() {
    println!("HDiff — semantic gap attack discovery (DSN 2022 reproduction)\n");

    let hdiff = HDiff::new(HdiffConfig::quick());
    println!("running documentation analysis + generation + differential testing ...\n");
    let report_data = hdiff.run();

    println!("{}", report::render_stats(&report_data));
    println!("{}", report::render_table1(&report_data.summary));
    println!("{}", report::render_figure7(&report_data.summary));

    println!("== sample findings ==");
    for finding in report_data.summary.findings.iter().take(10) {
        println!("  {finding}");
    }
    println!(
        "\ntotal: {} findings over {} test cases ({} replayed past the reduction filter)",
        report_data.summary.findings.len(),
        report_data.summary.cases,
        report_data.summary.replayed_cases,
    );
}
